"""One engine for every experiment: plan → execute → post-process.

The paper's evaluation is a single experiment shape — record full
sweeps, probe a subset, select, score — instantiated for several
strategies.  :class:`ScenarioRunner` owns that shape once:

* **plan_trials** replays each policy's probe draws in the exact
  scalar order (one draw per recording × sweep × subsample) and packs
  them into per-recording :class:`TrialBlock` arrays;
* **execute** evaluates the blocks through the policy's batched fast
  path (or a scalar fallback for policies without one), resetting
  selection state per recording or per plan;
* **run_interactive** drives multi-round policies (hierarchical
  search) against a measure callable, round by round;
* **run** resolves a :class:`~.spec.ScenarioSpec` through the registry,
  times every policy, and emits a :class:`~.manifest.RunManifest`.

Bit-exactness: randomness is consumed *only* during planning, batched
kernels are row-sequential twins of the scalar paths (PR-2), and reset
boundaries reproduce each legacy loop's selector lifetimes — so every
experiment's output is bit-identical to its pre-runtime version, at
any ``jobs`` count.

Sharding (``jobs > 1``) fans per-recording blocks out to a process
pool.  It engages only when state resets per recording (blocks are
then independent), the policy is batched, and both the testbed and the
policy are spec-described (workers rebuild them from JSON); anything
else degrades to the sequential path, same results.

Supervision (DESIGN.md §9): every ``reset="recording"`` block runs
under a :class:`~.faults.RetryPolicy` — bounded attempts, seeded
backoff, optional per-block timeout.  A dead worker
(``BrokenProcessPool``) or a hung block costs one pool replacement and
a re-execution of only the lost blocks; a failing batched kernel falls
back to the scalar reference path; a :class:`~.checkpoint.CheckpointStore`
journals finished blocks so a killed campaign resumes where it died.
Because block evaluation is pure, every recovery path is bit-invisible
in the records, and :attr:`ScenarioRunner.health` accounts for all of
it in the run manifest.

Observability (DESIGN.md §10): constructed with an
:class:`~repro.obs.ObsSession`, the runner activates it for the
duration of :meth:`ScenarioRunner.run` and wraps the run, every
``execute`` call and every block attempt in spans
(``scenario.run`` → ``execute.policy`` → ``execute.block``), while the
supervision counters mirror into metrics.  Pool workers record into
their own per-block session and ship the drained buffer back
piggybacked on the block result; the runner absorbs worker payloads in
deterministic ``(call, block)`` order, so a ``--jobs 4`` trace is
bit-reproducible in everything but timing values.  With no session the
instrumentation is a no-op (see ``runner_obs_overhead_pct`` in
``repro-bench perf``), and tracing never touches results: a traced run
is bit-identical to an untraced one.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import CancelledError as _FuturesCancelled
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .. import obs as _obs
from ..obs import quality as _quality
from .checkpoint import CheckpointStore, default_checkpoint_path
from .faults import (
    BlockTimeoutError,
    DeadlineExceededError,
    FaultInjectionError,
    FaultInjector,
    FaultPlan,
    RetryExhaustedError,
    RetryPolicy,
    RunAbortedError,
    RunCancelledError,
    RunHealth,
)
from .manifest import RunManifest, git_revision, result_digest
from .policy import PolicyContext, PolicyOutcome
from .shm import KernelPublisher, SharedKernelManifest
from .shm import attach as _shm_attach
from .shm import detach_all as _shm_detach_all
from .spec import PolicySpec, ScenarioSpec, TestbedSpec

#: Exceptions that mean "the pool died under us", not "the block
#: failed".  An externally SIGKILLed worker (chaos campaigns, OOM
#: kills) can surface as a raw BrokenPipeError/EOFError from the
#: executor's feeder or wakeup pipes instead of BrokenProcessPool —
#: all three cost one pool replacement, never a block's retry budget.
_POOL_FAULTS = (BrokenProcessPool, BrokenPipeError, EOFError)


def _reset_worker_signals() -> None:
    """Detach a fork-pool worker from the parent's signal plumbing.

    Forked children inherit the parent's Python-level signal handlers
    AND its asyncio wakeup fd — the same socketpair, as a shared open
    file description.  Left in place, a SIGTERM aimed at a worker is
    (a) swallowed by the inherited handler, so terminate() never kills
    it, and (b) echoed into the shared wakeup fd, which the parent's
    event loop reads as *the service itself* receiving SIGTERM — a
    spontaneous drain.  Workers must die on SIGTERM and stay silent on
    the parent's wakeup pipe; SIGINT is ignored so a foreground Ctrl-C
    reaches the parent's drain path instead of racing it.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # ContextVars survive fork: a worker spawned mid-execute would
    # inherit the supervisor's active quality context and record
    # designer diagnostics at its own policy builds, double-counting
    # them.  Workers record quality only under the context shipped in
    # obs_meta, so start clean.
    _quality.activate_quality(None)


__all__ = [
    "TrialBlock",
    "TrialRecord",
    "RunOutcome",
    "ScenarioRunner",
]

_LOGGER = logging.getLogger(__name__)

#: Supervision parameters used when the runner has no retry policy:
#: fail fast, no timeout — the legacy semantics.
_FAIL_FAST = RetryPolicy(max_attempts=1)

#: Sentinel distinguishing "not passed" from an explicit None override.
_UNSET = object()

#: Placeholder for TrialBlock fields the evaluation path never reads —
#: shared-memory block reconstruction ships only the four eval arrays.
_EMPTY_INTP = np.empty(0, dtype=np.intp)


@dataclass(frozen=True)
class TrialBlock:
    """All planned trials of one recording, padded into batch arrays.

    Rows are trials in scalar order (sweep-major, then subsample).
    ``sector_ids`` / ``snr_db`` / ``rssi_dbm`` / ``mask`` have shape
    ``(n_trials, width)`` — the argument layout of ``select_batch`` —
    and ``probes_requested[t]`` is the number of probes the policy
    asked for in trial ``t`` (before padding and before reports went
    missing), which prices the training airtime.
    """

    recording_index: int
    sector_ids: np.ndarray
    snr_db: np.ndarray
    rssi_dbm: np.ndarray
    mask: np.ndarray
    sweep_indices: np.ndarray
    subsample_indices: np.ndarray
    probes_requested: np.ndarray

    @property
    def n_trials(self) -> int:
        return self.sector_ids.shape[0]


@dataclass(frozen=True)
class TrialRecord:
    """One evaluated trial, tagged with its origin in the plan."""

    recording_index: int
    sweep_index: int
    subsample: int
    result: Any  # SelectionResult
    probes_requested: int


@dataclass(frozen=True)
class RunOutcome:
    """What :meth:`ScenarioRunner.run` returns."""

    result: Any
    manifest: RunManifest


# ----------------------------------------------------------------------
# Process-pool worker side.
#
# Workers rebuild the testbed and policy from their canonical-JSON spec
# keys (build_testbed is lru_cached and disk-memoized, so under the
# preferred fork start method this is a cache hit) and keep them in
# module-level caches across block submissions.
# ----------------------------------------------------------------------

_WORKER_CONTEXTS: Dict[str, PolicyContext] = {}
_WORKER_POLICIES: Dict[Tuple[str, str], Any] = {}


def _reset_worker_caches() -> None:
    """Drop every in-process warm-up cache (policies, contexts, testbeds)."""
    _WORKER_CONTEXTS.clear()
    _WORKER_POLICIES.clear()
    _shm_detach_all()
    from ..experiments.common import build_testbed

    build_testbed.cache_clear()


def _build_worker_policy(
    testbed_key: str,
    policy_key: str,
    manifest: Optional[SharedKernelManifest] = None,
):
    from ..core.policy import seed_shared_selector
    from .registry import build_policy, load_builtin

    load_builtin()
    context = _WORKER_CONTEXTS.get(testbed_key)
    if context is None:
        testbed = TestbedSpec.from_json(json.loads(testbed_key)).build()
        context = PolicyContext(testbed=testbed)
        _WORKER_CONTEXTS[testbed_key] = context
    spec = PolicySpec.from_json(json.loads(policy_key))
    if manifest is not None:
        # Zero-copy warm-up: seed the selector cache from the published
        # shared-memory kernels so build_policy skips re-sampling the
        # pattern matrices, and — when the spec carries a probe_design
        # block — seed the probe-design cache from the published
        # subsets so the policy attaches the supervisor's finished
        # design instead of re-running the greedy search.  Any
        # attach/seed problem (e.g. the segment vanished with its
        # publisher) degrades to plain construction — the seeded arrays
        # are byte copies (and designs are deterministic in the spec),
        # so the two paths are bit-identical and degradation is
        # invisible in the results.
        try:
            seed_shared_selector(spec, context, _shm_attach(manifest))
        except Exception as error:  # pragma: no cover - degraded path
            _LOGGER.warning(
                "shared-kernel attach failed (%s: %s); rebuilding from spec",
                type(error).__name__,
                error,
            )
    policy = build_policy(spec, context)
    _WORKER_POLICIES[(testbed_key, policy_key)] = policy
    return policy


def _worker_policy(
    testbed_key: str,
    policy_key: str,
    manifest: Optional[SharedKernelManifest] = None,
):
    """Warm-up with self-healing: a failed build (e.g. a corrupted
    testbed-cache read surfacing through state inherited from the fork)
    clears every in-process cache and rebuilds once from scratch —
    ``load_or_build_table`` then takes its PR-1 rebuild path instead of
    crashing the pool."""
    policy = _WORKER_POLICIES.get((testbed_key, policy_key))
    if policy is not None:
        return policy
    try:
        return _build_worker_policy(testbed_key, policy_key, manifest)
    except Exception as error:
        _LOGGER.warning(
            "worker warm-up failed (%s: %s); clearing caches and rebuilding",
            type(error).__name__,
            error,
        )
        _reset_worker_caches()
        return _build_worker_policy(testbed_key, policy_key, manifest)


def _memoized_testbed_path(testbed_key: str) -> Path:
    from ..experiments.common import _testbed_memo_params
    from ..measurement import artifacts

    spec = TestbedSpec.from_json(json.loads(testbed_key))
    return artifacts.memoized_table_path(
        _testbed_memo_params(
            spec.seed,
            spec.azimuth_step_deg,
            spec.elevation_step_deg,
            spec.max_elevation_deg,
            spec.campaign_sweeps,
        )
    )


def _corrupt_testbed_cache(testbed_key: str) -> None:
    """Injected fault: truncate the on-disk testbed memo mid-file."""
    path = _memoized_testbed_path(testbed_key)
    if path.is_file():
        data = path.read_bytes()
        path.write_bytes(data[: max(16, len(data) // 2)])


def _apply_worker_directive(directive: Dict[str, Any], testbed_key: str) -> None:
    """Execute one injected fault inside a pool worker."""
    kind = directive.get("kind")
    if kind == "crash":
        os._exit(3)
    elif kind == "hang":
        time.sleep(float(directive.get("hang_s", 30.0)))
    elif kind == "exception":
        raise FaultInjectionError("injected transient worker exception")
    elif kind == "cache-corrupt":
        _corrupt_testbed_cache(testbed_key)
        _reset_worker_caches()


def _eval_block_scalar(policy, block: TrialBlock) -> List:
    """The scalar reference path: rebuild each row's measurement list."""
    from ..core.measurements import ProbeMeasurement

    results = []
    for row in range(block.n_trials):
        measurements = [
            ProbeMeasurement(
                sector_id=int(block.sector_ids[row, column]),
                snr_db=float(block.snr_db[row, column]),
                rssi_dbm=float(block.rssi_dbm[row, column]),
            )
            for column in np.flatnonzero(block.mask[row])
        ]
        results.append(policy.select(measurements))
    return results


def _batched_entry(policy) -> Tuple[Optional[Callable], str]:
    """The fastest batched entry point a policy offers.

    Preference order: the fused single-pass kernel
    (``select_fused_batch``, bit-identical to ``select_batch`` by
    contract), then the plain batched kernel, then none (scalar).  The
    returned label feeds the ``runner_kernel_path_total`` metric.
    """
    entry = getattr(policy, "select_fused_batch", None)
    if entry is not None:
        return entry, "fused"
    entry = getattr(policy, "select_batch", None)
    if entry is not None:
        return entry, "batched"
    return None, "scalar"


def _eval_block_guarded(policy, block: TrialBlock) -> Tuple[List, Dict[str, Any]]:
    """Evaluate one fresh-state block, degrading fused/batched → scalar.

    A failing batched kernel is not fatal: the block is recomputed on
    the scalar reference path (bit-identical by the PR-2 equivalence
    contract) after a state reset, and the degradation is reported in
    the returned info dict so the run's health section can surface it.
    """
    begin = time.perf_counter()
    entry, path = _batched_entry(policy)
    if entry is not None:
        try:
            results = entry(
                block.sector_ids,
                snr_db=block.snr_db,
                rssi_dbm=block.rssi_dbm,
                mask=block.mask,
            )
            _obs.inc("runner_kernel_path_total", path=path)
            _obs.observe("runner_block_seconds", time.perf_counter() - begin)
            return results, {"fallback": False}
        except Exception as error:
            _LOGGER.warning(
                "batched kernel failed on recording %d (%s: %s); "
                "falling back to the scalar reference path",
                block.recording_index,
                type(error).__name__,
                error,
            )
            policy.reset()
            results = _eval_block_scalar(policy, block)
            _obs.inc("runner_kernel_path_total", path="scalar")
            _obs.observe("runner_block_seconds", time.perf_counter() - begin)
            return results, {"fallback": True}
    results = _eval_block_scalar(policy, block)
    _obs.inc("runner_kernel_path_total", path="scalar")
    _obs.observe("runner_block_seconds", time.perf_counter() - begin)
    return results, {"fallback": False}


def _worker_run_block(
    testbed_key: str,
    policy_key: str,
    block: TrialBlock,
    directive: Optional[Dict[str, Any]] = None,
    obs_meta: Optional[Dict[str, Any]] = None,
    manifest: Optional[SharedKernelManifest] = None,
):
    """Evaluate one block inside a pool worker.

    ``obs_meta`` doubles as the observability enable flag and the
    ``execute.block`` span attributes (policy/call/block/attempt, plus
    ``injected`` when a fault directive rides along).  When set, the
    worker records into a fresh per-block session and ships the drained
    payload back on the info dict — the runner absorbs payloads in
    deterministic block order, so pool scheduling never shows in a
    trace.  A failed attempt raises before draining, matching the local
    path where only the supervising process records the failure.
    """
    if obs_meta is None:
        if directive is not None:
            _apply_worker_directive(directive, testbed_key)
        policy = _worker_policy(testbed_key, policy_key, manifest)
        policy.reset()
        return _eval_block_guarded(policy, block)
    # The quality context rides inside obs_meta but is not a span
    # attribute — pop it so worker spans stay attr-identical to the
    # local path's.  It scopes only the evaluation (not the policy
    # build): designer diagnostics are the supervisor's to record, so
    # job counts never change what a worker contributes.
    obs_meta = dict(obs_meta)
    quality_meta = obs_meta.pop("quality", None)
    session = _obs.ObsSession()
    previous = _obs.activate(session)
    try:
        with _obs.span("execute.block", **obs_meta):
            if directive is not None:
                _apply_worker_directive(directive, testbed_key)
            policy = _worker_policy(testbed_key, policy_key, manifest)
            policy.reset()
            results, info = _eval_block_quality(policy, block, quality_meta)
        info = dict(info)
        info["obs"] = session.drain_payload()
        return results, info
    finally:
        _obs.deactivate(previous)


def _eval_block_quality(
    policy, block: TrialBlock, quality_meta: Optional[Mapping[str, Any]]
):
    """``_eval_block_guarded`` under the shipped quality context, if any."""
    if quality_meta is None:
        return _eval_block_guarded(policy, block)
    token = _quality.activate_quality(_quality.QualityContext.from_meta(quality_meta))
    try:
        return _eval_block_guarded(policy, block)
    finally:
        _quality.deactivate_quality(token)


def _eval_chunk_stacked(
    policy, indexed_blocks: Sequence[Tuple[int, TrialBlock]]
) -> Optional[Dict[int, Tuple[Sequence, Dict[str, Any]]]]:
    """Evaluate a whole chunk in one stacked fused pass, if possible.

    Stacking runs the stateless correlate→argmax→Eq.4 half once over
    every block's rows (bit-identical — rows are independent) and the
    stateful builder per block against reset state, amortizing the
    fixed numpy dispatch cost the per-block paths pay for each block.
    Only taken untraced: per-block observability (counter increments,
    payload attribution) needs per-block evaluation, and obs calls are
    no-ops here anyway.  Returns None when the policy has no stacked
    kernel, blocks' widths differ, or anything raises — callers fall
    back to the per-block loop, which reproduces exact per-block error
    and fallback behavior.
    """
    stacked_entry = getattr(policy, "select_fused_stacked", None)
    if stacked_entry is None or len(indexed_blocks) < 2:
        return None
    width = indexed_blocks[0][1].sector_ids.shape[1]
    if any(block.sector_ids.shape[1] != width for _, block in indexed_blocks):
        return None
    begin = time.perf_counter()
    try:
        results = stacked_entry(
            [
                (block.sector_ids, block.snr_db, block.rssi_dbm, block.mask)
                for _, block in indexed_blocks
            ]
        )
    except Exception:
        return None
    _obs.observe("runner_block_seconds", time.perf_counter() - begin)
    return {
        index: (block_results, {"fallback": False})
        for (index, _), block_results in zip(indexed_blocks, results)
    }


def _worker_run_chunk(
    testbed_key: str,
    policy_key: str,
    chunk: Sequence[Tuple[int, Any]],
    obs_metas: Optional[Dict[int, Dict[str, Any]]] = None,
    manifest: Optional[SharedKernelManifest] = None,
    blocks_manifest: Optional[SharedKernelManifest] = None,
):
    """Evaluate several independent blocks in one pool task.

    Chunking amortizes the per-task IPC round-trip (submit + pickle +
    result) over many blocks — on small recording blocks that overhead
    dominates the actual numpy work and is what used to make ``--jobs``
    slower than serial.  Only *clean* blocks (no fault directive) ride
    in chunks; directive-carrying blocks keep their own single-block
    task so crash/hang/exception attribution stays per-block exact.

    ``chunk`` holds ``(index, TrialBlock)`` pairs, or — when
    ``blocks_manifest`` names a published block segment —
    ``(index, recording_index)`` pairs, and the trial arrays are
    read-only views mapped from shared memory instead of pickled
    copies (byte-identical by construction).

    Returns ``(done, failure)``: ``done`` maps block index → the
    ``(results, info)`` payload of every block that finished, and
    ``failure`` is ``(index, error)`` for the first block that raised
    (or None).  Blocks after a failure are not attempted — the parent
    treats them as collateral, exactly like blocks lost to a pool
    death, so their retry budget is never charged for a chunkmate's
    sins.  Each block records into its own fresh
    :class:`~repro.obs.ObsSession` when traced, so the absorbed
    ``(call, block)``-keyed payloads are indistinguishable from
    single-block dispatch.
    """
    done: Dict[int, Tuple[Sequence, Dict[str, Any]]] = {}
    try:
        if blocks_manifest is not None:
            views = _shm_attach(blocks_manifest)
            indexed_blocks: List[Tuple[int, TrialBlock]] = [
                (
                    index,
                    TrialBlock(
                        recording_index=recording_index,
                        sector_ids=views[f"{index}.ids"],
                        snr_db=views[f"{index}.snr"],
                        rssi_dbm=views[f"{index}.rssi"],
                        mask=views[f"{index}.mask"],
                        sweep_indices=_EMPTY_INTP,
                        subsample_indices=_EMPTY_INTP,
                        probes_requested=_EMPTY_INTP,
                    ),
                )
                for index, recording_index in chunk
            ]
        else:
            indexed_blocks = list(chunk)
        policy = _worker_policy(testbed_key, policy_key, manifest)
    except Exception as error:
        return done, (chunk[0][0], error)
    if obs_metas is None:
        stacked = _eval_chunk_stacked(policy, indexed_blocks)
        if stacked is not None:
            return stacked, None
    for index, block in indexed_blocks:
        obs_meta = None if obs_metas is None else obs_metas.get(index)
        try:
            if obs_meta is None:
                policy.reset()
                done[index] = _eval_block_guarded(policy, block)
                continue
            obs_meta = dict(obs_meta)
            quality_meta = obs_meta.pop("quality", None)
            session = _obs.ObsSession()
            previous = _obs.activate(session)
            try:
                with _obs.span("execute.block", **obs_meta):
                    policy.reset()
                    results, info = _eval_block_quality(policy, block, quality_meta)
                info = dict(info)
                info["obs"] = session.drain_payload()
                done[index] = (results, info)
            finally:
                _obs.deactivate(previous)
        except Exception as error:
            return done, (index, error)
    return done, None


def _pad_rows(
    rows: Sequence[np.ndarray], fill: float, dtype=None
) -> np.ndarray:
    """Stack 1-D rows, padding shorter ones with ``fill`` on the right.

    Equal-length rows (the common case — fixed probe budgets) stack
    without any padding, so the arrays reaching ``select_batch`` are
    exactly the ones the legacy loops built.
    """
    width = max((row.size for row in rows), default=0)
    out = np.full((len(rows), width), fill, dtype=dtype if dtype else float)
    for index, row in enumerate(rows):
        out[index, : row.size] = row
    return out


class ScenarioRunner:
    """Executes scenario specs; owns trial loops, batching, sharding.

    Args:
        jobs: worker processes for recording-parallel execution.
        retry: supervision policy applied to every ``reset="recording"``
            block (None = fail fast, the legacy semantics).
        faults: deterministic fault-injection overlay; a plan on the
            executed spec is used when this is None.
        checkpoint: ``True`` journals completed blocks to the default
            digest-keyed path, a path-like journals there; None
            disables checkpointing.
        resume: reuse a compatible existing checkpoint instead of
            starting it fresh.
        durable: fsync the checkpoint journal after every entry (see
            :class:`~.checkpoint.CheckpointStore`); the service front-end
            turns this on so acknowledged progress survives power loss.
        obs: an :class:`~repro.obs.ObsSession` to record spans and
            metrics into; it is activated for the duration of each
            :meth:`run` and its rollup lands in the manifest's
            ``observability`` section.  None (the default) leaves every
            instrumentation site a no-op.

    Use as a context manager (``with ScenarioRunner(jobs=4) as r:``)
    so pool processes never leak on exceptions.
    """

    def __init__(
        self,
        jobs: int = 1,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        checkpoint: Union[None, bool, str, Path] = None,
        resume: bool = False,
        durable: bool = False,
        obs: Optional[_obs.ObsSession] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = int(jobs)
        self.retry = retry
        self.obs = obs
        self.health = RunHealth()
        self._fault_plan = faults
        self._injector: Optional[FaultInjector] = (
            FaultInjector(faults) if faults is not None else None
        )
        self._checkpoint = checkpoint
        self._resume = bool(resume)
        self._durable = bool(durable)
        self._store: Optional[CheckpointStore] = None
        self._journal: Tuple[Optional[CheckpointStore], Optional[str], int] = (
            None, None, 0,
        )
        self._execute_calls = 0
        self._injected_seen: set = set()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._shm = KernelPublisher()
        self._run_digest: Optional[str] = None
        self._contexts: Dict[int, PolicyContext] = {}
        self._policy_timings: Dict[str, float] = {}
        self._policy_span_id: Optional[str] = None
        self._quality_environment: Optional[str] = None
        # Cooperative abort plumbing: ``cancel()`` may be called from
        # any thread (the service's event loop) while ``run()`` executes
        # on a worker thread; the deadline is a monotonic instant set
        # per run.  Both are checked between block attempts, never
        # inside one — aborts land on whole-block boundaries, so the
        # journal stays a set of complete, verified entries.
        self._cancel = threading.Event()
        self._deadline_at: Optional[float] = None

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "ScenarioRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Release the pool, shared segments and journal (idempotent).

        This — not the end of :meth:`run` — is where the worker pool
        and published shared-memory kernels are torn down: both stay
        warm across runs so repeated submissions through one runner
        (the service's steady state) skip pool spin-up and kernel
        re-publication.  Always reached via the context-manager exit or
        an explicit ``close()``; the shm segments' resource-tracker
        registration covers the SIGKILL case.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._shm.close()
        self._close_store()

    def _close_store(self) -> None:
        """Release only the per-run checkpoint journal."""
        if self._store is not None:
            self._store.close()
            self._store = None

    # -- cooperative abort ----------------------------------------------

    def cancel(self) -> None:
        """Request cooperative cancellation of the in-flight run.

        Thread-safe.  The run raises :class:`RunCancelledError` at the
        next block boundary (or mid-wait on a pool future / backoff
        sleep); in-flight pool tasks are abandoned without charging
        anyone's attempt budget, and everything already finished stays
        journaled for a later retry-resume.
        """
        self._cancel.set()

    def _check_abort(self) -> None:
        """Raise if the run was cancelled or its deadline passed."""
        if self._cancel.is_set():
            raise RunCancelledError()
        if self._deadline_at is not None and time.monotonic() >= self._deadline_at:
            raise DeadlineExceededError()

    def _abort_wait(self, wait_s: float) -> None:
        """A backoff sleep that aborts promptly instead of riding it out."""
        if self._deadline_at is not None:
            wait_s = min(wait_s, max(0.0, self._deadline_at - time.monotonic()))
        if self._cancel.wait(timeout=wait_s):
            raise RunCancelledError()
        self._check_abort()

    def _await_task(self, future, budget: Optional[float]):
        """``future.result`` in short slices so aborts land mid-wait.

        Preserves the supervision semantics exactly: a real budget
        expiry re-raises :class:`_FuturesTimeout` for the caller's
        timeout-charging path, while an abort surfaces as the
        appropriate :class:`~.faults.RunAbortedError` subclass.
        """
        deadline = None if budget is None else time.monotonic() + budget
        while True:
            self._check_abort()
            if deadline is None:
                slice_s = 0.1
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise _FuturesTimeout()
                slice_s = min(0.1, remaining)
            try:
                return future.result(timeout=slice_s)
            except _FuturesTimeout:
                if deadline is not None and time.monotonic() >= deadline:
                    raise

    # -- spec resolution ------------------------------------------------

    def run(
        self,
        spec: ScenarioSpec,
        *,
        checkpoint: Any = _UNSET,
        resume: Optional[bool] = None,
        obs: Any = _UNSET,
        deadline_s: Optional[float] = None,
    ) -> RunOutcome:
        """Resolve and execute a scenario spec; emit result + manifest.

        The keyword overrides rebind the constructor's ``checkpoint`` /
        ``resume`` / ``obs`` settings for this and subsequent calls —
        the service front-end reuses one runner per worker thread across
        requests, and each request needs its own journal path and
        :class:`~repro.obs.ObsSession`.  Omitted overrides keep the
        current settings, so existing single-run callers are unchanged.

        ``deadline_s`` is per-call: a wall-clock budget for this run.
        No block attempt is scheduled past the deadline; when it passes,
        the run raises :class:`~.faults.DeadlineExceededError` at the
        next block boundary with all finished blocks journaled.
        """
        from .registry import get_scenario

        if checkpoint is not _UNSET:
            self._checkpoint = checkpoint
        if resume is not None:
            self._resume = bool(resume)
        if obs is not _UNSET:
            self.obs = obs
        self._cancel.clear()
        self._deadline_at = (
            time.monotonic() + float(deadline_s) if deadline_s is not None else None
        )
        entry = get_scenario(spec.scenario)
        self._policy_timings = {}
        self.health = RunHealth()
        self._injected_seen = set()
        self._execute_calls = 0
        plan = self._fault_plan if self._fault_plan is not None else spec.faults
        self._injector = FaultInjector(plan) if plan is not None else None
        checkpoint_path: Optional[Path] = None
        if self._checkpoint:
            checkpoint_path = (
                default_checkpoint_path(spec.digest(), spec.seed)
                if self._checkpoint is True
                else Path(self._checkpoint)
            )
            self._store = CheckpointStore(
                checkpoint_path,
                spec.digest(),
                spec.seed,
                resume=self._resume,
                durable=self._durable,
            )
        started = datetime.now(timezone.utc).isoformat(timespec="seconds")
        begin = time.perf_counter()
        traced = self.obs is not None
        previous_session = _obs.activate(self.obs) if traced else None
        if traced:
            self.obs.reset()
        # The digest keys this run's published block segments — planning
        # is deterministic in (spec, seed), so a repeat of the same spec
        # re-uses the segments without copying a byte.
        self._run_digest = spec.digest()
        # Quality exemplars label by environment; specs without one
        # (single-environment scenarios) fall back to the scenario name.
        self._quality_environment = str(
            spec.params.get("environment", spec.scenario)
        )
        try:
            with _obs.span(
                "scenario.run", scenario=spec.scenario, seed=spec.seed, jobs=self.jobs
            ):
                result = entry.executor(spec, self)
        finally:
            # Only the per-run journal closes here; the worker pool and
            # published kernels survive for the next run (see close()).
            self._run_digest = None
            self._quality_environment = None
            self._deadline_at = None
            self._close_store()
            if traced:
                _obs.deactivate(previous_session)
        health = self.health.to_json()
        if checkpoint_path is not None:
            health["checkpoint"] = str(checkpoint_path)
        observability: Dict[str, Any] = {}
        if traced:
            observability = self.obs.finalize(
                header={
                    "scenario": spec.scenario,
                    "spec_digest": spec.digest(),
                    "seed": spec.seed,
                    "jobs": self.jobs,
                }
            )
        manifest = RunManifest(
            scenario=spec.scenario,
            spec_digest=spec.digest(),
            seed=spec.seed,
            jobs=self.jobs,
            git_rev=git_revision(),
            started=started,
            wall_time_s=time.perf_counter() - begin,
            policy_timings_s=dict(self._policy_timings),
            health=health,
            result_sha256=result_digest(result),
            observability=observability,
        )
        return RunOutcome(result=result, manifest=manifest)

    def context(self, testbed) -> PolicyContext:
        """The shared per-testbed policy context (selector cache)."""
        context = self._contexts.get(id(testbed))
        if context is None:
            context = PolicyContext(testbed=testbed)
            self._contexts[id(testbed)] = context
        return context

    def _quality_context(self, label: str) -> Optional[_quality.QualityContext]:
        """This run's quality labels for ``label``, or None when off.

        Quality telemetry is opted into per session
        (``ObsSession(quality=True)``); without an active session — or
        with one that did not opt in — every seam stays a single
        ContextVar read.
        """
        session = _obs.active_session()
        if session is None or not getattr(session, "quality", False):
            return None
        return _quality.QualityContext(
            policy=label, environment=self._quality_environment or "?"
        )

    def build_policy(self, policy_spec: PolicySpec, context: PolicyContext):
        """Build a policy, recording designer diagnostics when enabled.

        Deterministic probe designers run during construction, so this
        — not ``execute`` — is where their coherence/condition
        exemplars are recorded.  Only the supervisor builds under a
        quality context: pool workers rebuild policies without one, so
        the designer's contribution is counted exactly once at any
        ``jobs``.
        """
        from .registry import build_policy

        quality = self._quality_context(policy_spec.name)
        if quality is None:
            return build_policy(policy_spec, context)
        token = _quality.activate_quality(quality)
        try:
            return build_policy(policy_spec, context)
        finally:
            _quality.deactivate_quality(token)

    # -- planning -------------------------------------------------------

    def plan_trials(
        self,
        policy,
        recordings: Sequence,
        tx_ids: Sequence[int],
        rng: np.random.Generator,
        subsamples_per_sweep: int = 1,
    ) -> List[TrialBlock]:
        """Pre-draw every trial's probes in scalar order, per recording.

        The single place randomness is consumed: one
        ``probes_for_round(0, ...)`` call per recording × sweep ×
        subsample, in exactly that nesting order — the draw order every
        legacy experiment loop used.

        Planning is also where an attached probe designer actually
        designs (blocks carry pre-drawn probes, so execution never
        re-enters it), and planning always runs in the supervisor — so
        this is where designer quality diagnostics are recorded,
        jobs-invariantly.
        """
        label = getattr(policy, "name", type(policy).__name__)
        quality = self._quality_context(label)
        token = (
            _quality.activate_quality(quality) if quality is not None else None
        )
        try:
            return self._plan_trials_inner(
                policy, recordings, tx_ids, rng, subsamples_per_sweep, label
            )
        finally:
            if token is not None:
                _quality.deactivate_quality(token)

    def _plan_trials_inner(
        self,
        policy,
        recordings: Sequence,
        tx_ids: Sequence[int],
        rng: np.random.Generator,
        subsamples_per_sweep: int,
        label: str,
    ) -> List[TrialBlock]:
        column_of = {sector_id: column for column, sector_id in enumerate(tx_ids)}
        id_row = np.asarray(tx_ids, dtype=np.intp)
        pool = list(tx_ids)
        blocks: List[TrialBlock] = []
        with _obs.span(
            "plan.trials",
            policy=getattr(policy, "name", type(policy).__name__),
            recordings=len(recordings),
        ):
            for recording_index, recording in enumerate(recordings):
                present, snr, rssi = recording.packed_sweeps(tx_ids)
                row_ids: List[np.ndarray] = []
                row_snr: List[np.ndarray] = []
                row_rssi: List[np.ndarray] = []
                row_mask: List[np.ndarray] = []
                sweep_ix: List[int] = []
                sub_ix: List[int] = []
                requested: List[int] = []
                for sweep_index in range(len(recording.sweeps)):
                    for subsample in range(subsamples_per_sweep):
                        probe_ids = policy.probes_for_round(0, pool, rng)
                        if probe_ids is None:
                            raise ValueError(
                                f"policy '{getattr(policy, 'name', policy)}' declined "
                                f"round 0; multi-round policies need run_interactive"
                            )
                        columns = np.asarray(
                            [column_of[sector_id] for sector_id in probe_ids],
                            dtype=np.intp,
                        )
                        row_ids.append(id_row[columns])
                        row_snr.append(snr[sweep_index, columns])
                        row_rssi.append(rssi[sweep_index, columns])
                        row_mask.append(present[sweep_index, columns])
                        sweep_ix.append(sweep_index)
                        sub_ix.append(subsample)
                        requested.append(len(probe_ids))
                        _obs.observe("planner_probes_requested", len(probe_ids))
                _obs.inc("planner_trials_total", len(requested))
                blocks.append(
                    TrialBlock(
                        recording_index=recording_index,
                        sector_ids=_pad_rows(row_ids, 0, dtype=np.intp),
                        snr_db=_pad_rows(row_snr, np.nan),
                        rssi_dbm=_pad_rows(row_rssi, np.nan),
                        mask=_pad_rows(row_mask, False, dtype=bool),
                        sweep_indices=np.asarray(sweep_ix, dtype=np.intp),
                        subsample_indices=np.asarray(sub_ix, dtype=np.intp),
                        probes_requested=np.asarray(requested, dtype=np.intp),
                    )
                )
        return blocks

    # -- execution ------------------------------------------------------

    def execute(
        self,
        policy,
        blocks: Sequence[TrialBlock],
        reset: str = "recording",
        policy_spec: Optional[PolicySpec] = None,
        testbed_spec: Optional[TestbedSpec] = None,
        label: Optional[str] = None,
    ) -> List[TrialRecord]:
        """Evaluate planned blocks through a policy.

        ``reset`` fixes the selection-state lifetime:

        * ``"recording"`` — state resets at every block boundary (the
          fresh-selector-per-recording loops).  Blocks are independent,
          so this mode is eligible for process-pool sharding,
          supervision (retry / timeout / pool replacement) and
          checkpoint–resume.
        * ``"plan"`` — one reset up front, state threads through all
          blocks in order (the one-big-batch loops).  Always
          sequential; a mid-plan retry could replay against mutated
          state, so this mode stays fail-fast.
        """
        if reset not in ("recording", "plan"):
            raise ValueError("reset must be 'recording' or 'plan'")
        if label is None:
            label = getattr(policy, "name", type(policy).__name__)
        begin = time.perf_counter()
        quality = self._quality_context(label)
        token = (
            _quality.activate_quality(quality) if quality is not None else None
        )
        try:
            with _obs.span("execute.policy", policy=label, reset=reset) as span:
                # Worker-trace payloads re-parent onto this span when
                # the recording path absorbs them.
                self._policy_span_id = getattr(span, "id", None)
                try:
                    if reset == "plan":
                        records = self._execute_plan(policy, blocks)
                    else:
                        records = self._execute_recording(
                            policy, blocks, policy_spec, testbed_spec, label
                        )
                finally:
                    self._policy_span_id = None
        finally:
            if token is not None:
                _quality.deactivate_quality(token)
            elapsed = time.perf_counter() - begin
            self._policy_timings[label] = self._policy_timings.get(label, 0.0) + elapsed
        return records

    def _execute_plan(self, policy, blocks: Sequence[TrialBlock]) -> List[TrialRecord]:
        policy.reset()
        records: List[TrialRecord] = []
        for block in blocks:
            self._check_abort()
            records.extend(self._records_of(block, self._evaluate_block(policy, block)))
        return records

    def _execute_recording(
        self,
        policy,
        blocks: Sequence[TrialBlock],
        policy_spec: Optional[PolicySpec],
        testbed_spec: Optional[TestbedSpec],
        label: str,
    ) -> List[TrialRecord]:
        """Supervised fresh-state execution with checkpoint awareness."""
        self.health.blocks += len(blocks)
        policy_key = policy_spec.key() if policy_spec is not None else None
        store = self._store if policy_key is not None else None
        # Journal keys carry this call's ordinal within the run:
        # executors run deterministically, so the ordinal is stable
        # across resume, and two evaluations of an identical policy
        # spec (fig7's per-environment CSS runs) can never collide.
        call_index = self._execute_calls
        self._execute_calls += 1

        outputs: Dict[int, Sequence] = {}
        pending: List[int] = []
        for index in range(len(blocks)):
            cached = (
                store.get(policy_key, call_index, index) if store is not None else None
            )
            if cached is not None:
                outputs[index] = cached
                self.health.note_checkpoint_hit(label, index, call_index)
            else:
                pending.append(index)

        if pending:
            # With fewer parallel lanes than 2 (a single-core host), the
            # pool can only pay for its IPC through stacked chunk
            # evaluation; a policy without a stacked kernel runs the
            # same per-block work either way, so it stays local there —
            # unless supervision semantics require process isolation
            # (fault injection, or a retry timeout that must be able to
            # terminate a hung worker).
            lanes = max(1, min(self.jobs, os.cpu_count() or 1))
            retry = self.retry or _FAIL_FAST
            needs_isolation = (
                self._injector is not None or retry.timeout_s is not None
            )
            use_pool = (
                self.jobs > 1
                and len(blocks) > 1
                and policy_spec is not None
                and testbed_spec is not None
                and hasattr(policy, "select_batch")
                and (
                    lanes > 1
                    or needs_isolation
                    or hasattr(policy, "select_fused_stacked")
                )
            )
            # Completed blocks are journaled by the executors *as they
            # finish*, not here: a killed or retry-exhausted campaign
            # must leave every finished block behind for --resume.
            if use_pool:
                executed = self._execute_pool(
                    policy, policy_spec, testbed_spec, blocks, pending, label,
                    store=store, policy_key=policy_key, call_index=call_index,
                )
            else:
                executed = self._execute_supervised_local(
                    policy, blocks, pending, label,
                    store=store, policy_key=policy_key, call_index=call_index,
                    testbed_spec=testbed_spec,
                )
            # Absorb in sorted block order — worker trace payloads merge
            # keyed by (call, block) like the checkpoint journal, so the
            # merged trace never depends on pool scheduling.
            session = _obs.active_session()
            for index in sorted(executed):
                results, info = executed[index]
                outputs[index] = results
                self.health.executed += 1
                payload = info.pop("obs", None) if isinstance(info, dict) else None
                if payload is not None and session is not None:
                    session.absorb_payload(
                        payload, self._policy_span_id, f"c{call_index}b{index}"
                    )
                if info.get("fallback"):
                    self.health.note_fallback(label, index)

        records: List[TrialRecord] = []
        for index, block in enumerate(blocks):
            records.extend(self._records_of(block, outputs[index]))
        return records

    # -- local (in-process) supervised path ------------------------------

    def _execute_supervised_local(
        self,
        policy,
        blocks: Sequence[TrialBlock],
        pending: Sequence[int],
        label: str,
        store: Optional[CheckpointStore] = None,
        policy_key: Optional[str] = None,
        call_index: int = 0,
        testbed_spec: Optional[TestbedSpec] = None,
    ) -> Dict[int, Tuple[Sequence, Dict[str, Any]]]:
        retry = self.retry or _FAIL_FAST
        testbed_key = testbed_spec.key() if testbed_spec is not None else None
        out: Dict[int, Tuple[Sequence, Dict[str, Any]]] = {}
        for index in pending:
            block = blocks[index]
            attempt = 0
            while True:
                self._check_abort()
                attempt += 1
                try:
                    directive = (
                        self._injector.directive(index, attempt)
                        if self._injector is not None
                        else None
                    )
                    span_attrs: Dict[str, Any] = {
                        "policy": label, "call": call_index,
                        "block": index, "attempt": attempt,
                    }
                    if directive is not None:
                        span_attrs["injected"] = True
                    # Same span name and attrs as the pool path emits
                    # worker-side: jobs=1 and jobs=N traces carry the
                    # same span set, differing only in timings.
                    with _obs.span("execute.block", **span_attrs):
                        if directive is not None:
                            self._apply_local_directive(
                                directive, testbed_key, label, index, attempt
                            )
                        policy.reset()
                        out[index] = _eval_block_guarded(policy, block)
                    if store is not None:
                        store.put(policy_key, call_index, index, out[index][0])
                    self.health.note_attempts(label, index, attempt)
                    break
                except Exception as error:
                    if attempt >= retry.max_attempts:
                        raise RetryExhaustedError(label, index, attempt, error)
                    _LOGGER.warning(
                        "block %d of '%s' failed on attempt %d (%s: %s); retrying",
                        index,
                        label,
                        attempt,
                        type(error).__name__,
                        error,
                    )
                    self.health.note_retry(label, index, error)
                    wait = retry.backoff_s(index, attempt)
                    _obs.observe("runner_retry_wait_seconds", wait)
                    self._abort_wait(wait)
        return out

    def _note_injected(self, label: str, index: int, attempt: int, kind: str) -> None:
        """Count a directive once per (label, block, attempt).

        A block lost *collaterally* (its pool died for another block's
        sins) is re-dispatched at its previous attempt number and
        replays the identical directive; counting the replay would make
        the health section depend on scheduling races.
        """
        key = (label, index, attempt)
        if key not in self._injected_seen:
            self._injected_seen.add(key)
            self.health.note_injected(label, index, attempt, kind)

    def _apply_local_directive(
        self,
        directive: Dict[str, Any],
        testbed_key: Optional[str],
        label: str,
        index: int,
        attempt: int,
    ) -> None:
        """Injected faults in sequential mode.

        Crashes cannot take the driving process down, so both ``crash``
        and ``exception`` surface as transient errors; ``hang`` sleeps
        (timeouts are enforced only on the pool path); ``cache-corrupt``
        truncates the on-disk testbed memo and drops the warm in-process
        caches so the next cold build takes the self-healing path — it
        needs a spec-described testbed, and without one the directive is
        skipped and *not* counted as injected.
        """
        kind = directive.get("kind")
        if kind == "cache-corrupt":
            if testbed_key is None:
                return
            self._note_injected(label, index, attempt, kind)
            _corrupt_testbed_cache(testbed_key)
            _reset_worker_caches()
            return
        self._note_injected(label, index, attempt, kind)
        if kind in ("crash", "exception"):
            raise FaultInjectionError(f"injected transient fault ({kind}, local mode)")
        if kind == "hang":
            time.sleep(float(directive.get("hang_s", 30.0)))

    def _evaluate_block(self, policy, block: TrialBlock) -> List:
        """The unguarded evaluation used by the stateful plan path."""
        begin = time.perf_counter()
        entry, path = _batched_entry(policy)
        if entry is not None:
            results = entry(
                block.sector_ids,
                snr_db=block.snr_db,
                rssi_dbm=block.rssi_dbm,
                mask=block.mask,
            )
            _obs.inc("runner_kernel_path_total", path=path)
        else:
            results = _eval_block_scalar(policy, block)
            _obs.inc("runner_kernel_path_total", path="scalar")
        _obs.observe("runner_block_seconds", time.perf_counter() - begin)
        return results

    @staticmethod
    def _records_of(block: TrialBlock, results: Sequence) -> List[TrialRecord]:
        return [
            TrialRecord(
                recording_index=block.recording_index,
                sweep_index=int(block.sweep_indices[index]),
                subsample=int(block.subsample_indices[index]),
                result=result,
                probes_requested=int(block.probes_requested[index]),
            )
            for index, result in enumerate(results)
        ]

    # -- process-pool supervised path ------------------------------------

    def _publish_kernels(self, policy, testbed_key: str, policy_key: str):
        """Publish the policy's precomputed kernels over shared memory.

        Returns a manifest for workers to attach, or None when the
        policy exports nothing (non-CSS, theoretical patterns, direct
        table override).  Memoized per (testbed, policy) configuration,
        so repeated executes and warm-pool service runs publish once.

        Designed probe subsets ride the same segment (``design.<k>.*``
        entries): publication happens after :meth:`plan_trials`, so a
        deterministic designer's subset for the run's pool is warm in
        the policy by the time this exports — the policy key includes
        the spec's ``probe_design`` block, so the memo stays exact.
        """
        exporter = getattr(policy, "shared_kernels", None)
        if not callable(exporter):
            return None
        kernels = exporter()
        if not kernels:
            return None
        return self._shm.publish(f"{testbed_key}::{policy_key}", kernels)

    def _publish_blocks(
        self,
        blocks: Sequence[TrialBlock],
        policy_key: str,
        call_index: int,
    ) -> Optional[SharedKernelManifest]:
        """Publish an execute call's trial arrays over shared memory.

        Chunk tasks then carry block *indices* instead of pickled
        arrays, and workers map read-only views — the zero-copy half of
        the dispatch.  Keyed by (run digest, policy, call ordinal):
        planning is deterministic in the spec, so repeated runs of the
        same spec (the perf harness, service re-submissions) reuse the
        published segment byte-for-byte.  Outside :meth:`run` there is
        no digest to key on, and blocks fall back to pickling.
        """
        if self._run_digest is None:
            return None
        arrays: Dict[str, np.ndarray] = {}
        for index, block in enumerate(blocks):
            arrays[f"{index}.ids"] = block.sector_ids
            arrays[f"{index}.snr"] = block.snr_db
            arrays[f"{index}.rssi"] = block.rssi_dbm
            arrays[f"{index}.mask"] = block.mask
        key = f"blocks::{self._run_digest}::{policy_key}::c{call_index}"
        return self._shm.publish(key, arrays)

    @staticmethod
    def _chunks_of(indices: Sequence[int], jobs: int) -> List[List[int]]:
        """Split clean blocks into contiguous chunks for dispatch.

        At most ``min(jobs, cpu_count)`` chunks: a task per worker is
        what parallel hardware can actually overlap, and every chunk
        beyond the core count adds an IPC round-trip (and dilutes the
        stacked-evaluation amortization) without adding parallelism.
        """
        if not indices:
            return []
        lanes = max(1, min(jobs, os.cpu_count() or 1))
        size = -(-len(indices) // lanes)
        return [list(indices[i : i + size]) for i in range(0, len(indices), size)]

    def _execute_pool(
        self,
        policy,
        policy_spec: PolicySpec,
        testbed_spec: TestbedSpec,
        blocks: Sequence[TrialBlock],
        pending: Sequence[int],
        label: str,
        store: Optional[CheckpointStore] = None,
        policy_key: Optional[str] = None,
        call_index: int = 0,
    ) -> Dict[int, Tuple[Sequence, Dict[str, Any]]]:
        """Dispatch blocks to the pool under the supervision policy.

        One round per pool lifetime: all remaining blocks are submitted,
        results are collected in task order, and the first worker death
        or hung task abandons the pool (harvesting whatever already
        finished) and starts a fresh round for the survivors.  Only a
        block's *own* failure counts against its attempt budget;
        collaterally lost blocks are re-dispatched at their previous
        attempt number, so injected faults replay identically.

        Dispatch granularity: directive-carrying blocks are submitted
        one per task (fault attribution stays per-block exact); clean
        blocks ride in at most ``jobs`` chunks per round
        (:func:`_worker_run_chunk`), so a round costs O(jobs) IPC
        round-trips instead of O(blocks).  A chunk's wall-clock budget
        scales with its length; a timed-out or pool-breaking chunk
        charges its first block (the crash-directive culprit search
        still wins when the harness injected one), and a chunk's own
        partial results are harvested from its return value.
        """
        retry = self.retry or _FAIL_FAST
        testbed_key = testbed_spec.key()
        worker_policy_key = policy_spec.key()
        manifest = self._publish_kernels(policy, testbed_key, worker_policy_key)
        blocks_manifest = self._publish_blocks(
            blocks, worker_policy_key, call_index
        )
        traced = _obs.enabled()
        # Ship the active quality context (if any) to workers inside
        # obs_meta; the worker pops it back out before spanning, so
        # traces stay attr-identical while worker exemplars carry the
        # supervisor's labels.
        quality_meta = (
            _quality.quality_context().to_meta()
            if _quality.quality_context() is not None
            else None
        )
        self._journal = (store, policy_key, call_index)
        out: Dict[int, Tuple[Sequence, Dict[str, Any]]] = {}
        attempts: Dict[int, int] = {index: 0 for index in pending}
        remaining = set(pending)
        barren_rounds = 0
        last_error: BaseException = BrokenProcessPool("process pool broken")
        while remaining:
            # Abort between rounds: nothing is in flight here, so a
            # cancel or deadline expiry surfaces with the journal
            # holding exactly the settled blocks and the pool healthy.
            self._check_abort()
            pool = self._ensure_pool()
            batch = sorted(remaining)
            before = len(remaining)
            dispatch_attempt: Dict[int, int] = {}
            directives: Dict[int, Optional[Dict[str, Any]]] = {}
            tasks: List[Tuple[str, List[int], Any]] = []
            failures: List[Tuple[int, BaseException]] = []
            dispatched = True
            try:
                obs_meta_of: Dict[int, Dict[str, Any]] = {}
                for index in batch:
                    dispatch_attempt[index] = attempts[index] + 1
                    directive = (
                        self._injector.directive(index, dispatch_attempt[index])
                        if self._injector is not None
                        else None
                    )
                    directives[index] = directive
                    if directive is not None:
                        self._note_injected(
                            label, index, dispatch_attempt[index],
                            directive.get("kind"),
                        )
                    if traced:
                        obs_meta = {
                            "policy": label, "call": call_index,
                            "block": index, "attempt": dispatch_attempt[index],
                        }
                        if directive is not None:
                            obs_meta["injected"] = True
                        if quality_meta is not None:
                            obs_meta["quality"] = quality_meta
                        obs_meta_of[index] = obs_meta
                clean = [index for index in batch if directives[index] is None]
                for index in batch:
                    if directives[index] is None:
                        continue
                    future = pool.submit(
                        _worker_run_block,
                        testbed_key,
                        worker_policy_key,
                        blocks[index],
                        directives[index],
                        obs_meta_of.get(index),
                        manifest,
                    )
                    tasks.append(("single", [index], future))
                for chunk in self._chunks_of(clean, self.jobs):
                    chunk_metas = (
                        {index: obs_meta_of[index] for index in chunk}
                        if traced
                        else None
                    )
                    if blocks_manifest is not None:
                        payload = [
                            (index, blocks[index].recording_index)
                            for index in chunk
                        ]
                    else:
                        payload = [(index, blocks[index]) for index in chunk]
                    future = pool.submit(
                        _worker_run_chunk,
                        testbed_key,
                        worker_policy_key,
                        payload,
                        chunk_metas,
                        manifest,
                        blocks_manifest,
                    )
                    tasks.append(("chunk", chunk, future))
            except _POOL_FAULTS as error:
                # A worker died between rounds (e.g. the straggling tail
                # of a crash that broke the previous pool).  Nothing
                # rejected at submit has run, so nobody's attempt budget
                # is charged: keep whatever did finish, replace the pool
                # and redo the round.
                dispatched = False
                last_error = error
                self._harvest_done(
                    tasks, None, dispatch_attempt, attempts, remaining,
                    out, failures, label,
                )
                self._abandon_pool()
                self.health.note_pool_replacement()
            if dispatched:
                try:
                    self._collect_round(
                        tasks, retry, batch, directives, dispatch_attempt,
                        attempts, remaining, out, failures, label,
                    )
                except RunAbortedError:
                    # The run was cancelled or its deadline passed while
                    # tasks were in flight: keep (and journal) whatever
                    # already finished, abandon the rest un-charged, and
                    # let the abort pierce every supervision layer.
                    self._harvest_done(
                        tasks, None, dispatch_attempt, attempts, remaining,
                        out, failures, label,
                    )
                    self._abandon_pool()
                    raise
            if len(remaining) < before or failures:
                barren_rounds = 0
            else:
                # No completions and no chargeable failures: a pool that
                # keeps breaking before running anything.  Give up after
                # a few replacements rather than looping forever.
                barren_rounds += 1
                if barren_rounds > 5:
                    stuck = min(remaining)
                    raise RetryExhaustedError(
                        label, stuck, attempts[stuck] + 1, last_error
                    )
            for index, error in failures:
                if attempts[index] >= retry.max_attempts:
                    raise RetryExhaustedError(label, index, attempts[index], error)
            if failures:
                for index, error in failures:
                    self.health.note_retry(label, index, error)
                _LOGGER.warning(
                    "retrying %d block(s) of '%s' after: %s",
                    len(failures),
                    label,
                    "; ".join(
                        f"block {i}: {type(e).__name__}" for i, e in failures
                    ),
                )
                wait = max(
                    retry.backoff_s(index, attempts[index]) for index, _ in failures
                )
                _obs.observe("runner_retry_wait_seconds", wait)
                self._abort_wait(wait)
        return out

    def _collect_round(
        self,
        tasks: List[Tuple[str, List[int], Any]],
        retry: RetryPolicy,
        batch: List[int],
        directives: Dict[int, Optional[Dict[str, Any]]],
        dispatch_attempt: Dict[int, int],
        attempts: Dict[int, int],
        remaining: set,
        out: Dict[int, Tuple[Sequence, Dict[str, Any]]],
        failures: List[Tuple[int, BaseException]],
        label: str,
    ) -> None:
        """Collect one dispatched round's results in task order."""
        abandoned = False
        for task in tasks:
            if abandoned:
                break
            kind, indices, future = task
            budget = (
                retry.timeout_s
                if retry.timeout_s is None or kind == "single"
                else retry.timeout_s * len(indices)
            )
            try:
                payload = self._await_task(future, budget)
            except _FuturesTimeout:
                # The hung block inside a chunk is unknowable
                # from outside; charge the chunk's first block
                # (singles charge themselves).
                charged = indices[0]
                self.health.note_timeout(label, charged, budget)
                attempts[charged] = dispatch_attempt[charged]
                noun = (
                    f"block {charged}"
                    if kind == "single"
                    else f"chunk of {len(indices)} blocks at {charged}"
                )
                failures.append(
                    (
                        charged,
                        BlockTimeoutError(
                            f"{noun} of '{label}' exceeded its "
                            f"{budget:.3g} s wall-clock budget"
                        ),
                    )
                )
                self._harvest_done(
                    tasks, task, dispatch_attempt, attempts, remaining,
                    out, failures, label,
                )
                self._abandon_pool()
                self.health.note_pool_replacement()
                abandoned = True
            except _POOL_FAULTS as error:
                # A worker died.  When the harness injected a crash
                # this round the death IS the experiment: charge the
                # block carrying the directive so injection tests
                # converge or exhaust.  An *external* death (OOM
                # killer, chaos campaign, operator) is environmental
                # — replace the pool and redo the round without
                # touching anyone's retry budget.
                culprit = None
                for candidate in batch:
                    if (
                        candidate in remaining
                        and (directives.get(candidate) or {}).get("kind")
                        == "crash"
                    ):
                        culprit = candidate
                        break
                if culprit is not None:
                    attempts[culprit] = dispatch_attempt[culprit]
                    failures.append((culprit, error))
                else:
                    _LOGGER.warning(
                        "pool broke under '%s' (%s); replacing it and "
                        "redoing the round uncharged",
                        label,
                        type(error).__name__,
                    )
                self._harvest_done(
                    tasks, task, dispatch_attempt, attempts, remaining,
                    out, failures, label,
                )
                self._abandon_pool()
                self.health.note_pool_replacement()
                abandoned = True
            except Exception as error:
                # The worker raised (e.g. an injected transient
                # exception); the pool itself is healthy.
                charged = indices[0]
                attempts[charged] = dispatch_attempt[charged]
                failures.append((charged, error))
            else:
                if kind == "single":
                    self._settle_success(
                        indices[0], payload, dispatch_attempt,
                        attempts, remaining, out, label,
                    )
                else:
                    done, failure = payload
                    for index in indices:
                        block_payload = done.get(index)
                        if block_payload is not None:
                            self._settle_success(
                                index, block_payload, dispatch_attempt,
                                attempts, remaining, out, label,
                            )
                    if failure is not None:
                        failed_index, error = failure
                        attempts[failed_index] = dispatch_attempt[
                            failed_index
                        ]
                        failures.append((failed_index, error))
                    # Chunk blocks neither done nor failed are
                    # collateral: untouched attempt budget.

    def _settle_success(
        self,
        index: int,
        payload: Tuple[Sequence, Dict[str, Any]],
        dispatch_attempt: Dict[int, int],
        attempts: Dict[int, int],
        remaining: set,
        out: Dict[int, Tuple[Sequence, Dict[str, Any]]],
        label: str,
    ) -> None:
        """Record one finished block: journal it, settle its attempt."""
        attempts[index] = dispatch_attempt[index]
        out[index] = payload
        remaining.discard(index)
        store, policy_key, call_index = self._journal
        if store is not None:
            store.put(policy_key, call_index, index, payload[0])
        self.health.note_attempts(label, index, attempts[index])

    def _harvest_done(
        self,
        tasks: Sequence[Tuple[str, List[int], Any]],
        skip_task: Optional[Tuple[str, List[int], Any]],
        dispatch_attempt: Dict[int, int],
        attempts: Dict[int, int],
        remaining: set,
        out: Dict[int, Tuple[Sequence, Dict[str, Any]]],
        failures: List[Tuple[int, BaseException]],
        label: str,
    ) -> None:
        """Before abandoning a pool, keep everything that already finished.

        Tasks that died with the pool (broken / cancelled) are
        *collateral*: their blocks stay in ``remaining`` at their
        previous attempt number and do not count against their retry
        budget.  A finished chunk task contributes every block of its
        ``done`` map and charges its recorded first failure, if any.
        ``skip_task`` is the task whose failure triggered the abandon —
        already charged by the caller.
        """
        already_failed = {index for index, _ in failures}
        for task in tasks:
            if task is skip_task:
                continue
            kind, indices, future = task
            if future is None or not future.done():
                continue
            try:
                payload = future.result(timeout=0)
            except _POOL_FAULTS:
                continue
            except _FuturesCancelled:
                # Cancelled with its pool — collateral, not a failure.
                # (Subclasses BaseException, so the Exception clause
                # below would not catch it.)
                continue
            except _FuturesTimeout:
                continue
            except Exception as error:
                index = indices[0]
                if index in remaining and index not in already_failed:
                    attempts[index] = dispatch_attempt[index]
                    failures.append((index, error))
                    already_failed.add(index)
            else:
                if kind == "single":
                    index = indices[0]
                    if index in remaining and index not in already_failed:
                        self._settle_success(
                            index, payload, dispatch_attempt,
                            attempts, remaining, out, label,
                        )
                    continue
                done, failure = payload
                for index in indices:
                    block_payload = done.get(index)
                    if (
                        block_payload is not None
                        and index in remaining
                        and index not in already_failed
                    ):
                        self._settle_success(
                            index, block_payload, dispatch_attempt,
                            attempts, remaining, out, label,
                        )
                if failure is not None:
                    failed_index, error = failure
                    if failed_index in remaining and failed_index not in already_failed:
                        attempts[failed_index] = dispatch_attempt[failed_index]
                        failures.append((failed_index, error))
                        already_failed.add(failed_index)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if "fork" in multiprocessing.get_all_start_methods():
                mp_context = multiprocessing.get_context("fork")
            else:  # pragma: no cover - non-POSIX fallback
                mp_context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=mp_context,
                initializer=_reset_worker_signals,
            )
        return self._pool

    def _abandon_pool(self) -> None:
        """Tear down a broken or hung pool without waiting on it.

        SIGKILL, not SIGTERM: the pool is already broken, and a worker
        wedged inside a kernel (or an inherited signal handler) would
        otherwise survive terminate() and leave the executor's
        management thread joining it forever — including at
        interpreter exit.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except _POOL_FAULTS + (OSError,):
            # shutdown() pokes the executor's wakeup pipe; on a pool
            # whose management thread already tore down, that poke can
            # itself raise — exactly the state we're abandoning.
            pass
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass

    # -- interactive (multi-round) path ---------------------------------

    def run_interactive(
        self,
        policy,
        pool: Sequence[int],
        measure: Callable[[List[int], np.random.Generator], List],
        rng: np.random.Generator,
        label: Optional[str] = None,
    ) -> PolicyOutcome:
        """Drive one training round-by-round (hierarchical, oracle, …).

        ``measure(sector_ids, rng)`` returns the measurements of the
        requested probes; rounds continue until ``probes_for_round``
        returns None.  The last round's ``select`` result is the
        trial's outcome.
        """
        if label is None:
            label = getattr(policy, "name", type(policy).__name__)
        begin = time.perf_counter()
        quality = self._quality_context(label)
        token = (
            _quality.activate_quality(quality) if quality is not None else None
        )
        try:
            with _obs.span("execute.interactive", policy=label):
                result = None
                probes_used = 0
                round_index = 0
                while True:
                    probe_ids = policy.probes_for_round(round_index, pool, rng)
                    if probe_ids is None:
                        break
                    measurements = measure(list(probe_ids), rng)
                    probes_used += len(probe_ids)
                    result = policy.select(measurements)
                    round_index += 1
                if result is None:
                    raise ValueError(
                        f"policy '{label}' ran zero rounds — nothing to select from"
                    )
                return PolicyOutcome(
                    result=result,
                    probes_used=probes_used,
                    n_rounds=round_index,
                    training_time_us=policy.training_time_us(probes_used, round_index),
                )
        finally:
            if token is not None:
                _quality.deactivate_quality(token)
            elapsed = time.perf_counter() - begin
            self._policy_timings[label] = self._policy_timings.get(label, 0.0) + elapsed
