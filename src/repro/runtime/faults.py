"""Fault model for the scenario runtime: what breaks, what recovers.

The paper's selling point is robustness under degraded *input* — M=14
noisy probes match the exhaustive sweep (§6.3) — and the execution
layer that reproduces those numbers holds itself to the same standard
for degraded *infrastructure*.  This module is the vocabulary:

* :class:`RetryPolicy` — how the runner supervises every dispatched
  :class:`~.runner.TrialBlock`: bounded attempts, exponential backoff
  with *deterministic* seeded jitter (two runs of the same spec retry
  at the same instants), and an optional per-block wall-clock timeout.
* :class:`FaultSpec` / :class:`FaultPlan` — declarative, seed-stable
  fault injection: worker crashes, block hangs, transient exceptions
  and corrupted testbed-cache reads, each at chosen block indices and
  for a chosen number of attempts.  A plan rides on a
  :class:`~.spec.ScenarioSpec` (``repro-bench run --inject``) so every
  degradation path is exercised in CI, not just claimed.
* :class:`RunHealth` — the observable outcome: attempts, retries,
  timeouts, pool replacements, scalar fallbacks and checkpoint hits,
  surfaced through :class:`~.manifest.RunManifest`.

Invariant (pinned in tests): because randomness is consumed only during
planning and block evaluation is pure, recovery — retries, pool
replacement, checkpoint resume, scalar fallback — is **bit-invisible**
in the records.  A fault plan changes a run's health section, never its
results, which is why :meth:`~.spec.ScenarioSpec.digest` excludes it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .. import obs as _obs

__all__ = [
    "FAULT_KINDS",
    "FaultInjectionError",
    "BlockTimeoutError",
    "RetryExhaustedError",
    "RunAbortedError",
    "RunCancelledError",
    "DeadlineExceededError",
    "RetryPolicy",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "RunHealth",
]

#: The degradation paths the harness can inject.
FAULT_KINDS = ("crash", "hang", "exception", "cache-corrupt")


class FaultInjectionError(RuntimeError):
    """A transient failure raised by the fault-injection harness."""


class BlockTimeoutError(RuntimeError):
    """A block exceeded its supervised wall-clock budget."""


class RetryExhaustedError(RuntimeError):
    """A block failed on every allowed attempt.

    Attributes:
        label: the execute-call label (usually the policy name).
        block_index: which block gave up.
        attempts: how many attempts were made.
        cause: the last failure.
    """

    def __init__(self, label: str, block_index: int, attempts: int, cause: BaseException):
        super().__init__(
            f"block {block_index} of '{label}' failed on all {attempts} "
            f"attempt(s); last error: {type(cause).__name__}: {cause}"
        )
        self.label = label
        self.block_index = int(block_index)
        self.attempts = int(attempts)
        self.cause = cause


class RunAbortedError(BaseException):
    """A run was stopped on purpose, not by a fault.

    Subclasses ``BaseException`` deliberately: the runner's supervision
    layers absorb ``Exception`` (retry, pool replacement, scalar
    fallback — that is their job), but an abort is an *instruction*,
    not a failure, and must pierce every retry loop the way
    ``KeyboardInterrupt`` does.  Nothing is charged to health counters
    on the way out; completed blocks stay journaled so a later
    retry-resume picks up exactly where the abort landed.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class RunCancelledError(RunAbortedError):
    """The run was cooperatively cancelled (``ScenarioRunner.cancel``)."""

    def __init__(self, reason: str = "run cancelled"):
        super().__init__(reason)


class DeadlineExceededError(RunAbortedError):
    """The run's wall-clock deadline passed before it finished.

    Raised *between* block attempts — no attempt is ever scheduled
    past the deadline — so the journal holds only whole, verified
    blocks when the abort surfaces.
    """

    def __init__(self, reason: str = "run deadline exceeded"):
        super().__init__(reason)


def _unit_fraction(*parts: object) -> float:
    """Deterministic hash of ``parts`` mapped into [0, 1)."""
    digest = hashlib.sha256(":".join(str(part) for part in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision parameters for every dispatched trial block.

    Attributes:
        max_attempts: total tries per block (1 = fail fast).
        backoff_base_s: sleep before the second attempt.
        backoff_factor: multiplier per further attempt.
        jitter: fractional spread added on top of the exponential
            backoff.  The jitter is *seeded* — a pure function of
            ``(seed, block, attempt)`` — so recovery timing is as
            reproducible as the results.
        timeout_s: per-block wall-clock budget.  Enforced on the
            process-pool path (a hung worker is terminated and the
            block retried on a fresh pool); ``None`` disables it.
        seed: jitter seed.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    timeout_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_factor < 1 or self.jitter < 0:
            raise ValueError("backoff parameters must be non-negative (factor >= 1)")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")

    def backoff_s(self, block_index: int, attempt: int) -> float:
        """Sleep before re-dispatching ``block_index`` after ``attempt``."""
        base = self.backoff_base_s * self.backoff_factor ** max(attempt - 1, 0)
        return base * (1.0 + self.jitter * _unit_fraction(self.seed, block_index, attempt))

    def to_json(self) -> Dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base_s,
            "backoff_factor": self.backoff_factor,
            "jitter": self.jitter,
            "timeout_s": self.timeout_s,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultSpec:
    """One injection: ``kind`` fired at ``block`` for ``times`` attempts.

    ``times`` is the number of *consecutive leading attempts* that see
    the fault — ``times=2`` means attempts 1 and 2 fail and attempt 3
    runs clean, which is exactly the shape a retry policy must absorb.
    """

    kind: str
    block: int
    times: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind '{self.kind}'; known: {', '.join(FAULT_KINDS)}"
            )
        if self.block < 0 or self.times < 1:
            raise ValueError("block must be >= 0 and times >= 1")

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "block": self.block, "times": self.times}

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            kind=str(data["kind"]),
            block=int(data["block"]),
            times=int(data.get("times", 1)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of injections for one run.

    Attributes:
        faults: the injections; a block index matches every
            supervised ``execute()`` call of the run (so a plan wired
            through a multi-policy scenario exercises every policy).
        hang_s: how long an injected hang sleeps.  Pair it with a
            smaller :attr:`RetryPolicy.timeout_s` to exercise the
            timeout + retry path.
    """

    faults: Tuple[FaultSpec, ...] = ()
    hang_s: float = 30.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "faults": [fault.to_json() for fault in self.faults],
            "hang_s": self.hang_s,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            faults=tuple(FaultSpec.from_json(entry) for entry in data.get("faults", ())),
            hang_s=float(data.get("hang_s", 30.0)),
        )

    @classmethod
    def parse(cls, tokens: List[str], hang_s: float = 30.0) -> "FaultPlan":
        """Build a plan from CLI tokens like ``crash@1`` / ``exception@0,2*2``.

        Grammar: ``kind@block[,block...][*times]`` with ``kind`` one of
        :data:`FAULT_KINDS`.
        """
        faults: List[FaultSpec] = []
        for token in tokens:
            kind, separator, rest = token.partition("@")
            if not separator or not rest:
                raise ValueError(
                    f"bad --inject token '{token}'; expected kind@block[,block...][*times]"
                )
            times = 1
            if "*" in rest:
                rest, _, times_text = rest.rpartition("*")
                times = int(times_text)
            for block_text in rest.split(","):
                faults.append(FaultSpec(kind=kind, block=int(block_text), times=times))
        return cls(faults=tuple(faults), hang_s=hang_s)


class FaultInjector:
    """Resolves a :class:`FaultPlan` into per-dispatch directives.

    Stateless by design: the supervisor passes the attempt number, so
    whether a fault fires is a pure function of ``(block, attempt)`` —
    re-dispatching a block lost collaterally (its pool died for another
    block's sins) replays the identical decision.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def directive(self, block_index: int, attempt: int) -> Optional[Dict[str, Any]]:
        """The injection for this dispatch, or None to run clean."""
        for fault in self.plan.faults:
            if fault.block == block_index and attempt <= fault.times:
                out: Dict[str, Any] = {"kind": fault.kind}
                if fault.kind == "hang":
                    out["hang_s"] = self.plan.hang_s
                return out
        return None


@dataclass
class RunHealth:
    """Observable execution health of one run (manifest ``health``).

    Attributes:
        blocks: trial blocks requested through supervised execution.
        executed: blocks actually evaluated this run (rest were
            restored from a checkpoint).
        checkpoint_hits: blocks skipped because a checkpoint already
            held their results.
        retries: block re-dispatches after an own failure.
        timeouts: per-block wall-clock budget violations.
        pool_replacements: process pools torn down and rebuilt after a
            worker death or a hung block.
        injected: fault-plan directives issued.
        fallbacks: blocks whose batched kernel failed and were
            recomputed on the scalar reference path.
        attempts: attempts per block that needed more than one, keyed
            ``"label[index]"``.
    """

    blocks: int = 0
    executed: int = 0
    checkpoint_hits: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_replacements: int = 0
    injected: int = 0
    fallbacks: int = 0
    attempts: Dict[str, int] = field(default_factory=dict)

    # The note_* methods below are the one place supervision outcomes
    # are accounted: each bumps its health counter *and* mirrors the
    # occurrence into the observability layer (a trace event plus a
    # metric), so the manifest's health section and a run's trace can
    # never drift apart.  With no active obs session the mirroring is
    # a no-op.

    def note_attempts(self, label: str, block_index: int, attempts: int) -> None:
        if attempts > 1:
            key = f"{label}[{block_index}]"
            self.attempts[key] = max(self.attempts.get(key, 0), attempts)

    def note_retry(self, label: str, block_index: int, error: BaseException) -> None:
        """A block is being re-dispatched after its own failure."""
        self.retries += 1
        _obs.event(
            "retry",
            policy=label,
            block=int(block_index),
            error=type(error).__name__,
        )
        _obs.inc("runner_retries_total")

    def note_timeout(self, label: str, block_index: int, budget_s: float) -> None:
        """A block exceeded its supervised wall-clock budget."""
        self.timeouts += 1
        _obs.event(
            "timeout", policy=label, block=int(block_index), budget_s=float(budget_s)
        )
        _obs.inc("runner_timeouts_total")

    def note_pool_replacement(self) -> None:
        """A broken or hung process pool was torn down and rebuilt."""
        self.pool_replacements += 1
        _obs.event("pool.replaced")
        _obs.inc("runner_pool_replacements_total")

    def note_fallback(self, label: str, block_index: int) -> None:
        """A block's batched kernel failed; the scalar path recomputed it."""
        self.fallbacks += 1
        _obs.event("kernel.fallback", policy=label, block=int(block_index))
        _obs.inc("runner_fallbacks_total")

    def note_checkpoint_hit(self, label: str, block_index: int, call_index: int) -> None:
        """A block was restored from the checkpoint journal, not executed."""
        self.checkpoint_hits += 1
        _obs.event(
            "checkpoint.hit",
            policy=label,
            call=int(call_index),
            block=int(block_index),
        )
        _obs.inc("checkpoint_hits_total")

    def note_injected(
        self, label: str, block_index: int, attempt: int, kind: str
    ) -> None:
        """A fault-plan directive was issued for this dispatch.

        The trace event is tagged ``injected=True`` so a faulty run's
        trace is distinguishable from organic failures (and the tag
        survives the jobs>1 merge — it is recorded runner-side, keyed
        by the same dispatch the directive rode on).
        """
        self.injected += 1
        _obs.event(
            "fault.injected",
            injected=True,
            kind=str(kind),
            policy=label,
            block=int(block_index),
            attempt=int(attempt),
        )
        _obs.inc("runner_injected_total", kind=str(kind))

    def to_json(self) -> Dict[str, Any]:
        return {
            "blocks": self.blocks,
            "executed": self.executed,
            "checkpoint_hits": self.checkpoint_hits,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_replacements": self.pool_replacements,
            "injected": self.injected,
            "fallbacks": self.fallbacks,
            "attempts": dict(self.attempts),
        }
