"""Unit tests for Table 1 schedules and the §4.1 timing model."""

import pytest

from repro.mac import (
    BEACON_SCHEDULE,
    SWEEP_SCHEDULE,
    beacon_burst,
    custom_sweep_burst,
    mutual_training_time_us,
    one_sided_sweep_time_us,
    schedule_table_rows,
    sweep_burst,
    training_speedup,
)


class TestBeaconSchedule:
    def test_sector_63_at_cdown_33(self):
        assert BEACON_SCHEDULE[33] == 63

    def test_sectors_1_to_31_at_cdown_31_to_1(self):
        for sector_id in range(1, 32):
            assert BEACON_SCHEDULE[32 - sector_id] == sector_id

    def test_unused_slots_absent(self):
        for cdown in (34, 32, 0):
            assert cdown not in BEACON_SCHEDULE

    def test_32_slots_total(self):
        assert len(BEACON_SCHEDULE) == 32


class TestSweepSchedule:
    def test_sectors_1_to_31_lead_the_burst(self):
        for sector_id in range(1, 32):
            assert SWEEP_SCHEDULE[35 - sector_id] == sector_id

    def test_61_62_63_close_the_burst(self):
        assert SWEEP_SCHEDULE[2] == 61
        assert SWEEP_SCHEDULE[1] == 62
        assert SWEEP_SCHEDULE[0] == 63

    def test_cdown_3_unused(self):
        assert 3 not in SWEEP_SCHEDULE

    def test_34_sectors_total(self):
        assert len(SWEEP_SCHEDULE) == 34
        assert sorted(SWEEP_SCHEDULE.values()) == list(range(1, 32)) + [61, 62, 63]


class TestBursts:
    def test_bursts_in_decreasing_cdown_order(self):
        for burst in (beacon_burst(), sweep_burst()):
            cdowns = [cdown for cdown, _ in burst]
            assert cdowns == sorted(cdowns, reverse=True)

    def test_sweep_burst_first_and_last(self):
        burst = sweep_burst()
        assert burst[0] == (34, 1)
        assert burst[-1] == (0, 63)

    def test_custom_burst_counts_down_to_zero(self):
        burst = custom_sweep_burst([5, 9, 61])
        assert burst == [(2, 5), (1, 9), (0, 61)]

    def test_custom_burst_validation(self):
        with pytest.raises(ValueError):
            custom_sweep_burst([])
        with pytest.raises(ValueError):
            custom_sweep_burst([1, 1])

    def test_table_rows_render(self):
        rows = schedule_table_rows()
        assert len(rows) == 2
        beacon_label, beacon_cells = rows[0]
        assert beacon_label == "Beacon"
        assert len(beacon_cells) == 35
        assert beacon_cells[0] == "-"       # CDOWN 34 unused
        assert beacon_cells[1] == "63"      # CDOWN 33
        sweep_label, sweep_cells = rows[1]
        assert sweep_cells[0] == "1"        # CDOWN 34
        assert sweep_cells[-1] == "63"      # CDOWN 0


class TestTiming:
    def test_paper_headline_values(self):
        assert mutual_training_time_us(34) / 1000 == pytest.approx(1.27, abs=0.005)
        assert mutual_training_time_us(14) / 1000 == pytest.approx(0.55, abs=0.005)

    def test_speedup_is_2_3(self):
        assert training_speedup(14) == pytest.approx(2.3, abs=0.05)

    def test_one_sided_time_linear(self):
        assert one_sided_sweep_time_us(10) == pytest.approx(180.0)
        assert one_sided_sweep_time_us(20) == pytest.approx(360.0)

    def test_rejects_zero_probes(self):
        with pytest.raises(ValueError):
            mutual_training_time_us(0)

    def test_monotone_in_probes(self):
        times = [mutual_training_time_us(n) for n in range(1, 40)]
        assert times == sorted(times)
