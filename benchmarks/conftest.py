"""Benchmark fixtures: result reporting and a pre-warmed testbed."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def warm_testbed():
    """Build the shared testbed once so its cost is not in any bench."""
    from repro.experiments.common import build_testbed

    return build_testbed()


@pytest.fixture()
def report_rows(request):
    """Print experiment rows and persist them under benchmarks/results/."""

    def report(rows):
        text = "\n".join(rows)
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return report
