"""Regression attribution: diff two runs and rank *what changed*.

``repro-bench diff A B`` compares two observability artifacts — trace
JSONL files, run manifests, or points out of a BENCH trajectory file —
and emits a deterministic ranked report:

* **Per-stage wall-time deltas** with noise-aware significance: a
  stage's relative change only counts as significant when it clears
  the measured jitter (the ``*_noise_pct`` metrics the perf harness
  records; the widest one present widens the threshold, the same
  discipline ``perf --check`` applies to its gates).
* **Metric drift** — counters and scalar metrics present on both
  sides, ranked by relative change; count mismatches on supposedly
  deterministic counters are flagged outright.
* **Quality-histogram drift** — distribution distance between the
  labeled quality histograms (L1 over normalized bucket mass), which
  localizes *physical-layer* changes (a designer got less coherent, a
  policy's margins collapsed) separately from mechanical ones.
* **First-divergent-stage localization** — the earliest stage, in
  pipeline order, whose timing or count significantly moved; the CI
  perf gate prints it so a failure names a suspect instead of a
  number.

Targets address BENCH points as ``path#selector`` where ``selector``
is a point label (last match wins) or an integer index; a bare BENCH
path takes the last point.  Everything is pure-function over the
loaded JSON, so the same inputs always produce the same report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "load_diff_target",
    "diff_targets",
    "format_diff_rows",
    "DEFAULT_NOISE_PCT",
]

#: Significance floor when neither side carries a measured noise
#: metric — matches the perf harness's observed dev-box jitter.
DEFAULT_NOISE_PCT = 5.0

#: Pipeline order for first-divergence localization; stages absent
#: from the list rank after the known ones, alphabetically.
_STAGE_ORDER = (
    "scenario.run",
    "plan.trials",
    "probe.design",
    "execute.policy",
    "execute.block",
)


def _stage_rank(name: str) -> Tuple[int, str]:
    try:
        return (_STAGE_ORDER.index(name), name)
    except ValueError:
        return (len(_STAGE_ORDER), name)


# ----------------------------------------------------------------------
# Target loading.
# ----------------------------------------------------------------------


def _is_bench_payload(payload: Any) -> bool:
    return isinstance(payload, dict) and isinstance(payload.get("points"), list)


def _select_bench_point(points: List[dict], selector: Optional[str]) -> dict:
    if not points:
        raise ValueError("BENCH file has no points")
    if selector is None or selector == "":
        return points[-1]
    try:
        index = int(selector)
    except ValueError:
        labeled = [p for p in points if p.get("label") == selector]
        if not labeled:
            raise ValueError(f"no BENCH point labeled {selector!r}")
        return labeled[-1]
    try:
        return points[index]
    except IndexError:
        raise ValueError(f"BENCH point index {index} out of range") from None


def _from_bench_point(path: str, point: dict) -> Dict[str, Any]:
    metrics = {
        key: float(value)
        for key, value in point.get("metrics", {}).items()
        if isinstance(value, (int, float))
    }
    return {
        "kind": "bench",
        "identity": {
            "source": path,
            "label": point.get("label"),
            "timestamp": point.get("timestamp"),
            "environment": point.get("environment", {}),
        },
        "stages": {},
        "counters": {},
        "metrics": metrics,
        "histograms": {},
        "noise_pct": {
            key: float(value)
            for key, value in metrics.items()
            if key.endswith("_noise_pct")
        },
    }


def _from_report_payload(path: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
    rollup = payload.get("rollup", {})
    stages = {
        name: {
            "total_s": float(stats.get("total_s", 0.0)),
            "count": int(stats.get("count", 0)),
            "max_s": float(stats.get("max_s", 0.0)),
        }
        for name, stats in rollup.get("spans", {}).items()
    }
    metrics_section = payload.get("metrics", {}) or {}
    counters = {
        key: float(value)
        for key, value in metrics_section.get("counters", {}).items()
    }
    histograms = dict(metrics_section.get("histograms", {}))
    return {
        "kind": payload.get("source", "report"),
        "identity": dict(payload.get("identity", {}), source=path),
        "stages": stages,
        "counters": counters,
        "metrics": {},
        "histograms": histograms,
        "noise_pct": {},
    }


def load_diff_target(spec: str) -> Dict[str, Any]:
    """Load one side of a diff from a ``path`` or ``path#selector``.

    Accepts trace JSONL files, run manifests (via the report loader)
    and BENCH trajectory files; raises ``ValueError`` with a
    actionable message otherwise.
    """
    path_part, _, selector = str(spec).partition("#")
    path = Path(path_part)
    if not path.exists():
        raise ValueError(f"{path}: no such file")
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError):
        payload = None
    if _is_bench_payload(payload):
        target = _from_bench_point(
            str(path), _select_bench_point(payload["points"], selector or None)
        )
        return target
    if selector:
        raise ValueError(f"{path}: '#{selector}' selectors only address BENCH files")
    from .report import load_report_target

    return _from_report_payload(str(path), load_report_target(path))


# ----------------------------------------------------------------------
# The diff proper.
# ----------------------------------------------------------------------


def _relative_pct(before: float, after: float) -> float:
    if before == 0.0:
        return 0.0 if after == 0.0 else float("inf")
    return 100.0 * (after - before) / before


def _histogram_drift(a: Mapping[str, Any], b: Mapping[str, Any]) -> Optional[float]:
    """L1 distance between normalized bucket distributions, or None."""
    if list(a.get("le", [])) != list(b.get("le", [])):
        return None
    counts_a = [float(c) for c in a.get("counts", [])]
    counts_b = [float(c) for c in b.get("counts", [])]
    if len(counts_a) != len(counts_b):
        return None
    total_a, total_b = sum(counts_a), sum(counts_b)
    if total_a <= 0.0 or total_b <= 0.0:
        return None
    return 0.5 * sum(
        abs(ca / total_a - cb / total_b) for ca, cb in zip(counts_a, counts_b)
    )


def diff_targets(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    noise_pct: Optional[float] = None,
) -> Dict[str, Any]:
    """Rank everything that changed between two loaded targets.

    ``noise_pct`` overrides the significance threshold; otherwise the
    widest measured ``*_noise_pct`` on either side applies, with
    :data:`DEFAULT_NOISE_PCT` as the floor.
    """
    measured = list(a.get("noise_pct", {}).values()) + list(
        b.get("noise_pct", {}).values()
    )
    threshold = (
        float(noise_pct)
        if noise_pct is not None
        else max([DEFAULT_NOISE_PCT] + [float(v) for v in measured])
    )

    stage_rows: List[Dict[str, Any]] = []
    stages_a, stages_b = a.get("stages", {}), b.get("stages", {})
    for name in sorted(set(stages_a) | set(stages_b), key=_stage_rank):
        sa = stages_a.get(name, {"total_s": 0.0, "count": 0})
        sb = stages_b.get(name, {"total_s": 0.0, "count": 0})
        pct = _relative_pct(sa["total_s"], sb["total_s"])
        count_changed = sa["count"] != sb["count"]
        stage_rows.append(
            {
                "stage": name,
                "before_s": sa["total_s"],
                "after_s": sb["total_s"],
                "delta_s": sb["total_s"] - sa["total_s"],
                "pct": pct,
                "count_before": sa["count"],
                "count_after": sb["count"],
                "significant": count_changed or abs(pct) > threshold,
            }
        )
    first_divergent = next(
        (row["stage"] for row in stage_rows if row["significant"]), None
    )
    # Rank by |delta| for the report; the pipeline-ordered pass above
    # already extracted the localization.
    stage_rows.sort(key=lambda row: (-abs(row["delta_s"]), row["stage"]))

    metric_rows: List[Dict[str, Any]] = []
    for section in ("metrics", "counters"):
        values_a = a.get(section, {})
        values_b = b.get(section, {})
        for name in sorted(set(values_a) | set(values_b)):
            va, vb = values_a.get(name), values_b.get(name)
            if va is None or vb is None:
                metric_rows.append(
                    {
                        "metric": name,
                        "before": va,
                        "after": vb,
                        "pct": float("inf"),
                        "significant": True,
                        "kind": section,
                    }
                )
                continue
            pct = _relative_pct(float(va), float(vb))
            if pct == 0.0:
                continue
            metric_rows.append(
                {
                    "metric": name,
                    "before": float(va),
                    "after": float(vb),
                    "pct": pct,
                    "significant": abs(pct) > threshold,
                    "kind": section,
                }
            )
    metric_rows.sort(
        key=lambda row: (
            -(abs(row["pct"]) if row["pct"] != float("inf") else 1e18),
            row["metric"],
        )
    )

    quality_rows: List[Dict[str, Any]] = []
    hists_a, hists_b = a.get("histograms", {}), b.get("histograms", {})
    for name in sorted(set(hists_a) & set(hists_b)):
        drift = _histogram_drift(hists_a[name], hists_b[name])
        if drift is None or drift == 0.0:
            continue
        quality_rows.append(
            {
                "histogram": name,
                "drift": drift,
                "quality": name.startswith("quality_"),
            }
        )
    quality_rows.sort(key=lambda row: (-row["drift"], row["histogram"]))

    return {
        "threshold_pct": threshold,
        "identity": {"a": a.get("identity", {}), "b": b.get("identity", {})},
        "stages": stage_rows,
        "metrics": metric_rows,
        "histograms": quality_rows,
        "first_divergent_stage": first_divergent,
    }


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------


def _fmt_pct(pct: float) -> str:
    if pct == float("inf"):
        return "new"
    return f"{pct:+.1f}%"


def format_diff_rows(diff: Mapping[str, Any], top: int = 10) -> List[str]:
    """Human-readable attribution table (stable for a given diff)."""
    rows: List[str] = []
    rows.append(
        "diff: regression attribution "
        f"(significance > {diff['threshold_pct']:.1f}% noise-widened)"
    )
    divergent = diff.get("first_divergent_stage")
    if divergent:
        rows.append(f"  first divergent stage: {divergent}")
    stages = [s for s in diff.get("stages", []) if s["before_s"] or s["after_s"]]
    if stages:
        rows.append("  stage                   before_s   after_s     delta      flag")
        for row in stages[:top]:
            flag = "SIGNIFICANT" if row["significant"] else ""
            rows.append(
                f"  {row['stage']:<22} {row['before_s']:>9.4f} {row['after_s']:>9.4f} "
                f"{_fmt_pct(row['pct']):>9}  {flag}"
            )
    metrics = diff.get("metrics", [])
    if metrics:
        rows.append("  metric drift (ranked by relative change)")
        for row in metrics[:top]:
            flag = "SIGNIFICANT" if row["significant"] else ""
            before = "-" if row["before"] is None else f"{row['before']:g}"
            after = "-" if row["after"] is None else f"{row['after']:g}"
            rows.append(
                f"    {row['metric']:<46} {before:>12} -> {after:<12} "
                f"{_fmt_pct(row['pct']):>9}  {flag}"
            )
    histograms = diff.get("histograms", [])
    if histograms:
        rows.append("  histogram drift (L1 distribution distance)")
        for row in histograms[:top]:
            tag = "quality" if row["quality"] else "latency"
            rows.append(f"    {row['histogram']:<54} {row['drift']:.4f}  [{tag}]")
    if len(rows) == 1 + (1 if divergent else 0):
        rows.append("  no differences above the noise floor")
    return rows
