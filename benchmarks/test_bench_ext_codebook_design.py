"""Bench (extension): how many sectors does a region need? (§7)

The coverage-driven designer answers §7's scaling question with a
curve: composite coverage grows quickly with the first beams that tile
the service region, then saturates — beyond that point extra sectors
only buy precision, which is exactly the regime where compressive
selection (fixed probes, growing N) is the right training strategy.
"""

from repro.experiments.common import build_testbed
from repro.phased_array import coverage_curve, design_codebook


def _run_design():
    testbed = build_testbed()
    antenna = testbed.dut_antenna
    curve = coverage_curve(antenna, [4, 8, 16, 32, 48])
    rows = ["codebook design (extension): coverage vs codebook size"]
    rows.append("sectors | mean coverage [dBi] | worst hole [dBi]")
    for n_sectors, mean, worst in curve:
        rows.append(f"{n_sectors:7d} | {mean:19.1f} | {worst:16.1f}")
    return rows, curve


def test_codebook_design_scaling(benchmark, report_rows):
    rows, curve = benchmark.pedantic(_run_design, rounds=1, iterations=1)
    report_rows(rows)

    means = [mean for _, mean, _ in curve]
    worsts = [worst for _, _, worst in curve]

    # Coverage is monotone in codebook size and saturates.
    assert means == sorted(means)
    assert worsts == sorted(worsts)
    first_doubling = means[1] - means[0]   # 4 -> 8
    last_doubling = means[4] - means[3]    # 32 -> 48
    assert last_doubling < first_doubling / 2.0

    # A modest codebook already closes the worst hole above 0 dBi.
    assert worsts[2] > 0.0
