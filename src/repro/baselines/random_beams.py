"""Pseudo-random probing beams (Rasekh et al. [25], paper §2.1).

The original compressive path-tracking proposal probes with
pseudo-random phase settings and correlates against the beams'
*theoretical* patterns.  The paper's preliminary experiments found this
"substantially reduced the link quality between our devices under
test": random phases forgo beamforming gain, many probes land below
the decode threshold, and low-cost hardware deviates from the assumed
theoretical patterns.  This baseline reproduces the approach so the
ablation benches can quantify exactly that gap.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..geometry.grid import AngularGrid
from ..measurement.patterns import PatternTable
from ..phased_array.array import PhasedArray
from ..phased_array.codebook import Codebook, Sector
from ..phased_array.impairments import HardwareImpairments
from ..phased_array.weights import WeightVector
from .oracle import OracleSelector  # noqa: F401  (re-export convenience)

__all__ = ["random_beam_codebook", "theoretical_pattern_table"]

#: Random probing beams get IDs from this base upward (the 6-bit space
#: above the Talon's highest stock TX sector is 32..60).
_RANDOM_BEAM_ID_BASE = 32


def random_beam_codebook(
    antenna: PhasedArray,
    n_beams: int,
    rng: np.random.Generator,
    phase_bits: int = 2,
) -> Codebook:
    """Build a codebook of pseudo-random phase-only probing beams.

    Every element stays on (random phase, unit amplitude) as in the
    noncoherent path-tracking design; the RX quasi-omni sector is
    copied over so the codebook is complete.
    """
    if not 1 <= n_beams <= 60 - _RANDOM_BEAM_ID_BASE + 1:
        raise ValueError("n_beams must fit the free sector-ID range 32..60")
    n_elements = antenna.n_elements
    sectors: List[Sector] = []
    # Quasi-omni RX sector (single center element), same as the Talon.
    distances = np.linalg.norm(antenna.layout.positions_m, axis=1)
    rx_active = np.zeros(n_elements, dtype=bool)
    rx_active[int(np.argmin(distances))] = True
    rx_weights = WeightVector.uniform(n_elements).with_element_mask(rx_active).normalized()
    sectors.append(Sector(0, rx_weights, kind="quasi-omni"))

    for index in range(n_beams):
        phases = rng.uniform(0.0, 2.0 * np.pi, size=n_elements)
        weights = WeightVector(np.exp(1j * phases)).quantized(phase_bits).normalized()
        sectors.append(Sector(_RANDOM_BEAM_ID_BASE + index, weights, kind="random"))
    return Codebook(sectors, rx_sector_id=0)


def theoretical_pattern_table(
    codebook: Codebook,
    grid: AngularGrid,
    antenna: Optional[PhasedArray] = None,
    reference_snr_offset_db: float = -6.0,
) -> PatternTable:
    """Patterns a designer would *assume*: the ideal-array prediction.

    Computes every sector's gain on a perfect front-end (no per-element
    errors, no chassis) — what geometry-based approaches correlate
    against.  The offset converts gain (dBi) into the SNR scale the
    tables use, so theoretical and measured tables are interchangeable
    in the estimator.

    Args:
        antenna: array whose *layout* to use; a fresh ideal Talon array
            is assumed when omitted.
    """
    if antenna is None:
        ideal = PhasedArray.talon(ideal=True)
    else:
        ideal = PhasedArray(
            layout=antenna.layout,
            impairments=HardwareImpairments.ideal(antenna.n_elements),
            element_exponent=antenna.element_exponent,
            element_peak_gain_db=antenna.element_peak_gain_db,
        )
    az_mesh, el_mesh = grid.meshgrid()
    patterns: Dict[int, np.ndarray] = {}
    for sector in codebook:
        gains = ideal.gain_db(sector.weights, az_mesh, el_mesh)
        patterns[sector.sector_id] = gains + reference_snr_offset_db
    return PatternTable(grid, patterns)
