"""First-order specular reflectors (image method).

Conference-room furniture such as whiteboards acts as a near-specular
mirror at 60 GHz.  A :class:`ReflectorPanel` is a finite rectangular
panel; the classic image method finds the single bounce point (if any)
for a transmitter/receiver pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["ReflectorPanel"]


@dataclass(frozen=True)
class ReflectorPanel:
    """A finite rectangular specular reflector.

    Attributes:
        center_m: panel center in the world frame.
        normal: unit normal of the panel plane.
        width_m: extent along the horizontal in-plane axis.
        height_m: extent along the vertical in-plane axis.
        reflection_loss_db: power loss of a specular bounce.
    """

    center_m: np.ndarray
    normal: np.ndarray
    width_m: float
    height_m: float
    reflection_loss_db: float = 8.0

    def __post_init__(self) -> None:
        center = np.asarray(self.center_m, dtype=float)
        normal = np.asarray(self.normal, dtype=float)
        if center.shape != (3,) or normal.shape != (3,):
            raise ValueError("center and normal must be 3-vectors")
        norm = np.linalg.norm(normal)
        if norm < 1e-12:
            raise ValueError("normal must be non-zero")
        object.__setattr__(self, "center_m", center)
        object.__setattr__(self, "normal", normal / norm)
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("panel dimensions must be positive")
        if self.reflection_loss_db < 0:
            raise ValueError("reflection loss cannot be negative")

    def _in_plane_axes(self) -> tuple:
        """Orthonormal (horizontal, vertical) axes spanning the panel."""
        up = np.array([0.0, 0.0, 1.0])
        horizontal = np.cross(up, self.normal)
        h_norm = np.linalg.norm(horizontal)
        if h_norm < 1e-9:  # horizontal panel (ceiling/floor): pick x.
            horizontal = np.array([1.0, 0.0, 0.0])
            vertical = np.cross(self.normal, horizontal)
        else:
            horizontal = horizontal / h_norm
            vertical = np.cross(self.normal, horizontal)
        return horizontal, vertical

    def mirror_point(self, point_m: np.ndarray) -> np.ndarray:
        """Mirror a point across the (infinite) panel plane."""
        point = np.asarray(point_m, dtype=float)
        signed_distance = float((point - self.center_m) @ self.normal)
        return point - 2.0 * signed_distance * self.normal

    def bounce_point(
        self, tx_position_m: np.ndarray, rx_position_m: np.ndarray
    ) -> Optional[np.ndarray]:
        """Specular bounce point of the TX→panel→RX path, if it exists.

        Returns ``None`` when the endpoints straddle the plane, the
        geometric intersection lies outside the finite panel, or either
        endpoint lies (numerically) on the plane.
        """
        tx = np.asarray(tx_position_m, dtype=float)
        rx = np.asarray(rx_position_m, dtype=float)
        tx_side = float((tx - self.center_m) @ self.normal)
        rx_side = float((rx - self.center_m) @ self.normal)
        if abs(tx_side) < 1e-9 or abs(rx_side) < 1e-9 or tx_side * rx_side < 0:
            return None
        image = self.mirror_point(rx)
        direction = image - tx
        denominator = float(direction @ self.normal)
        if abs(denominator) < 1e-12:
            return None
        t = float((self.center_m - tx) @ self.normal) / denominator
        if not 0.0 < t < 1.0:
            return None
        intersection = tx + t * direction
        horizontal, vertical = self._in_plane_axes()
        offset = intersection - self.center_m
        if abs(float(offset @ horizontal)) > self.width_m / 2.0:
            return None
        if abs(float(offset @ vertical)) > self.height_m / 2.0:
            return None
        return intersection
