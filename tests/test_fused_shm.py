"""Fused-kernel equality and shared-memory lifecycle (tier 1).

Two promises from the sharded-execution layer (DESIGN.md §12):

* the fused single-pass kernel (``select_fused_batch`` and its stacked
  multi-block twin) is **bit-for-bit** identical to the scalar and
  batched reference paths, under NaN-ridden spectra, single-probe
  rows and arbitrary probe subsets;
* shared-memory segments published for pool workers never outlive
  their :class:`~repro.runtime.shm.KernelPublisher` — runner close,
  pool-crash replacement and eviction all leave ``/dev/shm`` clean,
  and workers seeded from shared kernels return the same bits as
  workers that rebuilt from the spec.
"""

import glob

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.runtime.shm as shm
from repro.core.compressive import CompressiveSectorSelector
from repro.core.measurements import ProbeMeasurement
from repro.core.policy import CompressivePolicy, seed_shared_selector
from repro.geometry import AngularGrid
from repro.measurement import PatternTable
from repro.runtime import FaultPlan, RetryPolicy, ScenarioRunner
from repro.runtime.faults import FaultSpec
from repro.runtime.policy import PolicyContext
from repro.runtime.spec import PolicySpec, ScenarioSpec

N_SECTORS = 6


def _small_table(seed: int = 7) -> PatternTable:
    grid = AngularGrid(np.linspace(-20.0, 20.0, 5), np.array([0.0, 10.0]))
    rng = np.random.default_rng(seed)
    return PatternTable(
        grid, {s: rng.uniform(-10.0, 12.0, grid.shape) for s in range(N_SECTORS)}
    )


TABLE = _small_table()

FUSIONS = ("product", "snr", "rssi")
DOMAINS = ("linear", "db")

# A probe value: ordinary, NaN (dropped by the scalar path) or inf.
probe_value = st.one_of(
    st.floats(min_value=-30.0, max_value=30.0),
    st.just(float("nan")),
    st.just(float("inf")),
)

# One padded slot: (sector, snr, rssi, slot-carries-a-report).
slot = st.tuples(
    st.integers(min_value=0, max_value=N_SECTORS - 1),
    probe_value,
    probe_value,
    st.booleans(),
)

# A ragged batch: trials share the padded width but not the valid count.
batch = st.integers(min_value=2, max_value=5).flatmap(
    lambda width: st.lists(
        st.lists(slot, min_size=width, max_size=width), min_size=1, max_size=4
    )
)


def _unpack(trials):
    ids = np.array([[s[0] for s in trial] for trial in trials])
    snr = np.array([[s[1] for s in trial] for trial in trials])
    rssi = np.array([[s[2] for s in trial] for trial in trials])
    mask = np.array([[s[3] for s in trial] for trial in trials])
    return ids, snr, rssi, mask


def _scalar_measurements(trial):
    return [
        ProbeMeasurement(sector_id=s[0], snr_db=s[1], rssi_dbm=s[2])
        for s in trial
        if s[3]
    ]


class TestFusedEquality:
    """scalar ↔ batched ↔ fused, bit for bit."""

    @pytest.mark.parametrize("fusion", FUSIONS)
    @pytest.mark.parametrize("domain", DOMAINS)
    @settings(max_examples=40, deadline=None)
    @given(batch=batch)
    def test_fused_matches_scalar_and_batched_bitwise(self, fusion, domain, batch):
        ids, snr, rssi, mask = _unpack(batch)
        scalar = CompressiveSectorSelector(TABLE, fusion=fusion, domain=domain)
        scalar_results = []
        scalar_raises = False
        for trial in batch:
            try:
                scalar_results.append(scalar.select(_scalar_measurements(trial)))
            except ValueError:
                scalar_raises = True
                break
        batched = CompressiveSectorSelector(TABLE, fusion=fusion, domain=domain)
        fused = CompressiveSectorSelector(TABLE, fusion=fusion, domain=domain)
        if scalar_raises:
            # NaN drops left a row under two finite probes: every path
            # must refuse identically.
            with pytest.raises(ValueError):
                batched.select_batch(ids, snr, rssi_dbm=rssi, mask=mask)
            with pytest.raises(ValueError):
                fused.select_fused_batch(ids, snr, rssi_dbm=rssi, mask=mask)
            return
        batched_results = batched.select_batch(ids, snr, rssi_dbm=rssi, mask=mask)
        fused_results = fused.select_fused_batch(ids, snr, rssi_dbm=rssi, mask=mask)
        assert fused_results == scalar_results
        assert fused_results == batched_results
        assert fused.last_selection == scalar.last_selection

    @settings(max_examples=25, deadline=None)
    @given(
        sector=st.integers(min_value=0, max_value=N_SECTORS - 1),
        snr=probe_value,
        rssi=probe_value,
        valid=st.booleans(),
    )
    def test_single_probe_rows(self, sector, snr, rssi, valid):
        """One-probe trials exercise the underfilled-row fallback edge."""
        ids = np.array([[sector]])
        snr_a = np.array([[snr]])
        rssi_a = np.array([[rssi]])
        mask = np.array([[valid]])
        scalar = CompressiveSectorSelector(TABLE)
        fused = CompressiveSectorSelector(TABLE)
        try:
            expected = scalar.select(
                _scalar_measurements([(sector, snr, rssi, valid)])
            )
        except ValueError:
            with pytest.raises(ValueError):
                fused.select_fused_batch(ids, snr_a, rssi_dbm=rssi_a, mask=mask)
            return
        (got,) = fused.select_fused_batch(ids, snr_a, rssi_dbm=rssi_a, mask=mask)
        assert got == expected

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_probe_subsets(self, data):
        """Unique-sector subsets (the paper's M-probe draw) round-trip."""
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        n_rows = data.draw(st.integers(min_value=1, max_value=4))
        width = data.draw(st.integers(min_value=2, max_value=N_SECTORS))
        rows = [
            sorted(rng.choice(N_SECTORS, size=width, replace=False).tolist())
            for _ in range(n_rows)
        ]
        ids = np.array(rows)
        snr = rng.uniform(-15.0, 15.0, ids.shape)
        rssi = snr - 60.0
        trials = [
            [(int(ids[r, c]), snr[r, c], rssi[r, c], True) for c in range(width)]
            for r in range(n_rows)
        ]
        scalar = CompressiveSectorSelector(TABLE)
        expected = [scalar.select(_scalar_measurements(t)) for t in trials]
        fused = CompressiveSectorSelector(TABLE)
        got = fused.select_fused_batch(ids, snr, rssi_dbm=rssi, mask=None)
        assert got == expected


class TestFusedStacked:
    def _parts(self, widths, seed=11):
        rng = np.random.default_rng(seed)
        parts = []
        for width in widths:
            rows = rng.integers(1, 4)
            ids = np.array(
                [
                    sorted(rng.choice(N_SECTORS, size=width, replace=False).tolist())
                    for _ in range(rows)
                ]
            )
            snr = rng.uniform(-15.0, 15.0, ids.shape)
            snr[rng.uniform(size=ids.shape) < 0.1] = np.nan
            parts.append((ids, snr, snr - 60.0, np.ones(ids.shape, dtype=bool)))
        return parts

    def test_stacked_matches_per_part_bitwise(self):
        parts = self._parts([4, 4, 4, 4])
        reference = CompressiveSectorSelector(TABLE)
        expected = []
        for ids, snr, rssi, mask in parts:
            reference.reset()
            expected.append(
                reference.select_fused_batch(ids, snr, rssi_dbm=rssi, mask=mask)
            )
        stacked = CompressiveSectorSelector(TABLE)
        got = stacked.select_fused_stacked(parts)
        assert got == expected

    def test_width_mismatch_raises(self):
        parts = self._parts([4, 3])
        selector = CompressiveSectorSelector(TABLE)
        with pytest.raises(ValueError):
            selector.select_fused_stacked(parts)


def _kernel_segments():
    return set(glob.glob(f"/dev/shm/{shm._SEGMENT_PREFIX}*"))


class TestShmModule:
    def test_publish_attach_roundtrip_readonly(self):
        publisher = shm.KernelPublisher()
        arrays = {
            "a": np.arange(12, dtype=float).reshape(3, 4),
            "b": np.arange(7, dtype=np.intp),
        }
        try:
            manifest = publisher.publish("k", arrays)
            views = shm.attach(manifest)
            for name, array in arrays.items():
                assert np.array_equal(views[name], array)
                assert not views[name].flags.writeable
                offset = manifest.entries[name][0]
                assert offset % shm._ALIGN == 0
        finally:
            shm.detach_all()
            publisher.close()

    def test_publish_is_memoized_per_key(self):
        publisher = shm.KernelPublisher()
        try:
            first = publisher.publish("k", {"a": np.zeros(3)})
            second = publisher.publish("k", {"a": np.ones(3)})
            assert second is first
            assert len(publisher) == 1
        finally:
            publisher.close()

    def test_close_unlinks_every_segment(self):
        before = _kernel_segments()
        publisher = shm.KernelPublisher()
        manifest = publisher.publish("k", {"a": np.zeros(8)})
        assert _kernel_segments() - before
        publisher.close()
        assert _kernel_segments() == before
        with pytest.raises(FileNotFoundError):
            shm.attach(manifest)
        publisher.close()  # idempotent

    def test_oldest_segment_evicted_past_cap(self, monkeypatch):
        monkeypatch.setattr(shm, "_MAX_SEGMENTS", 2)
        before = _kernel_segments()
        publisher = shm.KernelPublisher()
        try:
            first = publisher.publish("k0", {"a": np.zeros(4)})
            publisher.publish("k1", {"a": np.zeros(4)})
            publisher.publish("k2", {"a": np.zeros(4)})
            assert len(publisher) == 2
            assert publisher.manifest("k0") is None
            with pytest.raises(FileNotFoundError):
                shm.attach(first)
        finally:
            publisher.close()
        assert _kernel_segments() == before

    def test_detach_all_drops_worker_cache(self):
        publisher = shm.KernelPublisher()
        try:
            manifest = publisher.publish("k", {"a": np.zeros(4)})
            shm.attach(manifest)
            assert manifest.segment in shm._ATTACHED
            shm.detach_all()
            assert shm._ATTACHED == {}
        finally:
            publisher.close()


class TestSeedSharedSelector:
    @pytest.fixture(scope="class")
    def testbed(self):
        from repro.runtime.spec import TestbedSpec

        return TestbedSpec().build()

    def test_refuses_non_css_and_unshareable_specs(self, testbed):
        context = PolicyContext(testbed=testbed, cache={})
        views = {}
        assert not seed_shared_selector(PolicySpec("full-sweep", {}), context, views)
        assert not seed_shared_selector(
            PolicySpec("css", {"pattern_table": object()}), context, views
        )
        assert not seed_shared_selector(
            PolicySpec("css", {"patterns": "theoretical"}), context, views
        )
        assert context.cache == {}

    def test_seeded_worker_matches_rebuilt_worker_bitwise(self, testbed):
        parent = CompressivePolicy(PolicyContext(testbed=testbed, cache={}))
        kernels = parent.shared_kernels()
        assert kernels is not None
        publisher = shm.KernelPublisher()
        try:
            manifest = publisher.publish("seed-test", kernels)
            views = shm.attach(manifest)
            context = PolicyContext(testbed=testbed, cache={})
            spec = PolicySpec("css", {"n_probes": 14})
            assert seed_shared_selector(spec, context, views)
            # Idempotent: the second call finds the cached selector.
            assert seed_shared_selector(spec, context, views)
            seeded = CompressivePolicy(context, n_probes=14)
            # The seeded selector really runs on the shared views (zero
            # copy), and returns the same bits as a plain rebuild.
            assert seeded.selector.estimator._matrix is views["pattern_matrix"]
            rng = np.random.default_rng(5)
            pool = list(testbed.tx_sector_ids)
            for _ in range(10):
                chosen = rng.choice(pool, size=14, replace=False)
                snr = rng.uniform(-10.0, 15.0, 14)
                trial = [
                    ProbeMeasurement(
                        sector_id=int(s), snr_db=v, rssi_dbm=v - 60.0
                    )
                    for s, v in zip(chosen, snr)
                ]
                parent.reset()
                seeded.reset()
                assert repr(seeded.select(trial)) == repr(parent.select(trial))
        finally:
            shm.detach_all()
            publisher.close()


def _css_spec(seed=2017):
    return ScenarioSpec(
        scenario="policy-eval",
        seed=seed,
        policies=(
            PolicySpec("css", {"n_probes": 14}),
            PolicySpec("full-sweep", {}),
        ),
        params={"azimuth_step_deg": 30.0, "distance_m": 6.0, "n_sweeps": 3},
    )


class TestRunnerShmLifecycle:
    def test_jobs4_matches_jobs1_and_unlinks_on_close(self):
        before = _kernel_segments()
        with ScenarioRunner(jobs=1) as serial:
            reference = serial.run(_css_spec())
        with ScenarioRunner(jobs=4) as sharded:
            outcome = sharded.run(_css_spec())
            # Segments stay published between runs (warm-pool case) ...
            repeat = sharded.run(_css_spec())
            published = _kernel_segments() - before
            assert published
        # ... and close() unlinks every one of them.
        assert _kernel_segments() == before
        assert outcome.manifest.result_sha256 == reference.manifest.result_sha256
        assert repeat.manifest.result_sha256 == reference.manifest.result_sha256

    def test_pool_crash_replacement_leaks_nothing(self):
        before = _kernel_segments()
        with ScenarioRunner(jobs=1) as serial:
            reference = serial.run(_css_spec())
        plan = FaultPlan(faults=(FaultSpec("crash", 1),))
        with ScenarioRunner(
            jobs=4, faults=plan, retry=RetryPolicy(max_attempts=3, seed=1)
        ) as sharded:
            outcome = sharded.run(_css_spec())
        # The crashed worker died holding attachments; the replacement
        # re-attached by name, and the parent still owns every segment.
        assert _kernel_segments() == before
        assert outcome.manifest.result_sha256 == reference.manifest.result_sha256
        assert outcome.manifest.health != "clean"
