"""Declarative scenario descriptions: the *data* side of an experiment.

A :class:`ScenarioSpec` pins everything a run depends on — the testbed
build parameters, the policies under test (by registry name + JSON
kwargs), the scenario-specific knobs and the master seed — in a plain,
canonically-serializable form.  Two properties follow:

* **Reproducibility**: ``spec.digest()`` is a SHA-256 over the
  canonical JSON, so a run manifest can prove which exact configuration
  produced a result, and identical specs hash identically across
  processes (the process-pool workers rebuild their world from the
  spec alone).
* **Portability**: specs round-trip through JSON files, so
  ``repro-bench run scenario.json`` reproduces a result from nothing
  but a checked-in file.

Specs carry *names and parameters*, never live objects; the registry
(:mod:`.registry`) resolves names to factories at run time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from .faults import FaultPlan

__all__ = ["TestbedSpec", "PolicySpec", "ScenarioSpec"]


def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace ambiguity."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TestbedSpec:
    """Parameters of :func:`repro.experiments.common.build_testbed`.

    The defaults mirror ``build_testbed``'s own, so ``TestbedSpec()``
    is the shared testbed every committed experiment output is pinned
    to.  ``build()`` goes through the memoized builder, so repeated
    resolution (including inside pool workers) is cheap.
    """

    seed: int = 2017
    azimuth_step_deg: float = 2.0
    elevation_step_deg: float = 4.0
    max_elevation_deg: float = 32.0
    campaign_sweeps: int = 3

    def build(self):
        from ..experiments.common import build_testbed

        return build_testbed(
            seed=self.seed,
            azimuth_step_deg=self.azimuth_step_deg,
            elevation_step_deg=self.elevation_step_deg,
            max_elevation_deg=self.max_elevation_deg,
            campaign_sweeps=self.campaign_sweeps,
        )

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "TestbedSpec":
        return cls(**dict(data))

    def key(self) -> str:
        """Canonical identity string (cache / worker lookup key)."""
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class PolicySpec:
    """A selection policy by registry name plus JSON-able kwargs.

    ``probe_design`` optionally names a probe-designer stage —
    ``{"designer": <registry name>, "params": {...}}`` — resolved by
    :func:`~.registry.build_probe_designer` at build time.  The block
    participates in the canonical JSON (and therefore in every spec
    digest, checkpoint-journal key and shared-memory policy key), but
    is emitted **only when present**, so specs without a designer keep
    the exact digests they had before the stage existed.
    """

    name: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    probe_design: Optional[Mapping[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "kwargs": dict(self.kwargs)}
        if self.probe_design is not None:
            data["probe_design"] = dict(self.probe_design)
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "PolicySpec":
        return cls(
            name=str(data["name"]),
            kwargs=dict(data.get("kwargs", {})),
            probe_design=(
                dict(data["probe_design"]) if "probe_design" in data else None
            ),
        )

    def key(self) -> str:
        return canonical_json(self.to_json())


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-pinned experiment run.

    Attributes:
        scenario: registry name of the executor (e.g. ``"fig9"``).
        seed: master seed; the executor spawns every RNG from it.
        testbed: simulated-hardware build parameters.
        policies: the policies under test, in evaluation order.
        params: scenario-specific knobs (the executor's config surface);
            must stay JSON-encodable.
        faults: optional deterministic fault-injection overlay.  Part of
            the spec so a degradation scenario round-trips through JSON,
            but **excluded from the digest**: a fault plan changes how a
            run executes (retries, pool replacements), never what it
            computes, so a faulty run's checkpoint stays valid for the
            clean run of the same spec+seed.
    """

    scenario: str
    seed: int = 2017
    testbed: TestbedSpec = field(default_factory=TestbedSpec)
    policies: Tuple[PolicySpec, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    faults: Optional[FaultPlan] = None

    def with_seed(self, seed: Optional[int]) -> "ScenarioSpec":
        return self if seed is None else replace(self, seed=int(seed))

    def with_faults(self, faults: Optional[FaultPlan]) -> "ScenarioSpec":
        return replace(self, faults=faults)

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "scenario": self.scenario,
            "seed": self.seed,
            "testbed": self.testbed.to_json(),
            "policies": [policy.to_json() for policy in self.policies],
            "params": dict(self.params),
        }
        if self.faults is not None:
            data["faults"] = self.faults.to_json()
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        return cls(
            scenario=str(data["scenario"]),
            seed=int(data.get("seed", 2017)),
            testbed=TestbedSpec.from_json(data.get("testbed", {})),
            policies=tuple(
                PolicySpec.from_json(entry) for entry in data.get("policies", ())
            ),
            params=dict(data.get("params", {})),
            faults=(
                FaultPlan.from_json(data["faults"]) if "faults" in data else None
            ),
        )

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form (fault overlay excluded)."""
        data = self.to_json()
        data.pop("faults", None)
        return hashlib.sha256(canonical_json(data).encode()).hexdigest()

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path) -> "ScenarioSpec":
        return cls.from_json(json.loads(Path(path).read_text()))
