"""Adaptive probe-count control (paper §7, future work).

"In static scenarios, few probes are sufficient to validate the current
antenna settings.  Whenever a node starts moving, the number of probes
may increase to keep track of the movement."  The controller below
implements that policy: it watches the angular velocity of consecutive
angle estimates and moves the probe budget between a floor and a
ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..geometry.angles import angular_distance
from .estimator import AngleEstimate

__all__ = ["AdaptiveProbeController"]


@dataclass
class AdaptiveProbeController:
    """Hysteresis controller for the per-sweep probe count.

    Attributes:
        min_probes: floor used while the link looks static.
        max_probes: ceiling used while the estimate is moving.
        motion_threshold_deg: estimate change (per sweep) treated as
            motion.
        increase_step / decrease_step: probe-budget slew rates; growth
            is fast (losing a moving peer is expensive) and decay slow.
    """

    min_probes: int = 10
    max_probes: int = 24
    motion_threshold_deg: float = 6.0
    increase_step: int = 6
    decrease_step: int = 3

    def __post_init__(self) -> None:
        if not 2 <= self.min_probes <= self.max_probes:
            raise ValueError("need 2 <= min_probes <= max_probes")
        if self.motion_threshold_deg <= 0:
            raise ValueError("motion threshold must be positive")
        self._n_probes = self.max_probes  # start cautious
        self._previous: Optional[AngleEstimate] = None

    @property
    def n_probes(self) -> int:
        """Probe budget to use for the next sweep."""
        return self._n_probes

    def update(self, estimate: Optional[AngleEstimate]) -> int:
        """Feed the latest estimate; returns the next probe budget.

        A ``None`` estimate (failed sweep) is treated like motion: the
        controller re-opens the probe budget to recover quickly.
        """
        if estimate is None or self._previous is None:
            moved = estimate is None
        else:
            change = angular_distance(
                self._previous.azimuth_deg,
                self._previous.elevation_deg,
                estimate.azimuth_deg,
                estimate.elevation_deg,
            )
            moved = change > self.motion_threshold_deg
        if moved:
            self._n_probes = min(self.max_probes, self._n_probes + self.increase_step)
        else:
            self._n_probes = max(self.min_probes, self._n_probes - self.decrease_step)
        self._previous = estimate
        return self._n_probes
