"""Unit tests for the SSW field and DMG frame codecs."""

import pytest

from repro.mac import (
    BeaconFrame,
    SSWAckFrame,
    SSWFeedbackField,
    SSWFeedbackFrame,
    SSWField,
    SSWFrame,
    decode_frame,
    format_mac,
    station_mac,
)


class TestSSWField:
    def test_roundtrip(self):
        field = SSWField(direction=1, cdown=347, sector_id=63, dmg_antenna_id=2, rxss_length=17)
        assert SSWField.unpack(field.pack()) == field

    def test_pack_length(self):
        assert len(SSWField(direction=0, cdown=0, sector_id=0).pack()) == 3

    def test_bit_boundaries(self):
        # Max values in every field survive the roundtrip.
        field = SSWField(direction=1, cdown=511, sector_id=63, dmg_antenna_id=3, rxss_length=63)
        assert SSWField.unpack(field.pack()) == field

    def test_field_validation(self):
        with pytest.raises(ValueError):
            SSWField(direction=2, cdown=0, sector_id=0)
        with pytest.raises(ValueError):
            SSWField(direction=0, cdown=512, sector_id=0)
        with pytest.raises(ValueError):
            SSWField(direction=0, cdown=0, sector_id=64)

    def test_unpack_wrong_length(self):
        with pytest.raises(ValueError):
            SSWField.unpack(b"\x00\x00")


class TestSSWFeedbackField:
    def test_roundtrip_with_snr(self):
        field = SSWFeedbackField(sector_select=13, antenna_select=1, snr_report_db=4.25)
        decoded = SSWFeedbackField.unpack(field.pack())
        assert decoded.sector_select == 13
        assert decoded.antenna_select == 1
        assert decoded.snr_report_db == pytest.approx(4.25)

    def test_snr_encoding_saturates(self):
        high = SSWFeedbackField(sector_select=0, snr_report_db=99.0)
        assert SSWFeedbackField.unpack(high.pack()).snr_report_db == pytest.approx(55.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            SSWFeedbackField(sector_select=64)


class TestMacAddresses:
    def test_station_mac_deterministic_and_unique(self):
        assert station_mac(1) == station_mac(1)
        assert station_mac(1) != station_mac(2)
        assert len(station_mac(7)) == 6

    def test_locally_administered_bit(self):
        assert station_mac(0)[0] & 0x02

    def test_format(self):
        assert format_mac(b"\x02\xad\x72\x00\x00\x01") == "02:ad:72:00:00:01"
        with pytest.raises(ValueError):
            format_mac(b"\x00")


class TestFrameCodecs:
    def test_beacon_roundtrip(self):
        frame = BeaconFrame(src=station_mac(1), sector_id=63, cdown=33, tsf_us=102400)
        assert BeaconFrame.decode(frame.encode()) == frame

    def test_ssw_roundtrip(self):
        frame = SSWFrame(
            src=station_mac(1),
            dst=station_mac(2),
            ssw=SSWField(direction=0, cdown=12, sector_id=7),
            feedback=SSWFeedbackField(sector_select=3),
        )
        assert SSWFrame.decode(frame.encode()) == frame
        assert frame.sector_id == 7
        assert frame.cdown == 12

    def test_feedback_and_ack_roundtrip(self):
        feedback = SSWFeedbackFrame(
            src=station_mac(1), dst=station_mac(2),
            feedback=SSWFeedbackField(sector_select=9, snr_report_db=2.5),
        )
        ack = SSWAckFrame(
            src=station_mac(2), dst=station_mac(1),
            feedback=SSWFeedbackField(sector_select=9),
        )
        assert SSWFeedbackFrame.decode(feedback.encode()) == feedback
        assert SSWAckFrame.decode(ack.encode()) == ack

    def test_generic_decoder_dispatches(self):
        frame = BeaconFrame(src=station_mac(3), sector_id=1, cdown=31)
        decoded = decode_frame(frame.encode())
        assert isinstance(decoded, BeaconFrame)
        assert decoded == frame

    def test_generic_decoder_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            decode_frame(b"\x7f" + bytes(18))
        with pytest.raises(ValueError):
            decode_frame(b"")

    def test_decode_checks_type_byte(self):
        beacon = BeaconFrame(src=station_mac(1), sector_id=1, cdown=1)
        with pytest.raises(ValueError):
            SSWFrame.decode(beacon.encode())

    def test_beacon_is_broadcast(self):
        frame = BeaconFrame(src=station_mac(1), sector_id=1, cdown=1)
        assert frame.dst == b"\xff" * 6

    def test_mac_length_validated(self):
        with pytest.raises(ValueError):
            BeaconFrame(src=b"\x01", sector_id=1, cdown=1)
