"""Fast directional checks of every ablation (the benches run them big)."""

import pytest

from repro.experiments import (
    run_3d_ablation,
    run_fusion_ablation,
    run_oob_prior_ablation,
    run_pattern_ablation,
    run_probe_set_ablation,
    run_refinement_ablation,
)


class TestAblationDirections:
    def test_fusion_product_not_worse_than_snr_only(self):
        result = run_fusion_ablation(n_probes=14)
        assert result.variants["fusion=product"] <= result.variants["fusion=snr"]
        assert result.best_variant() == "fusion=product"

    def test_measured_patterns_beat_theory(self):
        result = run_pattern_ablation(n_probes=14)
        assert (
            result.variants["measured patterns"]
            < result.variants["theoretical patterns"]
        )

    def test_diverse_probes_beat_random_at_small_budgets(self):
        result = run_probe_set_ablation(n_probes=10)
        assert (
            result.variants["gain-diverse (greedy)"] < result.variants["random subsets"]
        )

    def test_3d_required_off_plane(self):
        result = run_3d_ablation(n_probes=14)
        assert (
            result.variants["3D search grid"]
            < result.variants["2D (azimuth-only) grid"]
        )

    def test_oob_prior_helps_small_budgets(self):
        result = run_oob_prior_ablation()
        assert result.variants["M=4 with prior"] < result.variants["M=4 no prior"]

    def test_refinement_recovers_css_loss(self):
        result = run_refinement_ablation(n_iterations=8)
        assert (
            result.variants["loss after refinement"]
            <= result.variants["loss before refinement"]
        )

    def test_format_rows_renders(self):
        result = run_fusion_ablation(n_probes=14)
        rows = result.format_rows()
        assert rows[0].startswith("ablation:")
        assert len(rows) == 1 + len(result.variants)
