"""Tests for airtime accounting and the extension experiments."""

import numpy as np
import pytest

from repro.experiments import (
    BlockageConfig,
    DenseConfig,
    run_blockage_recovery,
    run_dense_deployment,
)
from repro.net import AirtimeLedger, TrainingPolicy


class TestTrainingPolicy:
    def test_training_time_matches_timing_model(self):
        policy = TrainingPolicy("css", 14)
        assert policy.training_time_us == pytest.approx(553.1)
        assert policy.trainings_per_second == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingPolicy("bad", 0)
        with pytest.raises(ValueError):
            TrainingPolicy("bad", 14, interval_us=0.0)


class TestAirtimeLedger:
    def test_empty_ledger(self):
        ledger = AirtimeLedger()
        assert ledger.data_fraction() == 1.0
        assert not ledger.is_saturated

    def test_training_charges_accumulate(self):
        ledger = AirtimeLedger()
        policy = TrainingPolicy("ssw", 34, interval_us=100_000.0)  # 10 Hz
        ledger.add_training("pair0", policy)
        expected = 10 * policy.training_time_us
        assert ledger.exclusive_us == pytest.approx(expected)
        assert ledger.by_source["pair0"] == pytest.approx(expected)

    def test_saturation(self):
        ledger = AirtimeLedger(epoch_us=10_000.0)
        policy = TrainingPolicy("ssw", 34, interval_us=1_000.0)
        for pair in range(10):
            ledger.add_training(f"pair{pair}", policy)
        assert ledger.is_saturated
        assert ledger.data_fraction() == 0.0

    def test_css_leaves_more_data_airtime(self):
        ssw = AirtimeLedger()
        css = AirtimeLedger()
        for pair in range(20):
            ssw.add_training(f"p{pair}", TrainingPolicy("ssw", 34, 100_000.0))
            css.add_training(f"p{pair}", TrainingPolicy("css", 14, 100_000.0))
        assert css.data_fraction() > ssw.data_fraction()

    def test_validation(self):
        with pytest.raises(ValueError):
            AirtimeLedger(epoch_us=0.0)


class TestDenseExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_dense_deployment(DenseConfig(pair_counts=(1, 5, 20)))

    def test_css_wins_at_scale(self, result):
        # At 20 pairs the training overhead gap dominates.
        index = result.pair_counts.index(20)
        assert result.css_aggregate_gbps[index] > result.ssw_aggregate_gbps[index]

    def test_near_parity_at_one_pair(self, result):
        index = result.pair_counts.index(1)
        ratio = result.css_aggregate_gbps[index] / result.ssw_aggregate_gbps[index]
        assert 0.95 < ratio < 1.1

    def test_tracking_rate_scales_by_speedup(self, result):
        for n_pairs in result.pair_counts:
            ratio = result.css_max_rate_hz[n_pairs] / result.ssw_max_rate_hz[n_pairs]
            assert ratio == pytest.approx(2.3, abs=0.05)


class TestBlockageExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_blockage_recovery(BlockageConfig(n_intervals=30, blocked_from=10, blocked_until=20))

    def test_blockage_hurts_everyone(self, result):
        for strategy in result.timeline:
            assert result.mean_snr_during_blockage(strategy) < result.mean_snr_clear(strategy) - 8.0

    def test_adaptive_recovers_close_to_ssw(self, result):
        gap = result.mean_snr_during_blockage(
            "SSW (every 2nd)"
        ) - result.mean_snr_during_blockage("CSS adaptive + standby")
        assert gap < 3.0

    def test_css14_pays_for_low_coverage_under_deep_blockage(self, result):
        """The honest limitation: 14 random probes may miss the few
        reflection-pointing sectors that survive a deep blockage."""
        assert result.mean_snr_during_blockage(
            "CSS-14 (every)"
        ) < result.mean_snr_during_blockage("SSW (every 2nd)")

    def test_css_leads_when_clear(self, result):
        assert result.mean_snr_clear("CSS adaptive + standby") >= result.mean_snr_clear(
            "SSW (every 2nd)"
        ) - 0.5

    def test_timeline_lengths(self, result):
        for series in result.timeline.values():
            assert len(series) == 30
