"""Performance-trajectory harness for the estimation hot paths.

The paper's headline is *speed* — compressive selection beats the
exhaustive sweep because the math is cheap (§6.4) — so this repo
tracks the latency of its own hot kernels over time.  ``repro-bench
perf`` times four workloads:

* scalar ``CompressiveSectorSelector.select`` latency (M=14 probes on
  the default 91×9 search grid — the profiled workload),
* batched ``select_batch`` throughput over the same trials,
* a reduced chamber campaign build (the ``build_testbed`` hot path),
* ``record_directions`` recording throughput, plus the vectorized
  ``MeasurementModel.observe_batch`` kernel.

Later layers add their own points when present: the fused single-pass
selection kernel (``select_fused_per_s``), and the scenario engine
measured at ``jobs=1`` vs ``jobs=4`` against persistent warm runners —
the sharded executor keeps its fork pool and published shared-memory
kernels alive between runs, so the timed passes see the steady state
the service sees, and ``--check`` gates the jobs4/jobs1 ratio at 1.0
(noise-widened): sharded execution must never lose to serial.

Each run appends one machine-readable *trajectory point* to a JSON
file (``BENCH_core.json`` at the repo root by convention), so the
history of every optimization PR stays diffable.  ``repro-bench perf
--check`` compares the current latencies against the committed
baseline point and exits nonzero on a >2× regression — the guard CI
runs.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import platform
import sys
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_TRAJECTORY",
    "OBS_OVERHEAD_LIMIT_PCT",
    "PARALLEL_RATIO_LIMIT",
    "PROFILE_OVERHEAD_LIMIT_PCT",
    "REGRESSION_FACTOR",
    "SUPERVISION_OVERHEAD_LIMIT_PCT",
    "PerfPoint",
    "append_point",
    "check_against_baseline",
    "environment_mismatches",
    "load_trajectory",
    "run_perf",
]

#: Trajectory file format version.
BENCH_SCHEMA = 1

#: Default trajectory file, relative to the invoking directory (the
#: repo root when run as documented).
DEFAULT_TRAJECTORY = "BENCH_core.json"

#: ``--check`` fails when a latency metric exceeds baseline × this.
REGRESSION_FACTOR = 2.0

#: ``--check`` fails when the supervised runner costs more than this
#: over the unsupervised path (absolute gate, not vs. baseline).
SUPERVISION_OVERHEAD_LIMIT_PCT = 5.0

#: ``--check`` fails when an in-memory-traced run costs more than this
#: over the untraced default.  Untraced instrumentation is a no-op
#: dispatch (one global read per site), so the traced-vs-untraced delta
#: bounds the *whole* observability layer from above: if even recording
#: fits the budget, the disabled path certainly does.
OBS_OVERHEAD_LIMIT_PCT = 3.0

#: ``--check`` fails when a run under the sampling profiler costs more
#: than this over the unprofiled default.  The profiler fires a SIGPROF
#: every 5ms of *CPU* time and walks the interrupted stack, so its cost
#: scales with sampling rate, not workload size; this gate keeps
#: "profile always on" a defensible production posture.
PROFILE_OVERHEAD_LIMIT_PCT = 5.0

#: ``--check`` fails when the jobs=4 scenario pass is slower than the
#: jobs=1 pass by more than the observed measurement noise.  The
#: sharded executor amortizes kernel publication and stacks chunk
#: evaluation precisely so that ``--jobs 4`` never loses to serial;
#: a ratio above 1.0 (noise-widened) means that invariant broke.
PARALLEL_RATIO_LIMIT = 1.0

#: Latency metrics (lower is better) compared by ``--check``.
_LATENCY_METRICS = (
    "select_scalar_ms_median",
    "estimate_scalar_ms_median",
    "record_directions_s",
    "campaign_build_s",
    "scenario_fig7_fig9_jobs1_s",
)

#: Throughput metrics (higher is better) compared by ``--check`` — a
#: drop below baseline / ``REGRESSION_FACTOR`` fails the gate.
_THROUGHPUT_METRICS = ("probe_design_per_s",)


@dataclass(frozen=True)
class PerfPoint:
    """One datapoint on the performance trajectory."""

    label: str
    timestamp: str
    metrics: Dict[str, float]
    environment: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict:
        return {
            "label": self.label,
            "timestamp": self.timestamp,
            "metrics": self.metrics,
            "environment": self.environment,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "PerfPoint":
        return cls(
            label=str(data.get("label", "")),
            timestamp=str(data.get("timestamp", "")),
            metrics=dict(data.get("metrics", {})),
            environment=dict(data.get("environment", {})),
        )


def _environment() -> Dict[str, object]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 0,
        "start_method": multiprocessing.get_start_method(),
    }


def _normalize_env_value(value: object) -> object:
    """Canonical comparison form of one environment capture value.

    Captures have changed type across trajectory history — ``cpu_count``
    was recorded as the string ``"1"`` before it became the int ``1`` —
    so values that parse as numbers compare numerically (``"1"`` == ``1``
    == ``1.0``) and everything else compares as its string form.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value).strip())
    except ValueError:
        return str(value)


def environment_mismatches(
    baseline: Mapping[str, object], current: Mapping[str, object]
) -> List[str]:
    """Keys on which two environment captures disagree.

    Latency numbers taken under a different interpreter, numpy build,
    platform, core count or multiprocessing start method are
    apples-to-oranges; ``--check`` prints these as warnings so a
    cross-machine regression (or pass!) is read with the right
    suspicion, without flaking the job.  Values are compared through
    :func:`_normalize_env_value`, so points written before ``cpu_count``
    became an int (``"1"`` vs ``1``) do not flag a spurious mismatch.
    """
    lines = []
    for key in sorted(set(baseline) | set(current)):
        ours, theirs = current.get(key), baseline.get(key)
        if ours is None or theirs is None:
            continue  # older points predate some keys (start_method)
        if _normalize_env_value(ours) != _normalize_env_value(theirs):
            lines.append(f"{key}: baseline {theirs!r} vs current {ours!r}")
    return lines


# ----------------------------------------------------------------------
# Workloads.
# ----------------------------------------------------------------------


def _best_of(workload: Callable[[], object], passes: int = 3) -> float:
    """Fastest wall time over ``passes`` runs of a deterministic workload.

    The minimum is the standard robust estimator for single-shot
    benchmarks: scheduler preemption only ever *adds* time, so the best
    pass is the closest observation of the true cost.  Without it the
    ``--check`` gate flakes on loaded single-core machines.
    """
    best = float("inf")
    for _ in range(max(passes, 1)):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def _median_latency_s(calls: Sequence[Callable[[], object]], repeats: int) -> float:
    """Median per-call wall time over ``repeats`` passes of ``calls``."""
    for call in calls:  # warm caches and JIT-free numpy paths
        call()
    samples: List[float] = []
    for _ in range(repeats):
        for call in calls:
            start = time.perf_counter()
            call()
            samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def _perf_trials(testbed, n_directions: int, n_sweeps: int, n_probes: int, seed: int):
    """Deterministic M-probe trials recorded in the conference room."""
    from .channel.environment import conference_room
    from .experiments.common import random_subsweep, record_directions

    rng = np.random.default_rng(seed)
    azimuths = np.linspace(-45.0, 45.0, n_directions)
    recordings = record_directions(
        testbed, conference_room(6.0), azimuths, [0.0], n_sweeps, rng
    )
    trials = []
    for recording in recordings:
        for sweep in recording.sweeps:
            measurements = random_subsweep(
                sweep, testbed.tx_sector_ids, n_probes, rng
            )
            if len(measurements) >= 2:
                trials.append(measurements)
    return recordings, trials


def measure_metrics(
    repeats: int = 20,
    n_directions: int = 6,
    n_sweeps: int = 4,
    n_probes: int = 14,
    seed: int = 2017,
) -> Dict[str, float]:
    """Time the hot kernels and return a flat metric dict.

    All workloads are deterministic in ``seed``; the only variance
    between runs is machine noise.
    """
    from .channel.environment import conference_room
    from .core.compressive import CompressiveSectorSelector
    from .experiments.common import build_testbed, record_directions

    testbed = build_testbed()
    metrics: Dict[str, float] = {}

    # -- recording throughput (scalar reference path) ------------------
    azimuths = np.linspace(-45.0, 45.0, n_directions)
    metrics["record_directions_s"] = _best_of(
        lambda: record_directions(
            testbed,
            conference_room(6.0),
            azimuths,
            [0.0],
            n_sweeps,
            np.random.default_rng(seed + 1),
        )
    )

    # -- scalar select / estimate latency ------------------------------
    _, trials = _perf_trials(testbed, n_directions, n_sweeps, n_probes, seed)
    selector = CompressiveSectorSelector(testbed.pattern_table)
    metrics["select_scalar_ms_median"] = 1e3 * _median_latency_s(
        [lambda t=t: selector.select(t) for t in trials], repeats
    )
    estimator = selector.estimator
    metrics["estimate_scalar_ms_median"] = 1e3 * _median_latency_s(
        [lambda t=t: estimator.estimate(t) for t in trials], repeats
    )

    # -- batched throughput (absent before the batched engine) ---------
    if hasattr(selector, "select_batch"):
        from .experiments.common import pack_probe_trials

        batch = pack_probe_trials(trials)
        selector.reset()
        start = time.perf_counter()
        batch_repeats = max(repeats, 1)
        for _ in range(batch_repeats):
            selector.select_batch(*batch)
        elapsed = time.perf_counter() - start
        metrics["select_batch_per_s"] = len(trials) * batch_repeats / elapsed
        start = time.perf_counter()
        for _ in range(batch_repeats):
            estimator.estimate_batch(*batch)
        elapsed = time.perf_counter() - start
        metrics["estimate_batch_per_s"] = len(trials) * batch_repeats / elapsed
        # Fused single-pass kernel (absent before the fused engine):
        # same trials, same batch layout, so the fused/batched ratio is
        # directly the win of skipping the intermediate estimate pass.
        if hasattr(selector, "select_fused_batch"):
            selector.reset()
            start = time.perf_counter()
            for _ in range(batch_repeats):
                selector.select_fused_batch(*batch)
            elapsed = time.perf_counter() - start
            metrics["select_fused_per_s"] = len(trials) * batch_repeats / elapsed

    # -- probe-design throughput (absent before the designer stage) ----
    try:
        from .core.probes import clear_design_cache
        from .runtime.registry import available_probe_designers, build_probe_designer
    except ImportError:
        build_probe_designer = None
    if build_probe_designer is not None:
        # Cold-cache design cost: every deterministic designer solves
        # the full pool at two budgets per pass.  The cache is cleared
        # between passes — the steady state is one design per (table,
        # M, params) forever, so the interesting number is how fast a
        # *new* design point is, not the memo hit.
        design_names = [
            name for name in available_probe_designers() if name != "random"
        ]
        designers = [
            build_probe_designer(name, testbed.pattern_table)
            for name in design_names
        ]
        pool = list(testbed.tx_sector_ids)
        design_rng = np.random.default_rng(seed + 5)
        budgets = (8, 20)
        design_passes = 3
        start = time.perf_counter()
        for _ in range(design_passes):
            clear_design_cache()
            for designer in designers:
                for budget in budgets:
                    designer.design(budget, pool, design_rng)
        elapsed = time.perf_counter() - start
        clear_design_cache()
        metrics["probe_design_per_s"] = (
            len(designers) * len(budgets) * design_passes / elapsed
        )

    # -- observe kernel throughput -------------------------------------
    model = testbed.measurement_model
    noise_floor = testbed.budget.noise_floor_dbm
    true_snr = np.random.default_rng(seed + 2).uniform(-10.0, 12.0, size=2048)
    scalar_rng = np.random.default_rng(seed + 3)
    start = time.perf_counter()
    for value in true_snr[:512]:
        model.observe(float(value), noise_floor, scalar_rng)
    metrics["observe_scalar_per_s"] = 512 / (time.perf_counter() - start)
    if hasattr(model, "observe_batch"):
        batch_rng = np.random.default_rng(seed + 3)
        start = time.perf_counter()
        batch_repeats = 20
        for _ in range(batch_repeats):
            model.observe_batch(true_snr, noise_floor, batch_rng)
        elapsed = time.perf_counter() - start
        metrics["observe_batch_per_s"] = true_snr.size * batch_repeats / elapsed

    # -- campaign build (reduced grid, the build_testbed hot path) -----
    from .measurement.campaign import CampaignConfig, PatternMeasurementCampaign

    campaign = PatternMeasurementCampaign(
        testbed.dut_antenna,
        testbed.dut_codebook,
        reference_antenna=testbed.ref_antenna,
        reference_codebook=testbed.ref_codebook,
        budget=testbed.budget,
        measurement_model=testbed.measurement_model,
    )
    config = CampaignConfig(
        azimuths_deg=np.linspace(-90.0, 90.0, 13),
        elevations_deg=(0.0, 16.0, 32.0),
        n_sweeps=1,
    )
    metrics["campaign_build_s"] = _best_of(
        lambda: campaign.run(config, np.random.default_rng(seed + 4))
    )

    # -- scenario engine wall time (absent before the runtime landed) --
    try:
        from .experiments.fig7 import Fig7Config, fig7_spec
        from .experiments.fig9 import Fig9Config, fig9_spec
        from .runtime import ScenarioRunner
    except ImportError:
        ScenarioRunner = None
    if ScenarioRunner is not None:
        scenario_specs = (
            fig7_spec(
                Fig7Config(
                    probe_counts=(8, 20),
                    lab_azimuth_step_deg=10.0,
                    lab_elevation_step_deg=15.0,
                    conference_azimuth_step_deg=10.0,
                    n_sweeps=1,
                    subsamples_per_sweep=1,
                )
            ),
            fig9_spec(Fig9Config(probe_counts=(6, 14), azimuth_step_deg=10.0, n_sweeps=6)),
        )
        # One persistent runner per jobs level: the sharded executor
        # keeps its fork pool and published shared-memory kernels warm
        # between runs (the service's steady state), so a fresh runner
        # per pass would charge pool spawn + kernel publication to
        # jobs=4 only.  A throwaway warm-up pass per level pays those
        # one-time costs off the clock, then the timed passes
        # interleave the levels so machine drift hits both alike, with
        # best-of across passes and the observed spread recorded for
        # the noise-widened --check gate.
        levels = ((1, "scenario_fig7_fig9_jobs1_s"), (4, "scenario_fig7_fig9_jobs4_s"))
        runners = {name: ScenarioRunner(jobs=jobs) for jobs, name in levels}
        level_times: Dict[str, List[float]] = {name: [] for _, name in levels}
        try:
            for _, name in levels:
                for scenario_spec in scenario_specs:
                    runners[name].run(scenario_spec)
            for _ in range(3):
                for _, name in levels:
                    start = time.perf_counter()
                    for scenario_spec in scenario_specs:
                        runners[name].run(scenario_spec)
                    level_times[name].append(time.perf_counter() - start)
        finally:
            for scenario_runner in runners.values():
                scenario_runner.close()
        for _, name in levels:
            metrics[name] = float(min(level_times[name]))
        jobs1 = metrics["scenario_fig7_fig9_jobs1_s"]
        jobs4 = metrics["scenario_fig7_fig9_jobs4_s"]
        metrics["scenario_jobs4_over_jobs1_ratio"] = jobs4 / jobs1
        metrics["scenario_jobs_noise_pct"] = (
            100.0
            * float(
                np.ptp(level_times["scenario_fig7_fig9_jobs1_s"])
                + np.ptp(level_times["scenario_fig7_fig9_jobs4_s"])
            )
            / jobs1
        )

    # -- supervision overhead (absent before the fault layer landed) ---
    try:
        from .experiments.fig9 import Fig9Config, fig9_spec
        from .runtime import FaultPlan, RetryPolicy, ScenarioRunner as _Runner
    except ImportError:
        _Runner = None
    if _Runner is not None:
        supervised_spec = fig9_spec(
            Fig9Config(probe_counts=(6, 14), azimuth_step_deg=20.0, n_sweeps=6)
        )

        def _run_unsupervised():
            with _Runner(jobs=1) as runner:
                runner.run(supervised_spec)

        def _run_supervised():
            # Full supervision machinery engaged — retry accounting,
            # an (empty) injector consulted per dispatch — minus any
            # actual fault, so the delta is pure bookkeeping overhead.
            with _Runner(
                jobs=1,
                retry=RetryPolicy(max_attempts=3, timeout_s=60.0),
                faults=FaultPlan(),
            ) as runner:
                runner.run(supervised_spec)

        # Interleave the two workloads so slow drift on a shared runner
        # (thermal throttling, a noisy neighbour arriving mid-measure)
        # hits both sides alike, take medians rather than single best
        # passes, and record the observed run-to-run spread so the
        # --check gate can widen itself on noisy machines instead of
        # flaking on a small absolute threshold.
        unsupervised_times: List[float] = []
        supervised_times: List[float] = []
        for _ in range(5):
            start = time.perf_counter()
            _run_unsupervised()
            unsupervised_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            _run_supervised()
            supervised_times.append(time.perf_counter() - start)
        unsupervised = float(np.median(unsupervised_times))
        supervised = float(np.median(supervised_times))
        metrics["runner_unsupervised_s"] = unsupervised
        metrics["runner_supervised_s"] = supervised
        metrics["runner_supervision_overhead_pct"] = (
            100.0 * (supervised - unsupervised) / unsupervised
        )
        metrics["runner_supervision_noise_pct"] = (
            100.0
            * float(np.ptp(unsupervised_times) + np.ptp(supervised_times))
            / unsupervised
        )

    # -- observability overhead (absent before repro.obs landed) -------
    try:
        from . import obs as _obs_module
        from .experiments.fig9 import Fig9Config, fig9_spec
        from .runtime import ScenarioRunner as _ObsRunner
    except ImportError:
        _ObsRunner = None
    if _ObsRunner is not None:
        obs_spec = fig9_spec(
            Fig9Config(probe_counts=(6, 14), azimuth_step_deg=20.0, n_sweeps=6)
        )

        def _run_untraced():
            with _ObsRunner(jobs=1) as runner:
                runner.run(obs_spec)

        def _run_traced():
            # Full recording engaged — every span opened, every counter
            # bumped, the rollup computed — but in memory only, so the
            # delta is the cost of the observability layer itself, not
            # of file I/O.
            with _ObsRunner(jobs=1, obs=_obs_module.ObsSession()) as runner:
                runner.run(obs_spec)

        # Same interleaved-medians discipline as the supervision
        # overhead above: drift hits both sides alike, and the observed
        # spread widens the --check gate on noisy machines.
        untraced_times: List[float] = []
        traced_times: List[float] = []
        for _ in range(5):
            start = time.perf_counter()
            _run_untraced()
            untraced_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            _run_traced()
            traced_times.append(time.perf_counter() - start)
        untraced = float(np.median(untraced_times))
        traced = float(np.median(traced_times))
        metrics["runner_untraced_s"] = untraced
        metrics["runner_traced_s"] = traced
        metrics["runner_obs_overhead_pct"] = 100.0 * (traced - untraced) / untraced
        metrics["runner_obs_noise_pct"] = (
            100.0 * float(np.ptp(untraced_times) + np.ptp(traced_times)) / untraced
        )

    # -- sampling-profiler overhead (absent before obs.profile landed) -
    try:
        from .obs import profile as _profile_module
        from .experiments.fig9 import Fig9Config, fig9_spec
        from .runtime import ScenarioRunner as _ProfRunner
    except ImportError:
        _ProfRunner = None
    if _ProfRunner is not None:
        profile_spec = fig9_spec(
            Fig9Config(probe_counts=(6, 14), azimuth_step_deg=20.0, n_sweeps=6)
        )

        def _run_unprofiled():
            with _ProfRunner(jobs=1) as runner:
                runner.run(profile_spec)

        def _run_profiled():
            # The profiler is armed exactly as `run --profile-sampling`
            # arms it — SIGPROF at the default interval, every sample
            # walking the live stacks — so the delta is the cost a user
            # pays for leaving continuous profiling on.
            _profile_module.start_profiling()
            try:
                with _ProfRunner(jobs=1) as runner:
                    runner.run(profile_spec)
            finally:
                _profile_module.stop_profiling()

        # Same interleaved-medians discipline as the supervision and
        # observability overheads above.
        unprofiled_times: List[float] = []
        profiled_times: List[float] = []
        for _ in range(5):
            start = time.perf_counter()
            _run_unprofiled()
            unprofiled_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            _run_profiled()
            profiled_times.append(time.perf_counter() - start)
        unprofiled = float(np.median(unprofiled_times))
        profiled = float(np.median(profiled_times))
        metrics["runner_unprofiled_s"] = unprofiled
        metrics["runner_profiled_s"] = profiled
        metrics["runner_profile_overhead_pct"] = (
            100.0 * (profiled - unprofiled) / unprofiled
        )
        metrics["runner_profile_noise_pct"] = (
            100.0
            * float(np.ptp(unprofiled_times) + np.ptp(profiled_times))
            / unprofiled
        )

    # -- testbed disk cache (absent before the cache landed) -----------
    try:
        from .experiments.common import testbed_table_cache_info

        info = testbed_table_cache_info()
    except ImportError:
        info = None
    if info is not None and info.get("path") and pathlib.Path(info["path"]).is_file():
        from .measurement.patterns import PatternTable

        start = time.perf_counter()
        PatternTable.load(info["path"])
        metrics["testbed_table_load_s"] = time.perf_counter() - start

    return metrics


# ----------------------------------------------------------------------
# Trajectory file I/O.
# ----------------------------------------------------------------------


def load_trajectory(path) -> Dict:
    """Read a trajectory file, or return an empty skeleton."""
    path = pathlib.Path(path)
    if not path.is_file():
        return {"schema": BENCH_SCHEMA, "points": []}
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or not isinstance(data.get("points"), list):
        raise ValueError(f"'{path}' is not a perf trajectory file")
    return data


def _canonical_environment(environment: Mapping[str, object]) -> Dict[str, object]:
    """Environment capture with numeric values stored as numbers.

    Early trajectory points serialized ``cpu_count`` as the string
    ``"1"`` (the capture went through a formatting helper); later
    producers write the int.  Consumers tolerate both via
    :func:`_normalize_env_value`, but every *write* canonicalizes so the
    committed file converges on one representation instead of carrying
    the accident forward forever.  Version strings ("3.11.9") stay
    strings — only clean integers are converted.
    """
    canonical: Dict[str, object] = {}
    for key, value in environment.items():
        if isinstance(value, str):
            text = value.strip()
            if text.lstrip("+-").isdigit():
                value = int(text)
        canonical[key] = value
    return canonical


def append_point(path, point: PerfPoint) -> Dict:
    """Append one datapoint and rewrite the trajectory atomically.

    Rewriting is also when historical points get their environment
    values canonicalized (see :func:`_canonical_environment`), so one
    append migrates the whole file.
    """
    path = pathlib.Path(path)
    data = load_trajectory(path)
    data["schema"] = BENCH_SCHEMA
    data["points"].append(point.to_json())
    for entry in data["points"]:
        if isinstance(entry, dict) and isinstance(entry.get("environment"), dict):
            entry["environment"] = _canonical_environment(entry["environment"])
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return data


def _baseline_point(data: Dict) -> Optional[PerfPoint]:
    """The committed reference point: first labeled 'baseline', else first."""
    points = [PerfPoint.from_json(p) for p in data.get("points", [])]
    if not points:
        return None
    for point in points:
        if point.label == "baseline":
            return point
    return points[0]


def check_against_baseline(
    data: Dict, metrics: Dict[str, float], factor: float = REGRESSION_FACTOR
) -> List[str]:
    """Latency regressions (> ``factor``×) vs. the baseline point.

    Returns human-readable failure lines; empty means the check passed.
    Metrics missing on either side are skipped — the baseline predates
    some kernels (e.g. the batched engine).
    """
    baseline = _baseline_point(data)
    if baseline is None:
        return ["no baseline point in trajectory (run 'repro-bench perf' first)"]
    failures = []
    for name in _LATENCY_METRICS:
        reference = baseline.metrics.get(name)
        current = metrics.get(name)
        if reference is None or current is None or reference <= 0:
            continue
        if current > factor * reference:
            failures.append(
                f"{name}: {current:.4g} vs baseline {reference:.4g} "
                f"(>{factor:.1f}x regression)"
            )
    points = [PerfPoint.from_json(p) for p in data.get("points", [])]
    for name in _THROUGHPUT_METRICS:
        # The 'baseline' point predates the newer kernels, so each
        # throughput metric gates against the most recent committed
        # point that recorded it.
        reference = next(
            (
                p.metrics[name]
                for p in reversed(points)
                if p.metrics.get(name, 0) > 0
            ),
            None,
        )
        current = metrics.get(name)
        if reference is None or current is None:
            continue
        if current < reference / factor:
            failures.append(
                f"{name}: {current:.4g} vs committed {reference:.4g} "
                f"(<1/{factor:.1f}x throughput)"
            )
    overhead = metrics.get("runner_supervision_overhead_pct")
    if overhead is not None:
        # The 5% budget is small relative to wall-clock jitter on
        # shared CI runners, so the gate widens by the spread the
        # measurement itself observed: a real regression clears the
        # noise floor, a noisy machine does not flake the job.
        noise = max(0.0, float(metrics.get("runner_supervision_noise_pct", 0.0)))
        if overhead > SUPERVISION_OVERHEAD_LIMIT_PCT + noise:
            failures.append(
                f"runner_supervision_overhead_pct: {overhead:.2f}% "
                f"(limit {SUPERVISION_OVERHEAD_LIMIT_PCT:.0f}% over unsupervised "
                f"+ {noise:.2f}% observed measurement noise)"
            )
    obs_overhead = metrics.get("runner_obs_overhead_pct")
    if obs_overhead is not None:
        noise = max(0.0, float(metrics.get("runner_obs_noise_pct", 0.0)))
        if obs_overhead > OBS_OVERHEAD_LIMIT_PCT + noise:
            failures.append(
                f"runner_obs_overhead_pct: {obs_overhead:.2f}% "
                f"(limit {OBS_OVERHEAD_LIMIT_PCT:.0f}% over untraced "
                f"+ {noise:.2f}% observed measurement noise)"
            )
    profile_overhead = metrics.get("runner_profile_overhead_pct")
    if profile_overhead is not None:
        noise = max(0.0, float(metrics.get("runner_profile_noise_pct", 0.0)))
        if profile_overhead > PROFILE_OVERHEAD_LIMIT_PCT + noise:
            failures.append(
                f"runner_profile_overhead_pct: {profile_overhead:.2f}% "
                f"(limit {PROFILE_OVERHEAD_LIMIT_PCT:.0f}% over unprofiled "
                f"+ {noise:.2f}% observed measurement noise)"
            )
    ratio = metrics.get("scenario_jobs4_over_jobs1_ratio")
    if ratio is not None:
        # Same noise-widening discipline as the overhead gates: the
        # invariant is jobs4 <= jobs1, but both sides are wall-clock on
        # a possibly-shared machine, so the gate admits the spread the
        # interleaved measurement itself observed.
        noise = max(0.0, float(metrics.get("scenario_jobs_noise_pct", 0.0)))
        if ratio > PARALLEL_RATIO_LIMIT + noise / 100.0:
            failures.append(
                f"scenario_jobs4_over_jobs1_ratio: {ratio:.3f} "
                f"(sharded jobs=4 lost to serial; limit "
                f"{PARALLEL_RATIO_LIMIT:.2f} + {noise:.2f}% observed noise)"
            )
    return failures


def run_perf(
    label: str = "dev",
    output: Optional[str] = DEFAULT_TRAJECTORY,
    check: bool = False,
    repeats: int = 20,
) -> int:
    """Measure, report, optionally append and/or regression-check.

    Returns a process exit code (nonzero = regression detected).
    """
    metrics = measure_metrics(repeats=repeats)
    print("perf: hot-kernel trajectory point")
    for name in sorted(metrics):
        print(f"  {name:28s} {metrics[name]:12.5g}")

    status = 0
    if check:
        data = load_trajectory(output) if output else {"points": []}
        baseline = _baseline_point(data)
        if baseline is not None:
            for line in environment_mismatches(baseline.environment, _environment()):
                print(f"warning: environment mismatch - {line}", file=sys.stderr)
        failures = check_against_baseline(data, metrics)
        if failures:
            status = 1
            for line in failures:
                print(f"REGRESSION: {line}", file=sys.stderr)
        else:
            print("check: no latency regression vs committed baseline")
    elif output:
        point = PerfPoint(
            label=label,
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            metrics=metrics,
            environment=_environment(),
        )
        append_point(output, point)
        print(f"appended trajectory point '{label}' to {output}")
    return status
