"""Pinned-output regression tests for the ScenarioRunner rewrite.

Every experiment module was rewritten from a hand-rolled trial loop to
a declarative ScenarioSpec + the shared ScenarioRunner.  These tests
pin exact floats produced by the *legacy* loops (captured before the
rewrite, at reduced configs that run in seconds) so the engine is
provably bit-identical — the acceptance criterion of the refactor.

They also pin the parallel path: ``jobs=4`` must reproduce ``jobs=1``
exactly, because workers rebuild their world from the spec and the
per-trial draws are planned before sharding.
"""

from dataclasses import asdict

import pytest

from repro.experiments import (
    DriftConfig,
    Fig7Config,
    Fig8Config,
    Fig9Config,
    Fig11Config,
    TransferConfig,
    run_3d_ablation,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig11,
    run_fusion_ablation,
    run_pattern_drift,
    run_pattern_transfer,
    run_probe_set_ablation,
)

FIG7_CONFIG = Fig7Config(
    probe_counts=(8, 20),
    lab_azimuth_step_deg=20.0,
    lab_elevation_step_deg=15.0,
    conference_azimuth_step_deg=15.0,
    n_sweeps=1,
    subsamples_per_sweep=1,
)
FIG9_CONFIG = Fig9Config(probe_counts=(6, 14), azimuth_step_deg=20.0, n_sweeps=6)


class TestPinnedFigures:
    def test_fig7_pinned(self):
        result = run_fig7(FIG7_CONFIG)
        assert [s.median for s in result.lab.azimuth_stats] == [4.0, 4.0]
        assert [s.median for s in result.lab.elevation_stats] == [3.0, 3.0]
        assert [s.whisker_high for s in result.lab.azimuth_stats] == [
            76.39999999999995,
            15.399999999999991,
        ]
        assert [s.median for s in result.conference.azimuth_stats] == [11.0, 2.0]
        assert [s.n_samples for s in result.conference.azimuth_stats] == [9, 9]

    def test_fig8_pinned(self):
        result = run_fig8(
            Fig8Config(probe_counts=(6, 14), azimuth_step_deg=20.0, n_sweeps=8)
        )
        assert result.css_stability == [0.35714285714285715, 0.75]
        assert result.ssw_stability == 0.8571428571428571

    def test_fig9_pinned(self):
        result = run_fig9(FIG9_CONFIG)
        assert result.css_loss_db == [7.210022775933676, 0.3270535227363838]
        assert result.ssw_loss_db == 0.6411294753018227

    def test_fig11_pinned(self):
        result = run_fig11(Fig11Config(n_intervals=6))
        assert result.css_gbps == [1.4403070919520833, 1.79900442, 1.79900442]
        assert result.ssw_gbps == [
            1.696490569706562,
            1.79770842,
            1.7677466129999997,
        ]


class TestPinnedExtensions:
    def test_transfer_pinned(self):
        result = run_pattern_transfer(
            TransferConfig(azimuth_step_deg=30.0, n_sweeps=2)
        )
        assert result.azimuth_error_deg == {
            "own (device B)": 1.8,
            "foreign (device A)": 8.0,
        }
        assert result.snr_loss_db == {
            "own (device B)": 1.7941552033267492,
            "foreign (device A)": 2.4600962173416905,
        }

    def test_drift_pinned(self):
        result = run_pattern_drift(
            DriftConfig(drift_levels_rad=(0.0, 0.4), azimuth_step_deg=30.0, n_sweeps=2)
        )
        assert result.snr_loss_db == [0.5310617986713723, 2.052545998698789]
        assert result.fallback_rate == [0.0, 0.0]


class TestPinnedAblations:
    def test_fusion_pinned(self):
        result = run_fusion_ablation()
        assert result.variants == {
            "fusion=snr": 7.4068627450980395,
            "fusion=rssi": 8.387254901960784,
            "fusion=product": 5.122549019607843,
        }

    def test_probe_set_pinned(self):
        result = run_probe_set_ablation()
        assert result.variants == {
            "random subsets": 7.264705882352941,
            "gain-diverse (greedy)": 5.0588235294117645,
        }

    def test_3d_pinned(self):
        result = run_3d_ablation()
        assert result.variants == {
            "3D search grid": 1.7276792510238987,
            "2D (azimuth-only) grid": 8.957683358603218,
        }


class TestParallelBitExactness:
    """``--jobs 4`` shards recordings across processes; results must not move."""

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_fig9_jobs_equal(self, jobs):
        assert asdict(run_fig9(FIG9_CONFIG, jobs=jobs)) == asdict(run_fig9(FIG9_CONFIG))

    def test_fig7_jobs_equal(self):
        assert asdict(run_fig7(FIG7_CONFIG, jobs=4)) == asdict(run_fig7(FIG7_CONFIG))
