"""Ablations of the design choices DESIGN.md calls out.

Each function isolates one decision the paper makes (or argues against)
and quantifies its effect with everything else held fixed:

* **fusion** — Eq. 3 (SNR only) vs. Eq. 5 (SNR×RSSI product), §5;
* **patterns** — measured patterns vs. the ideal-array theoretical
  prediction, §2.2 ("instead of … theoretical beam patterns based on
  geometrical antenna layouts, we use … measured patterns");
* **probe sets** — random subsets vs. §7's gain-diverse pre-selection;
* **3D** — full spherical search vs. azimuth-only 2D estimation, §2.1
  ("predicting paths only in a two dimensional environment is
  insufficient");
* **random beams** — probing with the codebook's tuned sectors vs.
  pseudo-random beams (Rasekh et al.), §2.1's preliminary experiment.

The batched estimator ablations (fusion / patterns / probe sets / 3D)
route through :class:`~repro.runtime.runner.ScenarioRunner` with
``"css"`` policy variants; the remaining studies keep their scalar
bodies (their draws interleave with per-frame ``observe`` calls, which
is exactly the stream their pinned values ride on) but still run as
registered scenarios so they emit manifests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..baselines.random_beams import random_beam_codebook, theoretical_pattern_table
from ..channel.batch import sweep_snr_matrix
from ..channel.environment import conference_room, lab_environment
from ..core.estimator import AngleEstimator
from ..core.measurements import ProbeMeasurement
from ..geometry.angles import azimuth_difference
from ..geometry.rotation import Orientation
from ..runtime.registry import register_scenario
from ..runtime.runner import ScenarioRunner
from ..runtime.spec import PolicySpec, ScenarioSpec, TestbedSpec
from .common import (
    Testbed,
    pack_probe_trials,
    random_probe_columns,
    random_subsweep,
    record_directions,
)

__all__ = [
    "AblationResult",
    "run_fusion_ablation",
    "run_pattern_ablation",
    "run_probe_set_ablation",
    "run_3d_ablation",
    "run_random_beam_ablation",
    "run_adaptive_ablation",
    "run_oob_prior_ablation",
    "run_refinement_ablation",
]


@dataclass
class AblationResult:
    """Named variants → metric values, with a one-line conclusion."""

    title: str
    metric_name: str
    variants: Dict[str, float] = field(default_factory=dict)

    def best_variant(self, lower_is_better: bool = True) -> str:
        chooser = min if lower_is_better else max
        return chooser(self.variants, key=self.variants.get)

    def format_rows(self) -> List[str]:
        rows = [f"ablation: {self.title} ({self.metric_name})"]
        for name, value in self.variants.items():
            rows.append(f"  {name:28s} {value:8.3f}")
        return rows


def _estimator_azimuth_errors(
    estimator: AngleEstimator,
    recordings,
    tx_ids: Sequence[int],
    n_probes: int,
    rng: np.random.Generator,
    subsamples: int = 3,
) -> List[float]:
    # Batched trial loop for bodies that keep a raw estimator (same
    # draw order and bit-identical estimates as the scalar one).
    id_row = np.asarray(tx_ids, dtype=np.intp)
    trial_ids: List[np.ndarray] = []
    trial_snr: List[np.ndarray] = []
    trial_rssi: List[np.ndarray] = []
    trial_mask: List[np.ndarray] = []
    truths: List[float] = []
    for recording in recordings:
        present, snr, rssi = recording.packed_sweeps(tx_ids)
        for sweep_index in range(len(recording.sweeps)):
            for _ in range(subsamples):
                columns = random_probe_columns(len(tx_ids), n_probes, rng)
                trial_ids.append(id_row[columns])
                trial_snr.append(snr[sweep_index, columns])
                trial_rssi.append(rssi[sweep_index, columns])
                trial_mask.append(present[sweep_index, columns])
                truths.append(recording.azimuth_deg)
    estimates = estimator.estimate_batch(
        np.stack(trial_ids),
        snr_db=np.stack(trial_snr),
        rssi_dbm=np.stack(trial_rssi),
        mask=np.stack(trial_mask),
    )
    return [
        abs(azimuth_difference(estimate.azimuth_deg, truth))
        for estimate, truth in zip(estimates, truths)
        if estimate is not None
    ]


def _policy_azimuth_errors(
    runner: ScenarioRunner,
    testbed_spec: TestbedSpec,
    testbed: Testbed,
    policy_spec: PolicySpec,
    recordings,
    rng: np.random.Generator,
    subsamples: int = 3,
) -> List[float]:
    """Azimuth errors of one ``"css"`` policy variant over recordings."""
    context = runner.context(testbed)
    policy = runner.build_policy(policy_spec, context)
    blocks = runner.plan_trials(
        policy, recordings, testbed.tx_sector_ids, rng, subsamples_per_sweep=subsamples
    )
    records = runner.execute(
        policy,
        blocks,
        reset="recording",
        policy_spec=policy_spec,
        testbed_spec=testbed_spec,
    )
    errors: List[float] = []
    for record in records:
        estimate = record.result.estimate
        if estimate is None:
            continue
        errors.append(
            abs(
                azimuth_difference(
                    estimate.azimuth_deg, recordings[record.recording_index].azimuth_deg
                )
            )
        )
    return errors


def _conference_recordings(testbed: Testbed, rng: np.random.Generator, n_sweeps: int = 4):
    azimuths = np.arange(-60.0, 60.0 + 1e-9, 7.5)
    return record_directions(
        testbed, conference_room(6.0), azimuths, [0.0], n_sweeps, rng
    )


def _ablation_spec(scenario: str, n_probes: int, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        scenario=scenario, seed=seed, params={"n_probes": int(n_probes)}
    )


def fusion_ablation_spec(n_probes: int = 14, seed: int = 21) -> ScenarioSpec:
    return _ablation_spec("ablate-fusion", n_probes, seed)


@register_scenario("ablate-fusion", default_spec=fusion_ablation_spec)
def _run_fusion_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> AblationResult:
    """Eq. 3 vs Eq. 5: does the SNR×RSSI product help against outliers?"""
    n_probes = int(spec.params["n_probes"])
    testbed = spec.testbed.build()
    rng = np.random.default_rng(spec.seed)
    recordings = _conference_recordings(testbed, rng)
    result = AblationResult(
        title=f"correlation fusion @ {n_probes} probes",
        metric_name="mean azimuth error [deg]",
    )
    for fusion in ("snr", "rssi", "product"):
        errors = _policy_azimuth_errors(
            runner,
            spec.testbed,
            testbed,
            PolicySpec("css", {"n_probes": n_probes, "fusion": fusion}),
            recordings,
            rng,
        )
        result.variants[f"fusion={fusion}"] = float(np.mean(errors))
    return result


def run_fusion_ablation(n_probes: int = 14, seed: int = 21) -> AblationResult:
    """Eq. 3 vs Eq. 5: does the SNR×RSSI product help against outliers?"""
    return ScenarioRunner().run(fusion_ablation_spec(n_probes, seed)).result


def pattern_ablation_spec(n_probes: int = 14, seed: int = 22) -> ScenarioSpec:
    return _ablation_spec("ablate-patterns", n_probes, seed)


@register_scenario("ablate-patterns", default_spec=pattern_ablation_spec)
def _run_pattern_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> AblationResult:
    """Measured patterns vs. the ideal-array theoretical prediction."""
    n_probes = int(spec.params["n_probes"])
    testbed = spec.testbed.build()
    rng = np.random.default_rng(spec.seed)
    recordings = _conference_recordings(testbed, rng)
    result = AblationResult(
        title=f"pattern knowledge @ {n_probes} probes",
        metric_name="mean azimuth error [deg]",
    )
    for name, patterns in (
        ("measured patterns", "measured"),
        ("theoretical patterns", "theoretical"),
    ):
        errors = _policy_azimuth_errors(
            runner,
            spec.testbed,
            testbed,
            PolicySpec("css", {"n_probes": n_probes, "patterns": patterns}),
            recordings,
            rng,
        )
        result.variants[name] = float(np.mean(errors))
    return result


def run_pattern_ablation(n_probes: int = 14, seed: int = 22) -> AblationResult:
    """Measured patterns vs. the ideal-array theoretical prediction."""
    return ScenarioRunner().run(pattern_ablation_spec(n_probes, seed)).result


def probe_set_ablation_spec(n_probes: int = 10, seed: int = 23) -> ScenarioSpec:
    return _ablation_spec("ablate-probe-set", n_probes, seed)


@register_scenario("ablate-probe-set", default_spec=probe_set_ablation_spec)
def _run_probe_set_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> AblationResult:
    """Random probe subsets vs. §7's gain-diverse pre-selection."""
    n_probes = int(spec.params["n_probes"])
    testbed = spec.testbed.build()
    rng = np.random.default_rng(spec.seed)
    recordings = _conference_recordings(testbed, rng)
    result = AblationResult(
        title=f"probe-set strategy @ {n_probes} probes",
        metric_name="mean azimuth error [deg]",
    )
    for name, strategy in (
        ("random subsets", "random"),
        ("gain-diverse (greedy)", "gain-diverse"),
    ):
        errors = _policy_azimuth_errors(
            runner,
            spec.testbed,
            testbed,
            PolicySpec("css", {"n_probes": n_probes, "probe_strategy": strategy}),
            recordings,
            rng,
            subsamples=1,
        )
        result.variants[name] = float(np.mean(errors))
    return result


def run_probe_set_ablation(n_probes: int = 10, seed: int = 23) -> AblationResult:
    """Random probe subsets vs. §7's gain-diverse pre-selection."""
    return ScenarioRunner().run(probe_set_ablation_spec(n_probes, seed)).result


def ablation_3d_spec(n_probes: int = 14, seed: int = 24) -> ScenarioSpec:
    return _ablation_spec("ablate-3d", n_probes, seed)


@register_scenario("ablate-3d", default_spec=ablation_3d_spec)
def _run_3d_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> AblationResult:
    """Full 3D estimation vs. azimuth-only search on a tilted link.

    The device is tilted (elevation 12–24°); a 2D selector that assumes
    everything happens in the azimuth plane picks systematically worse
    sectors — the paper's argument for extending path tracking to 3D.
    """
    n_probes = int(spec.params["n_probes"])
    testbed = spec.testbed.build()
    context = runner.context(testbed)
    rng = np.random.default_rng(spec.seed)
    azimuths = np.arange(-45.0, 45.0 + 1e-9, 7.5)
    recordings = record_directions(
        testbed, lab_environment(3.0), azimuths, [12.0, 24.0], 3, rng
    )
    tx_ids = testbed.tx_sector_ids
    column_of = {sector_id: column for column, sector_id in enumerate(tx_ids)}
    result = AblationResult(
        title=f"3D vs 2D estimation @ {n_probes} probes, tilted device",
        metric_name="mean SNR loss [dB]",
    )
    # The legacy loop reused one selector across all recordings without
    # a reset; `reset="plan"` threads the state through every trial the
    # same way (the probe draws happen in the scalar order, selection
    # consumes no rng).
    for name, search in (("3D search grid", "3d"), ("2D (azimuth-only) grid", "2d")):
        policy_spec = PolicySpec("css", {"n_probes": n_probes, "search": search})
        policy = runner.build_policy(policy_spec, context)
        records = runner.execute(
            policy,
            runner.plan_trials(policy, recordings, tx_ids, rng),
            reset="plan",
            label=name,
        )
        losses = [
            recordings[record.recording_index].optimal_snr_db()
            - recordings[record.recording_index].true_snr_db[
                column_of[record.result.sector_id]
            ]
            for record in records
        ]
        result.variants[name] = float(np.mean(losses))
    return result


def run_3d_ablation(n_probes: int = 14, seed: int = 24) -> AblationResult:
    """Full 3D estimation vs. azimuth-only search on a tilted link."""
    return ScenarioRunner().run(ablation_3d_spec(n_probes, seed)).result


def random_beam_ablation_spec(n_probes: int = 14, seed: int = 25) -> ScenarioSpec:
    return _ablation_spec("ablate-random-beams", n_probes, seed)


@register_scenario("ablate-random-beams", default_spec=random_beam_ablation_spec)
def _run_random_beam_scenario(
    spec: ScenarioSpec, runner: ScenarioRunner
) -> AblationResult:
    """Tuned codebook sectors vs. pseudo-random probing beams.

    Reproduces the paper's preliminary finding (§2.1): random phase
    settings forgo beamforming gain — the best achievable link SNR
    collapses, "severely limiting the communication range" — and the
    theoretical patterns they must be correlated against do not match
    the impaired hardware, degrading the angle estimates.
    """
    n_probes = int(spec.params["n_probes"])
    testbed = spec.testbed.build()
    rng = np.random.default_rng(spec.seed)
    environment = conference_room(6.0)
    azimuths = np.arange(-45.0, 45.0 + 1e-9, 15.0)
    orientations = [Orientation(yaw_deg=-float(az)) for az in azimuths]

    random_codebook = random_beam_codebook(testbed.dut_antenna, 29, rng)
    random_ids = random_codebook.tx_sector_ids
    random_truth = sweep_snr_matrix(
        environment,
        testbed.dut_antenna,
        random_codebook,
        random_ids,
        orientations,
        testbed.ref_antenna,
        testbed.ref_codebook.rx_sector.weights,
        budget=testbed.budget,
    )
    sector_recordings = record_directions(testbed, environment, azimuths, [0.0], 4, rng)

    # Metric 1: best-beam SNR — the link the connection actually rides.
    sector_best = [recording.optimal_snr_db() for recording in sector_recordings]
    random_best = list(np.max(random_truth, axis=1))

    # Metric 2: azimuth estimation error.  Random beams are correlated
    # against their *theoretical* (ideal-array) patterns — a designer
    # has nothing else — while the sectors use the measured table.
    sector_estimator = AngleEstimator(testbed.pattern_table)
    sector_errors = _estimator_azimuth_errors(
        sector_estimator, sector_recordings, testbed.tx_sector_ids, n_probes, rng,
        subsamples=1,
    )

    theoretical = theoretical_pattern_table(
        random_codebook, testbed.pattern_table.grid, antenna=testbed.dut_antenna
    )
    # The probing draws interleave `rng.choice` with per-frame scalar
    # `observe` calls, so that part stays scalar to preserve the pinned
    # stream; only the estimates are batched (bit-identical).
    random_estimator = AngleEstimator(theoretical)
    noise_floor = testbed.budget.noise_floor_dbm
    random_trials: List[List[ProbeMeasurement]] = []
    random_truth_azimuths: List[float] = []
    for row, orientation in enumerate(orientations):
        for _ in range(4):
            chosen = rng.choice(len(random_ids), size=n_probes, replace=False)
            measurements = []
            for index in chosen:
                observation = testbed.measurement_model.observe(
                    random_truth[row, index], noise_floor, rng
                )
                if observation is not None:
                    measurements.append(
                        ProbeMeasurement(
                            sector_id=random_ids[index],
                            snr_db=observation.snr_db,
                            rssi_dbm=observation.rssi_dbm,
                        )
                    )
            random_trials.append(measurements)
            random_truth_azimuths.append(float(azimuths[row]))
    random_estimates = random_estimator.estimate_batch(*pack_probe_trials(random_trials))
    random_errors = [
        abs(azimuth_difference(estimate.azimuth_deg, truth))
        for estimate, truth in zip(random_estimates, random_truth_azimuths)
        if estimate is not None
    ]

    result = AblationResult(
        title=f"probing beams @ {n_probes} probes (conference room)",
        metric_name="best-beam SNR [dB] / mean azimuth error [deg]",
    )
    result.variants["sectors: best-beam SNR"] = float(np.mean(sector_best))
    result.variants["random beams: best-beam SNR"] = float(np.mean(random_best))
    result.variants["sectors: az error"] = float(np.mean(sector_errors))
    result.variants["random beams: az error"] = float(np.mean(random_errors))
    return result


def run_random_beam_ablation(n_probes: int = 14, seed: int = 25) -> AblationResult:
    """Tuned codebook sectors vs. pseudo-random probing beams."""
    return ScenarioRunner().run(random_beam_ablation_spec(n_probes, seed)).result


def adaptive_ablation_spec(seed: int = 26, n_steps: int = 60) -> ScenarioSpec:
    return ScenarioSpec(
        scenario="ablate-adaptive", seed=seed, params={"n_steps": int(n_steps)}
    )


@register_scenario("ablate-adaptive", default_spec=adaptive_ablation_spec)
def _run_adaptive_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> AblationResult:
    """Fixed probe budgets vs. the §7 adaptive controller under mobility.

    A lab peer holds still, walks an arc, then holds still again.  The
    adaptive controller should spend close-to-minimum probes during the
    static phases while keeping the SNR loss near the always-maximum
    budget — the airtime/quality trade §7 predicts.
    """
    from ..core.adaptive import AdaptiveProbeController
    from ..core.compressive import CompressiveSectorSelector
    from ..core.tracking import SectorTracker

    seed = spec.seed
    n_steps = int(spec.params["n_steps"])
    testbed = spec.testbed.build()
    environment = lab_environment(3.0)
    tx_ids = testbed.tx_sector_ids
    model = testbed.measurement_model
    noise_floor = testbed.budget.noise_floor_dbm

    hold = n_steps // 3

    def azimuth_at(step: int) -> float:
        if step < hold:
            return -30.0
        if step < 2 * hold:
            return -30.0 + 60.0 * (step - hold) / hold
        return 30.0

    def run_variant(adaptive, n_probes, rng):
        tracker = SectorTracker(
            CompressiveSectorSelector(testbed.pattern_table),
            n_probes=n_probes,
            adaptive=adaptive,
        )
        truth_holder = {}

        def measure(sector_ids, generator):
            truth = truth_holder["snr"]
            measurements = []
            for sector_id in sector_ids:
                observation = model.observe(
                    truth[tx_ids.index(sector_id)], noise_floor, generator
                )
                if observation is not None:
                    measurements.append(
                        ProbeMeasurement(
                            sector_id, observation.snr_db, observation.rssi_dbm
                        )
                    )
            return measurements

        losses = []
        for step in range(n_steps):
            orientation = Orientation(yaw_deg=-azimuth_at(step))
            truth_holder["snr"] = sweep_snr_matrix(
                environment,
                testbed.dut_antenna,
                testbed.dut_codebook,
                tx_ids,
                [orientation],
                testbed.ref_antenna,
                testbed.ref_codebook.rx_sector.weights,
                budget=testbed.budget,
            )[0]
            outcome = tracker.step(measure, rng)
            truth = truth_holder["snr"]
            losses.append(
                float(truth.max() - truth[tx_ids.index(outcome.result.sector_id)])
            )
        return tracker.total_training_time_us / 1000.0, float(np.mean(losses))

    result = AblationResult(
        title="adaptive probe budget under mobility",
        metric_name="training airtime [ms] / mean SNR loss [dB]",
    )
    for name, adaptive, budget in (
        ("fixed 24 probes", None, 24),
        ("fixed 10 probes", None, 10),
        ("adaptive 10..24", AdaptiveProbeController(min_probes=10, max_probes=24), 24),
    ):
        airtime_ms, loss_db = run_variant(adaptive, budget, np.random.default_rng(seed))
        result.variants[f"{name}: airtime"] = airtime_ms
        result.variants[f"{name}: loss"] = loss_db
    return result


def run_adaptive_ablation(seed: int = 26, n_steps: int = 60) -> AblationResult:
    """Fixed probe budgets vs. the §7 adaptive controller under mobility."""
    return ScenarioRunner().run(adaptive_ablation_spec(seed, n_steps)).result


def oob_prior_ablation_spec(seed: int = 27, sigma_oob_deg: float = 8.0) -> ScenarioSpec:
    return ScenarioSpec(
        scenario="ablate-oob-prior",
        seed=seed,
        params={"sigma_oob_deg": float(sigma_oob_deg)},
    )


@register_scenario("ablate-oob-prior", default_spec=oob_prior_ablation_spec)
def _run_oob_prior_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> AblationResult:
    """Out-of-band direction prior (Nitsche / Ali, §8) at tiny budgets.

    A coarse 2.4 GHz angle estimate (±``sigma_oob_deg``) weights the
    correlation map.  Plain CSS struggles below ~8 probes; the prior
    rescues exactly that regime.
    """
    from ..core.oob import OutOfBandPrior, PriorAidedEstimator

    sigma_oob_deg = float(spec.params["sigma_oob_deg"])
    testbed = spec.testbed.build()
    rng = np.random.default_rng(spec.seed)
    recordings = _conference_recordings(testbed, rng)
    estimator = PriorAidedEstimator(AngleEstimator(testbed.pattern_table))
    tx_ids = testbed.tx_sector_ids

    result = AblationResult(
        title=f"out-of-band prior (sigma {sigma_oob_deg:.0f} deg legacy estimate)",
        metric_name="mean azimuth error [deg]",
    )
    for n_probes in (4, 6, 10):
        for use_prior in (False, True):
            errors: List[float] = []
            for recording in recordings:
                prior = None
                if use_prior:
                    prior = OutOfBandPrior(
                        azimuth_deg=recording.azimuth_deg
                        + rng.normal(0.0, sigma_oob_deg),
                        sigma_deg=2.0 * sigma_oob_deg,
                    )
                for sweep in recording.sweeps:
                    measurements = random_subsweep(sweep, tx_ids, n_probes, rng)
                    if len(measurements) < 2:
                        continue
                    estimate = estimator.estimate(measurements, prior=prior)
                    errors.append(
                        abs(
                            azimuth_difference(
                                estimate.azimuth_deg, recording.azimuth_deg
                            )
                        )
                    )
            label = f"M={n_probes} {'with prior' if use_prior else 'no prior'}"
            result.variants[label] = float(np.mean(errors))
    return result


def run_oob_prior_ablation(seed: int = 27, sigma_oob_deg: float = 8.0) -> AblationResult:
    """Out-of-band direction prior (Nitsche / Ali, §8) at tiny budgets."""
    return ScenarioRunner().run(oob_prior_ablation_spec(seed, sigma_oob_deg)).result


def refinement_ablation_spec(seed: int = 28, n_iterations: int = 12) -> ScenarioSpec:
    return ScenarioSpec(
        scenario="ablate-refinement",
        seed=seed,
        params={"n_iterations": int(n_iterations)},
    )


@register_scenario("ablate-refinement", default_spec=refinement_ablation_spec)
def _run_refinement_scenario(
    spec: ScenarioSpec, runner: ScenarioRunner
) -> AblationResult:
    """BRP-style AWV refinement on top of the selected sector.

    After CSS picks a sector, a short hill-climb over 2-bit AWV tweaks
    recovers part of the gain the imperfect vendor codebook leaves on
    the table — for a fraction of a sweep's airtime.
    """
    from ..channel.link import LinkSimulator
    from ..core.compressive import CompressiveSectorSelector
    from ..core.refinement import BeamRefiner

    n_iterations = int(spec.params["n_iterations"])
    testbed = spec.testbed.build()
    rng = np.random.default_rng(spec.seed)
    environment = conference_room(6.0)
    simulator = LinkSimulator(
        environment, testbed.dut_antenna, testbed.ref_antenna, testbed.budget
    )
    refiner = BeamRefiner(candidates_per_iteration=6)
    recordings = _conference_recordings(testbed, rng, n_sweeps=2)
    selector = CompressiveSectorSelector(testbed.pattern_table)
    tx_ids = testbed.tx_sector_ids

    losses_before: List[float] = []
    losses_after: List[float] = []
    airtimes: List[float] = []
    for recording in recordings[::2]:
        orientation = Orientation(yaw_deg=-recording.azimuth_deg)

        def measure(weights):
            true_snr = simulator.true_snr_db(
                weights,
                testbed.ref_codebook.rx_sector.weights,
                tx_orientation=orientation,
            )
            return true_snr + rng.normal(0.0, 0.3)

        # Start where a 14-probe CSS sweep actually lands (sometimes a
        # dB or two off) — refinement's job is recovering that.
        measurements = random_subsweep(recording.sweeps[0], tx_ids, 14, rng)
        start_id = selector.select(measurements).sector_id
        outcome = refiner.refine(
            testbed.dut_codebook[start_id].weights, measure, rng, n_iterations
        )
        optimal = recording.optimal_snr_db()
        losses_before.append(optimal - outcome.initial_snr_db)
        losses_after.append(optimal - outcome.final_snr_db)
        airtimes.append(outcome.airtime_us)

    result = AblationResult(
        title=f"BRP refinement after CSS-14 ({n_iterations} iterations)",
        metric_name="SNR loss vs oracle [dB] / airtime [us]",
    )
    result.variants["loss before refinement"] = float(np.mean(losses_before))
    result.variants["loss after refinement"] = float(np.mean(losses_after))
    result.variants["mean airtime [us]"] = float(np.mean(airtimes))
    return result


def run_refinement_ablation(seed: int = 28, n_iterations: int = 12) -> AblationResult:
    """BRP-style AWV refinement on top of the selected sector."""
    return ScenarioRunner().run(refinement_ablation_spec(seed, n_iterations)).result
