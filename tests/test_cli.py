"""Tests for the repro-bench command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions if action.dest == "command"
        )
        assert set(subparsers.choices) == {
            "table1",
            "patterns",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "summary",
            "ablations",
            "extensions",
        }

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_and_paper_flags(self):
        args = build_parser().parse_args(["fig10", "--seed", "7", "--paper"])
        assert args.seed == 7
        assert args.paper is True


class TestCommands:
    def test_fig10_prints_headline_timing(self, capsys):
        assert main(["fig10"]) == 0
        output = capsys.readouterr().out
        assert "1.27 ms" in output
        assert "2.3x speed-up" in output

    def test_table1_prints_consistent_capture(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "consistent=True" in output
        assert "Beacon" in output and "Sweep" in output

    def test_patterns_writes_npz(self, tmp_path, capsys):
        from repro.measurement import PatternTable

        path = tmp_path / "patterns.npz"
        assert main(["patterns", str(path)]) == 0
        table = PatternTable.load(str(path))
        assert table.n_sectors == 35
        assert "saved 35 sector patterns" in capsys.readouterr().out
