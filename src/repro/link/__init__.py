"""Rate and throughput substrate: MCS ladder, adaptation, goodput."""

from .mcs import CONTROL_MCS, MCS_TABLE, Mcs, highest_mcs, select_mcs
from .per import PacketErrorModel
from .rate_adaptation import RateAdapter
from .throughput import ThroughputModel

__all__ = [
    "CONTROL_MCS",
    "MCS_TABLE",
    "Mcs",
    "highest_mcs",
    "select_mcs",
    "PacketErrorModel",
    "RateAdapter",
    "ThroughputModel",
]
