"""Unit tests for the Figure 5/6 pattern experiments (coarse configs)."""

import numpy as np
import pytest

from repro.experiments import (
    Fig5Config,
    Fig6Config,
    run_fig5,
    run_fig6,
)
from repro.phased_array import STRONG_SECTOR_IDS, WEAK_SECTOR_IDS


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5(Fig5Config(azimuth_step_deg=7.2, n_sweeps=1))


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(Fig6Config(azimuth_step_deg=9.0, elevation_step_deg=10.8, n_sweeps=1))


class TestFig5:
    def test_summaries_cover_every_sector(self, fig5_result):
        assert len(fig5_result.summaries) == 35
        assert set(fig5_result.summaries) == set(fig5_result.table.sector_ids)

    def test_summary_fields_consistent(self, fig5_result):
        for sector_id, summary in fig5_result.summaries.items():
            pattern = fig5_result.table.pattern(sector_id)[0]
            assert summary.peak_snr_db == pytest.approx(float(pattern.max()))
            assert summary.mean_snr_db <= summary.peak_snr_db
            assert summary.n_lobes >= 1

    def test_strong_sectors_summarized_strong(self, fig5_result):
        strong = [fig5_result.summaries[s].peak_snr_db for s in STRONG_SECTOR_IDS]
        weak = [fig5_result.summaries[s].peak_snr_db for s in WEAK_SECTOR_IDS]
        assert min(strong) > max(weak)

    def test_format_rows(self, fig5_result):
        rows = fig5_result.format_rows()
        assert len(rows) == 2 + 35
        assert any(row.lstrip().startswith("RX") for row in rows)


class TestFig6:
    def test_grid_envelope(self, fig6_result):
        grid = fig6_result.table.grid
        assert grid.azimuths_deg[0] == -90.0
        assert grid.elevations_deg[-1] == pytest.approx(32.4)

    def test_elevation_profile_shape(self, fig6_result):
        profile = fig6_result.elevation_profile(63)
        assert profile.shape == (fig6_result.table.grid.n_elevation,)

    def test_sector5_elevation_behaviour(self, fig6_result):
        assert fig6_result.off_plane_peak(5) > fig6_result.in_plane_peak(5)

    def test_peaks_consistent_with_pattern(self, fig6_result):
        pattern = fig6_result.table.pattern(26)
        assert fig6_result.in_plane_peak(26) == pytest.approx(float(pattern[0].max()))
        assert fig6_result.off_plane_peak(26) == pytest.approx(float(pattern[1:].max()))
