"""Tests for the WMI codec and the wil6210-style driver."""

import numpy as np
import pytest

from repro.channel import MeasurementModel
from repro.firmware import (
    QCA9500,
    PatchFramework,
    WMI_COMMAND_IDS,
    WmiClearSectorOverride,
    WmiDrainSweepReports,
    WmiError,
    WmiResetSweepState,
    WmiSetSectorOverride,
    decode_wmi,
    encode_wmi,
    sector_override_patch,
    signal_strength_extraction_patch,
)
from repro.host import Wil6210Driver


class TestWmiCodec:
    def test_roundtrip_all_commands(self):
        commands = [
            WmiResetSweepState(),
            WmiDrainSweepReports(),
            WmiSetSectorOverride(sector_id=13),
            WmiClearSectorOverride(),
        ]
        for command in commands:
            assert decode_wmi(encode_wmi(command)) == command

    def test_wire_format_header(self):
        buffer = encode_wmi(WmiSetSectorOverride(sector_id=7))
        command_id = int.from_bytes(buffer[0:2], "little")
        payload_length = int.from_bytes(buffer[2:4], "little")
        assert command_id == WMI_COMMAND_IDS[WmiSetSectorOverride]
        assert payload_length == 1
        assert buffer[4] == 7

    def test_decode_rejects_short_buffer(self):
        with pytest.raises(WmiError):
            decode_wmi(b"\x11")

    def test_decode_rejects_unknown_id(self):
        with pytest.raises(WmiError):
            decode_wmi(b"\xff\xff\x00\x00")

    def test_decode_rejects_length_mismatch(self):
        buffer = encode_wmi(WmiResetSweepState()) + b"\x00"
        with pytest.raises(WmiError):
            decode_wmi(buffer)

    def test_decode_rejects_unexpected_payload(self):
        command_id = WMI_COMMAND_IDS[WmiResetSweepState]
        buffer = command_id.to_bytes(2, "little") + (1).to_bytes(2, "little") + b"\x05"
        with pytest.raises(WmiError):
            decode_wmi(buffer)


@pytest.fixture
def patched_chip(codebook):
    chip = QCA9500(codebook, MeasurementModel.noiseless())
    framework = PatchFramework(chip)
    framework.install(signal_strength_extraction_patch())
    framework.install(sector_override_patch())
    return chip


class TestDriver:
    def test_sweep_dump(self, patched_chip, rng):
        driver = Wil6210Driver(patched_chip)
        patched_chip.start_sweep()
        patched_chip.process_ssw_frame(3, 10, 6.0, rng)
        patched_chip.process_ssw_frame(8, 9, 9.0, rng)
        reports = driver.read_sweep_dump()
        assert [report.sector_id for report in reports] == [3, 8]
        assert driver.counters.sweep_reports_read == 2
        assert driver.counters.wmi_commands_sent == 1

    def test_fixed_sector_lifecycle(self, patched_chip, rng):
        driver = Wil6210Driver(patched_chip)
        patched_chip.start_sweep()
        patched_chip.process_ssw_frame(5, 1, 8.0, rng)
        driver.set_fixed_sector(12)
        assert driver.fixed_sector == 12
        assert patched_chip.select_feedback_sector() == 12
        driver.clear_fixed_sector()
        assert driver.fixed_sector is None
        assert patched_chip.select_feedback_sector() == 5

    def test_stock_chip_rejects_via_bytes_too(self, codebook):
        stock = QCA9500(codebook, MeasurementModel.noiseless())
        driver = Wil6210Driver(stock)
        with pytest.raises(WmiError):
            driver.read_sweep_dump()
        assert driver.counters.wmi_errors == 1

    def test_reset_sweep_state(self, patched_chip, rng):
        driver = Wil6210Driver(patched_chip)
        patched_chip.start_sweep()
        patched_chip.process_ssw_frame(5, 1, 8.0, rng)
        driver.reset_sweep_state()
        assert patched_chip.current_sweep_reports() == []

    def test_dump_table_render(self, patched_chip, rng):
        driver = Wil6210Driver(patched_chip)
        patched_chip.start_sweep()
        patched_chip.process_ssw_frame(3, 10, 6.0, rng)
        rows = driver.sweep_dump_table()
        assert len(rows) == 2
        assert "sector" in rows[0]
