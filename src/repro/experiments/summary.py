"""§6.5 headline numbers: what the paper's summary claims, measured.

* 14 of 34 probing sectors suffice for SNR and stability comparable to
  the exhaustive sweep;
* mutual training time drops from 1.27 ms to 0.55 ms — a 2.3× speed-up;
* path direction is estimated within a few degrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..mac.timing import N_FULL_SWEEP_SECTORS, mutual_training_time_us, training_speedup
from .fig7 import Fig7Config, Fig7Result, run_fig7
from .fig8 import Fig8Config, Fig8Result, run_fig8
from .fig9 import Fig9Config, Fig9Result, run_fig9

__all__ = ["HeadlineNumbers", "run_summary"]


@dataclass
class HeadlineNumbers:
    """The paper's §6.5 summary, measured on the simulator."""

    css_probes: int
    training_time_ms: float
    full_sweep_time_ms: float
    speedup: float
    stability_crossover_probes: int
    snr_crossover_probes: int
    lab_azimuth_median_error_deg: float
    conference_azimuth_median_error_deg: float

    def format_rows(self) -> List[str]:
        return [
            "summary (paper §6.5 vs measured)",
            f"training time @ {self.css_probes} probes: "
            f"{self.training_time_ms:.2f} ms (paper 0.55 ms)",
            f"full sweep time: {self.full_sweep_time_ms:.2f} ms (paper 1.27 ms)",
            f"speed-up: {self.speedup:.1f}x (paper 2.3x)",
            f"stability crossover: {self.stability_crossover_probes} probes (paper ~13)",
            f"SNR-loss crossover: {self.snr_crossover_probes} probes (paper ~14)",
            f"lab az median error @ {self.css_probes} probes: "
            f"{self.lab_azimuth_median_error_deg:.1f} deg (paper ~1.3 @ 10)",
            f"conference az median error @ {self.css_probes} probes: "
            f"{self.conference_azimuth_median_error_deg:.1f} deg (paper ~2.1 @ 10)",
        ]


def run_summary(
    css_probes: int = 14,
    fig7_config: Fig7Config = Fig7Config(),
    fig8_config: Fig8Config = Fig8Config(),
    fig9_config: Fig9Config = Fig9Config(),
) -> HeadlineNumbers:
    """Measure the headline numbers from the three core experiments."""
    if css_probes not in fig7_config.probe_counts:
        raise ValueError("css_probes must be in fig7's probe counts")
    fig7 = run_fig7(fig7_config)
    fig8 = run_fig8(fig8_config)
    fig9 = run_fig9(fig9_config)
    return HeadlineNumbers(
        css_probes=css_probes,
        training_time_ms=mutual_training_time_us(css_probes) / 1000.0,
        full_sweep_time_ms=mutual_training_time_us(N_FULL_SWEEP_SECTORS) / 1000.0,
        speedup=training_speedup(css_probes),
        stability_crossover_probes=fig8.crossover_probes(),
        snr_crossover_probes=fig9.crossover_probes(),
        lab_azimuth_median_error_deg=fig7.lab.azimuth_median(css_probes),
        conference_azimuth_median_error_deg=fig7.conference.azimuth_median(css_probes),
    )
