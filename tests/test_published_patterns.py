"""Tests for the shipped canonical pattern data set."""

import numpy as np
import pytest

from repro.core import CompressiveSectorSelector, ProbeMeasurement
from repro.measurement import load_published_patterns
from repro.phased_array import TALON_TX_SECTOR_IDS


@pytest.fixture(scope="module")
def published():
    return load_published_patterns()


class TestPublishedPatterns:
    def test_covers_all_35_sectors(self, published):
        assert published.n_sectors == 35
        assert set(published.sector_ids) == set(TALON_TX_SECTOR_IDS) | {0}

    def test_figure6_resolution(self, published):
        grid = published.grid
        assert grid.azimuths_deg[0] == -90.0
        assert grid.azimuths_deg[-1] == 90.0
        assert np.diff(grid.azimuths_deg)[0] == pytest.approx(1.8)
        assert grid.elevations_deg[-1] == pytest.approx(32.4)
        assert np.diff(grid.elevations_deg)[0] == pytest.approx(3.6)

    def test_values_in_reporting_window(self, published):
        for sector_id in published.sector_ids:
            pattern = published.pattern(sector_id)
            assert np.isfinite(pattern).all()
            assert pattern.min() >= -7.0 - 1e-9
            assert pattern.max() <= 12.0 + 1e-9

    def test_loads_identically_twice(self, published):
        again = load_published_patterns()
        for sector_id in published.sector_ids:
            np.testing.assert_array_equal(
                published.pattern(sector_id), again.pattern(sector_id)
            )

    def test_matches_canonical_device(self, published):
        """The shipped table must describe ``PhasedArray.talon()``.

        A coarse re-measurement of the canonical device has to rank
        sectors consistently with the shipped table at boresight.
        """
        from repro.phased_array import PhasedArray, talon_codebook

        antenna = PhasedArray.talon()
        codebook = talon_codebook(antenna)
        shipped_best = published.best_sector(0.0, 0.0, codebook.tx_sector_ids)
        true_gains = {
            s: antenna.gain_db(codebook[s].weights, 0.0, 0.0)
            for s in codebook.tx_sector_ids
        }
        ranking = sorted(true_gains, key=true_gains.get, reverse=True)
        assert shipped_best in ranking[:3]

    def test_usable_by_selector_out_of_the_box(self, published):
        selector = CompressiveSectorSelector(published)
        sector_ids = selector.candidate_sector_ids[:14]
        measurements = [
            ProbeMeasurement(
                s,
                float(published.gain(s, 15.0, 4.0)),
                float(published.gain(s, 15.0, 4.0)) - 71.5,
            )
            for s in sector_ids
        ]
        result = selector.select(measurements)
        assert result.estimate is not None
        assert abs(result.estimate.azimuth_deg - 15.0) < 8.0
