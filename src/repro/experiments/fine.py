"""Extension experiment: more sectors without more probes (§7).

"With our approach we could significantly increase the number of
available sectors while keeping the number of probes as low as in the
current sweep.  As a result, more precise beam patterns could be
efficiently selected without adding additional training time
overhead."

The experiment equips the device with a 63-sector fine codebook (the
SSW field's 6-bit maximum), measures its patterns in the chamber, and
compares in the conference room:

* stock codebook + full sweep (34 probes, 1.27 ms),
* fine codebook + full sweep (63 probes, 2.32 ms — the §7 problem),
* fine codebook + CSS with 14 probes (0.55 ms — the §7 solution).

Metric: true SNR delivered by the selected sector, and the training
time paid for it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List

import numpy as np

from ..channel.batch import sweep_snr_matrix
from ..channel.environment import conference_room
from ..core.compressive import CompressiveSectorSelector
from ..core.measurements import ProbeMeasurement
from ..core.probes import FixedProbeStrategy, RandomProbeStrategy
from ..core.selector import SectorSweepSelector
from ..geometry.rotation import Orientation
from ..mac.timing import mutual_training_time_us
from ..measurement.campaign import CampaignConfig, PatternMeasurementCampaign
from ..phased_array.talon import fine_codebook, probing_sector_ids
from ..runtime.registry import register_scenario
from ..runtime.runner import ScenarioRunner
from ..runtime.spec import ScenarioSpec
from .common import Testbed, build_testbed

__all__ = ["FineCodebookConfig", "FineCodebookResult", "run_fine_codebook", "fine_spec"]


@dataclass(frozen=True)
class FineCodebookConfig:
    seed: int = 19
    n_probes: int = 14
    azimuths_deg: tuple = tuple(np.arange(-60.0, 61.0, 7.5))
    n_sweeps: int = 8


@dataclass
class FineCodebookResult:
    mean_snr_db: Dict[str, float]
    training_time_ms: Dict[str, float]
    optimal_stock_db: float
    optimal_fine_db: float

    def format_rows(self) -> List[str]:
        rows = [
            "fine codebook (extension): more sectors, same probes (§7)",
            f"oracle: stock codebook {self.optimal_stock_db:.2f} dB, "
            f"fine codebook {self.optimal_fine_db:.2f} dB",
            "strategy                    | mean SNR [dB] | training [ms]",
        ]
        for name in self.mean_snr_db:
            rows.append(
                f"{name:27s} | {self.mean_snr_db[name]:13.2f} | "
                f"{self.training_time_ms[name]:12.3f}"
            )
        return rows


def fine_spec(config: FineCodebookConfig = FineCodebookConfig()) -> ScenarioSpec:
    """The declarative form of a fine-codebook run."""
    params = {key: value for key, value in asdict(config).items() if key != "seed"}
    params["azimuths_deg"] = [float(az) for az in params["azimuths_deg"]]
    return ScenarioSpec(scenario="fine", seed=config.seed, params=params)


def _config_from_spec(spec: ScenarioSpec) -> FineCodebookConfig:
    params = dict(spec.params)
    params["azimuths_deg"] = tuple(params["azimuths_deg"])
    return FineCodebookConfig(seed=spec.seed, **params)


@register_scenario("fine", default_spec=fine_spec)
def _run_fine_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> FineCodebookResult:
    """Fine codebook (§7): more sectors under sweep vs. compressive training.

    The draws interleave with per-frame ``observe`` calls across three
    strategies, so the trial loop stays scalar; the scenario wrapper
    adds the manifest and the CLI entry point.
    """
    config = _config_from_spec(spec)
    testbed = spec.testbed.build()
    rng = np.random.default_rng(config.seed)

    fine = fine_codebook(testbed.dut_antenna)
    fine_ids = fine.tx_sector_ids

    # Chamber campaign for the fine codebook (the stock table is in the
    # testbed already).  Same resolution as the testbed's table.
    campaign = PatternMeasurementCampaign(
        testbed.dut_antenna,
        fine,
        reference_antenna=testbed.ref_antenna,
        reference_codebook=testbed.ref_codebook,
        measurement_model=testbed.measurement_model,
    )
    grid = testbed.pattern_table.grid
    fine_table = campaign.run(
        CampaignConfig(
            azimuths_deg=grid.azimuths_deg, elevations_deg=grid.elevations_deg, n_sweeps=3
        ),
        rng,
    )

    environment = conference_room(6.0)
    orientations = [Orientation(yaw_deg=-float(az)) for az in config.azimuths_deg]
    stock_truth = sweep_snr_matrix(
        environment,
        testbed.dut_antenna,
        testbed.dut_codebook,
        testbed.tx_sector_ids,
        orientations,
        testbed.ref_antenna,
        testbed.ref_codebook.rx_sector.weights,
        budget=testbed.budget,
    )
    fine_truth = sweep_snr_matrix(
        environment,
        testbed.dut_antenna,
        fine,
        fine_ids,
        orientations,
        testbed.ref_antenna,
        testbed.ref_codebook.rx_sector.weights,
        budget=testbed.budget,
    )

    def observe(truth_row, sector_ids, all_ids):
        measurements = []
        for sector_id in sector_ids:
            observation = testbed.measurement_model.observe(
                truth_row[all_ids.index(sector_id)], testbed.budget.noise_floor_dbm, rng
            )
            if observation is not None:
                measurements.append(
                    ProbeMeasurement(sector_id, observation.snr_db, observation.rssi_dbm)
                )
        return measurements

    # CSS probes the codebook's dedicated broad probing sectors and
    # selects among *all* 63 (the paper's N >> M).
    probe_pool = probing_sector_ids(fine)
    strategy = FixedProbeStrategy(probe_pool)
    n_probes = min(config.n_probes, len(probe_pool))
    snr_sink: Dict[str, List[float]] = {
        "stock + SSW (34 probes)": [],
        "fine + SSW (63 probes)": [],
        f"fine + CSS ({config.n_probes} probes)": [],
    }
    stock_ssw = SectorSweepSelector()
    fine_ssw = SectorSweepSelector()
    fine_css = CompressiveSectorSelector(fine_table)

    for row_index in range(len(orientations)):
        for _ in range(config.n_sweeps):
            stock_row = stock_truth[row_index]
            fine_row = fine_truth[row_index]

            chosen = stock_ssw.select(
                observe(stock_row, testbed.tx_sector_ids, testbed.tx_sector_ids)
            ).sector_id
            snr_sink["stock + SSW (34 probes)"].append(
                float(stock_row[testbed.tx_sector_ids.index(chosen)])
            )

            chosen = fine_ssw.select(observe(fine_row, fine_ids, fine_ids)).sector_id
            snr_sink["fine + SSW (63 probes)"].append(
                float(fine_row[fine_ids.index(chosen)])
            )

            probe_ids = strategy.choose(n_probes, fine_ids, rng)
            chosen = fine_css.select(observe(fine_row, probe_ids, fine_ids)).sector_id
            snr_sink[f"fine + CSS ({config.n_probes} probes)"].append(
                float(fine_row[fine_ids.index(chosen)])
            )

    return FineCodebookResult(
        mean_snr_db={name: float(np.mean(values)) for name, values in snr_sink.items()},
        training_time_ms={
            "stock + SSW (34 probes)": mutual_training_time_us(34) / 1000.0,
            "fine + SSW (63 probes)": mutual_training_time_us(63) / 1000.0,
            f"fine + CSS ({config.n_probes} probes)": mutual_training_time_us(
                config.n_probes
            )
            / 1000.0,
        },
        optimal_stock_db=float(np.mean(stock_truth.max(axis=1))),
        optimal_fine_db=float(np.mean(fine_truth.max(axis=1))),
    )


def run_fine_codebook(config: FineCodebookConfig = FineCodebookConfig()) -> FineCodebookResult:
    """Compare stock/fine codebooks under sweep and compressive training."""
    return ScenarioRunner().run(fine_spec(config)).result
