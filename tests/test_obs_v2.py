"""Deep observability v2 (DESIGN.md §15): continuous profiling,
estimation-quality telemetry, run-diff regression attribution.

The contracts under test:

* **Profiling is additive** — the sampling profiler changes no result,
  survives drain/merge across worker payloads, and its collapsed-stack
  export round-trips with a valid ``repro-profile`` header.
* **Quality telemetry is free when off and deterministic when on** —
  a ``quality=True`` run's records are bit-identical to an
  untelemetered run's, and the labeled histograms a ``jobs=4`` run
  folds together equal the ``jobs=1`` run's exactly (counts *and*
  sums).
* **Rotation never tears the format** — every segment a
  :class:`RotatingTraceWriter` produces independently satisfies the
  ``repro-trace`` header contract.
* **Attribution is deterministic** — ``repro-bench diff`` over two
  committed BENCH points (or two manifests) produces the same ranked
  report every time, and localizes the first divergent pipeline stage.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro import obs
from repro.cli import build_parser, main as cli_main
from repro.obs import profile as profile_mod
from repro.obs import quality as quality_mod
from repro.obs.diff import diff_targets, format_diff_rows, load_diff_target
from repro.obs.profile import (
    StackSampler,
    hotspots,
    profile_summary,
    write_collapsed,
)
from repro.obs.quality import QualityContext, subset_diagnostics
from repro.obs.report import load_report_target
from repro.obs.trace import RotatingTraceWriter, read_trace_jsonl
from repro.perf import (
    PROFILE_OVERHEAD_LIMIT_PCT,
    PerfPoint,
    _canonical_environment,
    append_point,
    check_against_baseline,
    load_trajectory,
)
from repro.runtime import PolicySpec, ScenarioRunner, ScenarioSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH = REPO_ROOT / "BENCH_core.json"


@pytest.fixture(autouse=True)
def _no_profiler_leak():
    """A test that arms the global sampler must never leak its itimer."""
    yield
    if profile_mod.active_sampler() is not None:
        profile_mod.stop_profiling()


def _small_spec(n_sweeps: int = 3) -> ScenarioSpec:
    return ScenarioSpec(
        scenario="policy-eval",
        seed=2017,
        policies=(
            PolicySpec("css", {"n_probes": 14}),
            PolicySpec("full-sweep", {}),
        ),
        params={
            "azimuth_step_deg": 30.0,
            "distance_m": 6.0,
            "n_sweeps": n_sweeps,
        },
    )


def _designed_spec() -> ScenarioSpec:
    return ScenarioSpec(
        scenario="policy-eval",
        seed=2017,
        policies=(
            PolicySpec(
                "css",
                {"n_probes": 14},
                probe_design={"designer": "coherence-min"},
            ),
        ),
        params={"azimuth_step_deg": 30.0, "distance_m": 6.0, "n_sweeps": 2},
    )


def _result_signature(outcome):
    return repr(outcome.result.rows)


def _burn_cpu(seconds: float = 0.15):
    """Accumulate CPU time so the ITIMER_PROF-driven sampler fires."""
    deadline = time.process_time() + seconds
    values = np.random.default_rng(0).normal(size=256)
    while time.process_time() < deadline:
        values = np.sort(values * 1.0001)


def _quality_histograms(session):
    return {
        key: histogram
        for key, histogram in session.metrics.snapshot()["histograms"].items()
        if key.startswith("quality_")
    }


# ----------------------------------------------------------------------
# Sampling profiler.
# ----------------------------------------------------------------------


class TestStackSampler:
    def test_busy_cpu_produces_samples_that_sum_across_stacks(self):
        sampler = StackSampler(interval_s=0.002)
        sampler.start()
        try:
            _burn_cpu()
        finally:
            sampler.stop()
        assert sampler.samples > 5
        snapshot = sampler.snapshot()
        assert sum(snapshot["stacks"].values()) == snapshot["samples"]
        # Collapsed keys are frame labels joined by ';'.
        assert all(";" in key or key for key in snapshot["stacks"])

    def test_drain_resets_and_merge_accumulates(self):
        sampler = StackSampler()
        sampler.merge({"samples": 3, "stacks": {"a;b": 2, "a;c": 1}})
        drained = sampler.drain()
        assert drained == {"samples": 3, "stacks": {"a;b": 2, "a;c": 1}}
        assert sampler.samples == 0 and sampler.drain()["stacks"] == {}
        sampler.merge(drained)
        sampler.merge({"samples": 1, "stacks": {"a;b": 1}})
        assert sampler.snapshot()["stacks"]["a;b"] == 3
        # snapshot() does not reset.
        assert sampler.samples == 4

    def test_hotspots_rank_leaf_self_time_deterministically(self):
        profile = {
            "samples": 10,
            "stacks": {"main;hot": 6, "main;warm;hot": 2, "main;cold": 2},
        }
        ranked = hotspots(profile, top=2)
        assert ranked[0]["function"] == "hot"
        assert ranked[0]["self"] == 8 and ranked[0]["self_pct"] == 80.0
        assert hotspots(profile, top=2) == ranked  # pure function
        summary = profile_summary(profile, top=1)
        assert summary["samples"] == 10
        assert [entry["function"] for entry in summary["hotspots"]] == ["hot"]

    def test_write_collapsed_emits_header_then_sorted_stacks(self, tmp_path):
        path = tmp_path / "p.collapsed"
        n_stacks, n_samples = write_collapsed(
            path,
            {"samples": 5, "stacks": {"b;y": 2, "a;x": 3}},
            header={"scenario": "policy-eval", "seed": 7},
        )
        assert (n_stacks, n_samples) == (2, 5)
        lines = path.read_text().splitlines()
        assert lines[0] == "# format: repro-profile v1"
        assert "# scenario: policy-eval" in lines and "# seed: 7" in lines
        stacks = [line for line in lines if not line.startswith("#")]
        assert stacks == ["a;x 3", "b;y 2"]

    def test_module_singleton_is_idempotent_and_stoppable(self):
        first = profile_mod.start_profiling()
        assert profile_mod.start_profiling() is first
        assert profile_mod.active_sampler() is first
        _burn_cpu(0.05)
        snapshot = profile_mod.stop_profiling()
        assert profile_mod.active_sampler() is None
        assert snapshot["samples"] == sum(snapshot["stacks"].values())

    def test_session_payloads_carry_profile_home(self):
        """The worker-drain path: a sampling child ships its aggregate
        inside the same payload as its trace events and counters."""
        profile_mod.start_profiling()
        try:
            _burn_cpu(0.1)
            worker = obs.ObsSession()
            payload = worker.drain_payload()
            assert payload["profile"]["samples"] > 0
            supervisor_side = profile_mod.drain_profile()
            assert supervisor_side is not None
            home = obs.ObsSession()
            home.absorb_payload(payload, parent_id=None, prefix="c0b0")
            merged = profile_mod.active_sampler().snapshot()
            assert merged["samples"] == payload["profile"]["samples"]
        finally:
            profile_mod.stop_profiling()

    def test_untelemetered_payload_has_no_profile_key(self):
        session = obs.ObsSession()
        assert "profile" not in session.drain_payload()


# ----------------------------------------------------------------------
# Quality telemetry primitives.
# ----------------------------------------------------------------------


class TestQualityPrimitives:
    def test_context_round_trips_through_meta(self):
        context = QualityContext(policy="css", environment="lab")
        clone = QualityContext.from_meta(context.to_meta())
        assert (clone.policy, clone.environment) == ("css", "lab")
        labels = context.labels(m=14)
        assert labels == {"policy": "css", "environment": "lab", "m": "14"}

    def test_subset_diagnostics_on_known_geometries(self):
        eye = np.eye(3)
        diagnostics = subset_diagnostics(eye)
        assert diagnostics["coherence"] == pytest.approx(0.0)
        assert diagnostics["condition"] == pytest.approx(1.0)
        repeated = np.vstack([eye[0], eye[0]])
        degenerate = subset_diagnostics(repeated)
        assert degenerate["coherence"] == pytest.approx(1.0)
        assert degenerate["condition"] == np.inf
        assert subset_diagnostics(eye[:1]) == {"coherence": 0.0, "condition": 1.0}

    def test_recorders_are_inert_without_session_or_context(self):
        # No active session, no quality context: must not raise, must
        # not create any global state.
        quality_mod.record_peak_ratio(np.array([3.0, 1.0]), 0, 8)
        quality_mod.record_selection_margin(np.array([10.0, 7.0]), 8)
        session = obs.ObsSession()
        previous = obs.activate(session)
        try:
            # Session active but no quality context -> still inert.
            quality_mod.record_peak_ratio(np.array([3.0, 1.0]), 0, 8)
            assert _quality_histograms(session) == {}
        finally:
            obs.deactivate(previous)

    def test_recorders_observe_labeled_histograms(self):
        session = obs.ObsSession()
        previous = obs.activate(session)
        token = quality_mod.activate_quality(
            QualityContext(policy="css", environment="lab")
        )
        try:
            quality_mod.record_peak_ratio(np.array([1.0, 6.0, 3.0]), 1, 8)
            quality_mod.record_selection_margin(np.array([4.0, 10.0, 7.0]), 8)
        finally:
            quality_mod.deactivate_quality(token)
            obs.deactivate(previous)
        histograms = _quality_histograms(session)
        peak_key = 'quality_peak_ratio{environment="lab",m="8",policy="css"}'
        margin_key = 'quality_selection_margin_db{environment="lab",m="8",policy="css"}'
        assert histograms[peak_key]["sum"] == pytest.approx(2.0)  # 6/3
        assert histograms[margin_key]["sum"] == pytest.approx(3.0)  # 10-7


# ----------------------------------------------------------------------
# Quality telemetry through real runs.
# ----------------------------------------------------------------------


class TestQualityRuns:
    @pytest.fixture(scope="class")
    def untelemetered(self):
        with ScenarioRunner() as runner:
            return runner.run(_small_spec())

    @pytest.fixture(scope="class")
    def quality_jobs1(self):
        session = obs.ObsSession(quality=True)
        with ScenarioRunner(obs=session) as runner:
            outcome = runner.run(_small_spec())
        return outcome, session

    @pytest.fixture(scope="class")
    def quality_jobs4(self):
        session = obs.ObsSession(quality=True)
        with ScenarioRunner(jobs=4, obs=session) as runner:
            outcome = runner.run(_small_spec())
        return outcome, session

    def test_quality_never_touches_results(self, untelemetered, quality_jobs1):
        outcome, _ = quality_jobs1
        assert _result_signature(outcome) == _result_signature(untelemetered)
        assert outcome.manifest.health == untelemetered.manifest.health

    def test_quality_histograms_carry_policy_environment_m_labels(
        self, quality_jobs1
    ):
        _, session = quality_jobs1
        histograms = _quality_histograms(session)
        assert histograms, "quality run produced no quality series"
        families = {key.split("{")[0] for key in histograms}
        assert "quality_peak_ratio" in families
        assert "quality_selection_margin_db" in families
        for key in histograms:
            assert 'environment="policy-eval"' in key
            assert 'm="' in key and 'policy="' in key

    def test_plain_session_records_no_quality_series(self):
        session = obs.ObsSession()  # quality defaults to off
        with ScenarioRunner(obs=session) as runner:
            runner.run(_small_spec())
        assert _quality_histograms(session) == {}

    def test_jobs4_quality_series_equal_jobs1_exactly(
        self, quality_jobs1, quality_jobs4
    ):
        assert _result_signature(quality_jobs4[0]) == _result_signature(
            quality_jobs1[0]
        )
        assert _quality_histograms(quality_jobs4[1]) == _quality_histograms(
            quality_jobs1[1]
        )

    def test_designed_policy_reports_designer_diagnostics(self):
        sessions = {}
        for jobs in (1, 4):
            session = obs.ObsSession(quality=True)
            with ScenarioRunner(jobs=jobs, obs=session) as runner:
                runner.run(_designed_spec())
            sessions[jobs] = _quality_histograms(session)
        families = {key.split("{")[0] for key in sessions[1]}
        assert "quality_design_coherence" in families
        assert "quality_design_condition" in families
        coherence_keys = [
            key for key in sessions[1] if key.startswith("quality_design_coherence")
        ]
        assert all('designer="coherence-min"' in key for key in coherence_keys)
        # Designer diagnostics are recorded by the supervisor's policy
        # build and by block evaluation under the shipped context, so
        # the fan-out must not change the counts.
        assert sessions[4] == sessions[1]


# ----------------------------------------------------------------------
# Rotating trace sink.
# ----------------------------------------------------------------------


class TestRotatingTraceWriter:
    def test_rejects_an_unusable_cap(self, tmp_path):
        with pytest.raises(ValueError):
            RotatingTraceWriter(tmp_path / "t.jsonl", max_bytes=100)

    def test_every_segment_satisfies_the_header_contract(self, tmp_path):
        writer = RotatingTraceWriter(
            tmp_path / "svc.jsonl", header={"service": "test"}, max_bytes=1024
        )
        batch = [
            {"type": "event", "name": "tick", "attrs": {"n": index}}
            for index in range(8)
        ]
        for run_index in range(6):
            writer.write(batch, run=f"r{run_index}")
        writer.close()
        segments = writer.segments
        assert len(segments) >= 2, "cap never forced a rotation"
        runs_seen = set()
        for index, segment in enumerate(segments):
            header, events = read_trace_jsonl(segment)
            assert header["format"] == "repro-trace"
            assert header["service"] == "test"
            assert header["segment"] == index
            runs_seen.update(event["run"] for event in events)
        assert runs_seen == {f"r{index}" for index in range(6)}

    def test_batches_never_split_across_segments(self, tmp_path):
        writer = RotatingTraceWriter(tmp_path / "t.jsonl", max_bytes=1024)
        batch = [{"type": "event", "name": "tick", "attrs": {}} for _ in range(8)]
        for run_index in range(4):
            writer.write(batch, run=f"r{run_index}")
        writer.close()
        for segment in writer.segments:
            _, events = read_trace_jsonl(segment)
            by_run = {}
            for event in events:
                by_run.setdefault(event["run"], 0)
                by_run[event["run"]] += 1
            assert all(count == len(batch) for count in by_run.values())

    def test_report_reads_rotated_segments_and_refuses_torn_ones(
        self, tmp_path, capsys
    ):
        session = obs.ObsSession()
        with ScenarioRunner(obs=session) as runner:
            runner.run(_small_spec())
        writer = RotatingTraceWriter(tmp_path / "rot.jsonl", max_bytes=1024)
        events = list(session.tracer.events)
        writer.write(events[: len(events) // 2])
        writer.write(events[len(events) // 2 :])
        writer.close()
        segments = writer.segments
        assert len(segments) >= 2
        for segment in segments:
            assert cli_main(["report", str(segment)]) == 0
            assert "per-stage latency breakdown" in capsys.readouterr().out
        # Tear the newest segment mid-record: the reader must refuse it
        # loudly instead of reporting from half a file.
        torn = segments[-1]
        torn.write_bytes(torn.read_bytes()[:-20])
        assert cli_main(["report", str(torn)]) == 2
        assert "neither a trace nor a manifest" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Run-diff regression attribution.
# ----------------------------------------------------------------------


class TestDiff:
    def test_bench_selector_grammar(self):
        by_label = load_diff_target(f"{BENCH}#fused-sharded")
        assert by_label["kind"] == "bench"
        assert by_label["identity"]["label"] == "fused-sharded"
        by_index = load_diff_target(f"{BENCH}#5")
        assert by_index["metrics"] == by_label["metrics"]
        committed = json.loads(BENCH.read_text())["points"]
        last = load_diff_target(str(BENCH))
        assert last["identity"]["label"] == committed[-1]["label"]
        with pytest.raises(ValueError, match="no BENCH point labeled"):
            load_diff_target(f"{BENCH}#never-committed")

    def test_committed_bench_points_diff_deterministically(self):
        before = load_diff_target(f"{BENCH}#fused-sharded")
        after = load_diff_target(f"{BENCH}#probe-designer")
        first = format_diff_rows(diff_targets(before, after))
        second = format_diff_rows(diff_targets(before, after))
        assert first == second
        text = "\n".join(first)
        assert first[0].startswith("diff: regression attribution")
        # The designer stage introduced a brand-new throughput metric.
        assert "probe_design_per_s" in text and "new" in text

    def test_identical_targets_report_nothing_above_the_floor(self):
        point = load_diff_target(f"{BENCH}#baseline")
        rows = format_diff_rows(diff_targets(point, point))
        assert any("no differences above the noise floor" in row for row in rows)

    def test_absurd_noise_floor_silences_every_metric(self):
        before = load_diff_target(f"{BENCH}#fused-sharded")
        after = load_diff_target(f"{BENCH}#probe-designer")
        diff = diff_targets(before, after, noise_pct=1e9)
        # "new" metrics stay visible (they have no percentage to
        # compare), but every measured-on-both-sides drift is silenced.
        for row in diff["metrics"]:
            if row["significant"]:
                assert row["before"] is None or row["after"] is None

    def test_manifest_diff_localizes_the_first_divergent_stage(self, tmp_path):
        paths = {}
        for name, sweeps in (("a", 2), ("b", 6)):
            session = obs.ObsSession()
            with ScenarioRunner(obs=session) as runner:
                outcome = runner.run(_small_spec(n_sweeps=sweeps))
            paths[name] = tmp_path / f"{name}.json"
            outcome.manifest.save(paths[name])
        diff = diff_targets(
            load_diff_target(str(paths["a"])),
            load_diff_target(str(paths["b"])),
            noise_pct=0.0,
        )
        assert diff["stages"], "traced manifests must yield stage rows"
        divergent = diff["first_divergent_stage"]
        assert divergent is not None
        # More sweeps means more blocks: the span-count change makes the
        # divergence structural, not a timing accident.
        stage = next(row for row in diff["stages"] if row["stage"] == divergent)
        assert stage["significant"]

    def test_cli_diff_surface(self, tmp_path, capsys):
        assert (
            cli_main(["diff", f"{BENCH}#fused-sharded", f"{BENCH}#probe-designer"])
            == 0
        )
        out = capsys.readouterr().out
        assert "diff: regression attribution" in out
        assert cli_main(["diff", str(tmp_path / "missing.json"), str(BENCH)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_parser_surfaces(self):
        parser = build_parser()
        args = parser.parse_args(["diff", "a.json", "b.json", "--top", "3"])
        assert args.target_a == "a.json" and args.top == 3
        args = parser.parse_args(
            ["serve", "--trace", "t.jsonl", "--trace-max-mb", "8",
             "--profile", "p.collapsed"]
        )
        assert args.trace == "t.jsonl" and args.trace_max_mb == 8.0
        assert args.profile == "p.collapsed"
        args = parser.parse_args(
            ["run", "fig7", "--profile-sampling", "p.collapsed", "--quality"]
        )
        assert args.profile_sampling == "p.collapsed" and args.quality


# ----------------------------------------------------------------------
# Perf gate + trajectory hygiene.
# ----------------------------------------------------------------------


class TestPerfTrajectoryHygiene:
    def test_canonical_environment_converts_only_clean_integers(self):
        canonical = _canonical_environment(
            {"cpu_count": "1", "python": "3.11.9", "n": -3, "flag": "x86_64"}
        )
        assert canonical == {
            "cpu_count": 1,
            "python": "3.11.9",
            "n": -3,
            "flag": "x86_64",
        }

    def test_append_point_migrates_historical_points(self, tmp_path):
        path = tmp_path / "bench.json"
        legacy = PerfPoint(
            label="old", timestamp="t0", metrics={},
            environment={"cpu_count": "1"},
        )
        data = {"schema": 1, "points": [legacy.to_json()]}
        path.write_text(json.dumps(data))
        fresh = PerfPoint(
            label="new", timestamp="t1", metrics={},
            environment={"cpu_count": 4},
        )
        append_point(path, fresh)
        saved = json.loads(path.read_text())
        assert [p["environment"]["cpu_count"] for p in saved["points"]] == [1, 4]

    def test_committed_trajectory_is_already_canonical(self):
        data = load_trajectory(BENCH)
        for point in data["points"]:
            assert isinstance(point["environment"]["cpu_count"], int)

    def test_profile_overhead_gate_widens_by_observed_noise(self):
        data = {"points": [{"label": "baseline", "metrics": {}}]}
        over = {
            "runner_profile_overhead_pct": PROFILE_OVERHEAD_LIMIT_PCT + 4.0,
            "runner_profile_noise_pct": 2.0,
        }
        failures = check_against_baseline(data, over)
        assert any("runner_profile_overhead_pct" in line for line in failures)
        within_noise = {
            "runner_profile_overhead_pct": PROFILE_OVERHEAD_LIMIT_PCT + 4.0,
            "runner_profile_noise_pct": 10.0,
        }
        assert check_against_baseline(data, within_noise) == []


# ----------------------------------------------------------------------
# Service plane: gauges, rotating trace sink, manifest reporting.
# ----------------------------------------------------------------------


class _ServiceHarness:
    """One in-process service on a background event loop + thread."""

    def __init__(self, config):
        import asyncio
        import threading

        from repro.service.server import SelectionService

        self.loop = asyncio.new_event_loop()
        self.service = SelectionService(config)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        import asyncio

        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._ready.set()
        self.loop.run_forever()

    def start(self):
        from repro.service.client import ServiceClient

        self._thread.start()
        assert self._ready.wait(15), "service failed to start"
        self.client = ServiceClient(port=self.service.port)
        return self

    def stop(self):
        import asyncio

        if getattr(self, "_stopped", False):
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop)
        future.result(20)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()


@pytest.fixture()
def traced_service(tmp_path):
    from repro.service.server import ServiceConfig

    harness = _ServiceHarness(
        ServiceConfig(
            port=0,
            workers=1,
            checkpoint_dir=str(tmp_path / "journals"),
            trace_path=str(tmp_path / "svc-trace.jsonl"),
            # Below the writer's 1 KiB floor: every run batch exceeds
            # the cap, so the second run must land in a new segment.
            trace_max_mb=0.0,
        )
    ).start()
    yield harness
    harness.stop()


def _service_spec(seed: int = 2017) -> ScenarioSpec:
    return ScenarioSpec(
        scenario="policy-eval",
        seed=seed,
        policies=(PolicySpec("css", {"n_probes": 14}),),
        params={"azimuth_step_deg": 30.0, "distance_m": 6.0, "n_sweeps": 2},
    )


class TestServiceObservability:
    def test_gauges_trace_and_manifest_report(self, traced_service, tmp_path):
        harness = traced_service
        runs = []
        for seed in (2017, 2018):
            accepted = harness.client.submit(_service_spec(seed).to_json())
            final = harness.client.wait(accepted["run"])
            assert final["status"] == "done"
            runs.append(accepted["run"])

        # -- satellite: service-plane gauges on /metrics ----------------
        text = harness.client.metrics()
        assert "service_shm_segments" in text
        assert "service_registry_journal_bytes" in text
        assert "service_registry_events" in text
        assert "service_history_occupancy 2" in text

        # -- satellite: report loads a service-produced manifest --------
        detail = harness.client.status(runs[0])
        manifest_path = tmp_path / "svc-manifest.json"
        manifest_path.write_text(json.dumps(detail["manifest"]))
        payload = load_report_target(manifest_path)
        assert payload["source"] == "manifest"
        assert payload["rollup"]["spans"]["execute.block"]["count"] > 0
        assert cli_main(["report", str(manifest_path)]) == 0

        # -- rotating sink: every segment stays a valid trace -----------
        harness.stop()  # flush + close the writer before reading
        writer_segments = [
            path
            for path in sorted(tmp_path.glob("svc-trace*.jsonl"))
        ]
        assert len(writer_segments) >= 2, "tiny cap never rotated"
        stamped_runs = set()
        for segment in writer_segments:
            header, events = read_trace_jsonl(segment)
            assert header["format"] == "repro-trace"
            assert header["service"] == "repro-selection-service"
            stamped_runs.update(
                event["run"] for event in events if "run" in event
            )
        assert stamped_runs == set(runs)
        # Calling stop() twice must stay idempotent for the fixture.


# ----------------------------------------------------------------------
# CLI profiling + quality surface.
# ----------------------------------------------------------------------


class TestCliObsV2:
    def test_run_profile_sampling_writes_a_collapsed_export(
        self, tmp_path, capsys
    ):
        collapsed = tmp_path / "run.collapsed"
        assert (
            cli_main(
                ["run", "policy-eval", "--profile-sampling", str(collapsed)]
            )
            == 0
        )
        assert "wrote sampled profile" in capsys.readouterr().out
        lines = collapsed.read_text().splitlines()
        assert lines[0] == "# format: repro-profile v1"
        assert "# scenario: policy-eval" in lines
        assert profile_mod.active_sampler() is None, "itimer leaked past the run"

    def test_run_quality_embeds_quality_series_in_the_manifest(
        self, tmp_path, capsys
    ):
        manifest_path = tmp_path / "m.json"
        assert (
            cli_main(
                ["run", "policy-eval", "--quality", "--manifest",
                 str(manifest_path)]
            )
            == 0
        )
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text())
        histograms = manifest["observability"]["metrics"]["histograms"]
        assert any(key.startswith("quality_peak_ratio") for key in histograms)

    def test_profiled_manifest_embeds_the_hotspot_summary(self, tmp_path, capsys):
        collapsed = tmp_path / "p.collapsed"
        manifest_path = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        assert (
            cli_main(
                ["run", "policy-eval", "--trace", str(trace),
                 "--profile-sampling", str(collapsed),
                 "--manifest", str(manifest_path)]
            )
            == 0
        )
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text())
        profile = manifest["observability"].get("profile")
        assert profile is not None and "hotspots" in profile
        # The report renders the embedded summary when samples landed.
        assert cli_main(["report", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        if profile["samples"]:
            assert "profile hotspots" in out
