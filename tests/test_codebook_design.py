"""Tests for the coverage-driven codebook designer."""

import numpy as np
import pytest

from repro.geometry import AngularGrid
from repro.phased_array import (
    PhasedArray,
    coverage_curve,
    design_codebook,
)


@pytest.fixture(scope="module")
def antenna():
    return PhasedArray.talon(np.random.default_rng(51))


class TestDesignCodebook:
    def test_produces_requested_size(self, antenna):
        report = design_codebook(antenna, 12)
        assert report.codebook.n_tx_sectors == 12
        assert report.codebook.rx_sector_id == 0

    def test_sector_ids_sequential(self, antenna):
        report = design_codebook(antenna, 8)
        assert report.codebook.tx_sector_ids == list(range(1, 9))

    def test_coverage_stats_consistent(self, antenna):
        report = design_codebook(antenna, 10)
        assert report.mean_coverage_db == pytest.approx(float(report.coverage_db.mean()))
        assert report.worst_coverage_db == pytest.approx(float(report.coverage_db.min()))
        assert report.mean_coverage_db >= report.worst_coverage_db

    def test_more_sectors_never_hurt(self, antenna):
        small = design_codebook(antenna, 6)
        large = design_codebook(antenna, 18)
        assert large.mean_coverage_db >= small.mean_coverage_db
        assert large.worst_coverage_db >= small.worst_coverage_db

    def test_weights_hardware_feasible(self, antenna):
        report = design_codebook(antenna, 6, phase_bits=2)
        step = np.pi / 2
        for sector in report.codebook:
            weights = sector.weights.weights
            active = np.abs(weights) > 1e-12
            phases = np.angle(weights[active])
            remainder = np.abs(((phases % step) + step) % step)
            remainder = np.minimum(remainder, step - remainder)
            np.testing.assert_allclose(remainder, 0.0, atol=1e-9)

    def test_custom_service_region(self, antenna):
        narrow = AngularGrid.from_spacing((-30.0, 30.0), 5.0, (0.0, 0.0), 1.0)
        report = design_codebook(antenna, 6, service_region=narrow)
        # A narrow region is easier to cover: higher worst-case gain
        # than the default wide region with the same sector count.
        wide = design_codebook(antenna, 6)
        assert report.worst_coverage_db > wide.worst_coverage_db

    def test_validation(self, antenna):
        with pytest.raises(ValueError):
            design_codebook(antenna, 0)
        with pytest.raises(ValueError):
            design_codebook(antenna, 64)
        tiny = AngularGrid.from_spacing((0.0, 10.0), 5.0)
        with pytest.raises(ValueError):
            design_codebook(antenna, 50, service_region=tiny, candidate_spacing_deg=10.0)


class TestCoverageCurve:
    def test_monotone_saturating(self, antenna):
        curve = coverage_curve(antenna, [4, 8, 16, 32])
        means = [mean for _, mean, _ in curve]
        assert means == sorted(means)
        # Saturation: the second doubling gains less than the first.
        assert (means[1] - means[0]) > (means[3] - means[2])

    def test_designed_beats_same_size_random_subset(self, antenna):
        """The designer must outperform an arbitrary steering layout."""
        from repro.phased_array.steering import steering_vector
        from repro.phased_array.weights import WeightVector

        region = AngularGrid.from_spacing((-80.0, 80.0), 5.0, (0.0, 30.0), 7.5)
        azimuths, elevations = region.flat_angles()
        rng = np.random.default_rng(3)
        random_gains = []
        for _ in range(8):
            azimuth = rng.uniform(-80, 80)
            elevation = rng.uniform(0, 30)
            weights = (
                WeightVector.conjugate_steering(
                    steering_vector(antenna.layout, azimuth, elevation)
                )
                .quantized(2)
                .normalized()
            )
            random_gains.append(antenna.gain_db(weights, azimuths, elevations))
        random_composite = np.stack(random_gains).max(axis=0)

        designed = design_codebook(antenna, 8, service_region=region)
        assert designed.mean_coverage_db >= float(random_composite.mean())
