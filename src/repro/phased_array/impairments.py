"""Hardware imperfection models for low-cost phased arrays.

The paper stresses that off-the-shelf hardware departs from theory:
per-element phase and gain errors, occasional dead elements, and a
device chassis that blocks and distorts radiation behind the antenna
(the measured patterns degrade beyond roughly ±120° azimuth).  These
static, device-specific imperfections are sampled once per device from
a seeded RNG so that a given device is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ChassisBlockage", "HardwareImpairments"]


@dataclass(frozen=True)
class ChassisBlockage:
    """Directional attenuation from the device chassis.

    Radiation toward the back of the device (azimuth beyond
    ``onset_deg``) is attenuated up to ``max_attenuation_db`` with an
    added pseudo-random ripple that models scattering off the chip and
    shielding mentioned in the paper (§4.4).
    """

    onset_deg: float = 120.0
    max_attenuation_db: float = 25.0
    ripple_db: float = 4.0
    seed: int = 0

    def attenuation_db(self, azimuth_deg: np.ndarray, elevation_deg: np.ndarray) -> np.ndarray:
        """Attenuation (>= 0 dB) for the given directions."""
        azimuth = np.abs(np.asarray(azimuth_deg, dtype=float))
        elevation = np.asarray(elevation_deg, dtype=float)
        azimuth, elevation = np.broadcast_arrays(azimuth, elevation)
        # Smooth ramp from the onset azimuth to the full back direction.
        ramp = np.clip((azimuth - self.onset_deg) / (180.0 - self.onset_deg), 0.0, 1.0)
        attenuation = self.max_attenuation_db * ramp**2
        # Deterministic ripple: a fixed random Fourier series in angle.
        rng = np.random.default_rng(self.seed)
        coefficients = rng.normal(size=4)
        phases = rng.uniform(0.0, 2.0 * np.pi, size=4)
        angle_rad = np.deg2rad(azimuth + 0.3 * elevation)
        ripple = np.zeros_like(attenuation)
        for order, (coefficient, phase) in enumerate(zip(coefficients, phases), start=2):
            ripple = ripple + coefficient * np.sin(order * angle_rad + phase)
        ripple = self.ripple_db * ripple / max(1.0, np.sqrt(len(coefficients)))
        return np.maximum(attenuation + ramp * ripple, 0.0)


@dataclass(frozen=True)
class HardwareImpairments:
    """Static per-element errors of one physical device.

    Attributes:
        phase_error_rad: additive phase error per element.
        gain_error_db: multiplicative gain error per element, in dB.
        element_failed: boolean mask of dead elements.
        blockage: chassis blockage model.
    """

    phase_error_rad: np.ndarray
    gain_error_db: np.ndarray
    element_failed: np.ndarray
    blockage: ChassisBlockage = field(default_factory=ChassisBlockage)

    def __post_init__(self) -> None:
        phase = np.asarray(self.phase_error_rad, dtype=float)
        gain = np.asarray(self.gain_error_db, dtype=float)
        failed = np.asarray(self.element_failed, dtype=bool)
        if not (phase.shape == gain.shape == failed.shape) or phase.ndim != 1:
            raise ValueError("impairment arrays must be 1-D and share a shape")
        object.__setattr__(self, "phase_error_rad", phase)
        object.__setattr__(self, "gain_error_db", gain)
        object.__setattr__(self, "element_failed", failed)

    @property
    def n_elements(self) -> int:
        return self.phase_error_rad.size

    @classmethod
    def ideal(cls, n_elements: int) -> "HardwareImpairments":
        """A perfect front-end (for ablations against theory)."""
        return cls(
            phase_error_rad=np.zeros(n_elements),
            gain_error_db=np.zeros(n_elements),
            element_failed=np.zeros(n_elements, dtype=bool),
            blockage=ChassisBlockage(max_attenuation_db=0.0, ripple_db=0.0),
        )

    @classmethod
    def sample(
        cls,
        n_elements: int,
        rng: np.random.Generator,
        phase_error_std_rad: float = 0.20,
        gain_error_std_db: float = 0.8,
        failure_probability: float = 0.02,
    ) -> "HardwareImpairments":
        """Draw the static imperfections of one device."""
        if not 0.0 <= failure_probability < 1.0:
            raise ValueError("failure probability must be in [0, 1)")
        return cls(
            phase_error_rad=rng.normal(0.0, phase_error_std_rad, size=n_elements),
            gain_error_db=rng.normal(0.0, gain_error_std_db, size=n_elements),
            element_failed=rng.random(n_elements) < failure_probability,
            blockage=ChassisBlockage(seed=int(rng.integers(0, 2**31))),
        )

    def element_response(self) -> np.ndarray:
        """Complex per-element multiplier combining all element errors."""
        gain_linear = 10.0 ** (self.gain_error_db / 20.0)
        response = gain_linear * np.exp(1j * self.phase_error_rad)
        return np.where(self.element_failed, 0.0, response)
