"""Unit tests for codebooks and the synthetic Talon sector set."""

import numpy as np
import pytest

from repro.phased_array import (
    Codebook,
    PhasedArray,
    RX_SECTOR_ID,
    Sector,
    STRONG_SECTOR_IDS,
    TALON_TX_SECTOR_IDS,
    WEAK_SECTOR_IDS,
    WeightVector,
    talon_codebook,
)


class TestCodebookContainer:
    def _sector(self, sector_id: int) -> Sector:
        return Sector(sector_id, WeightVector.uniform(4))

    def test_lookup_and_len(self):
        codebook = Codebook([self._sector(0), self._sector(1)], rx_sector_id=0)
        assert len(codebook) == 2
        assert codebook[1].sector_id == 1
        assert 1 in codebook and 9 not in codebook

    def test_unknown_sector_raises_keyerror(self):
        codebook = Codebook([self._sector(0)], rx_sector_id=0)
        with pytest.raises(KeyError):
            codebook[5]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            Codebook([self._sector(1), self._sector(1)], rx_sector_id=1)

    def test_missing_rx_sector_rejected(self):
        with pytest.raises(ValueError):
            Codebook([self._sector(1)], rx_sector_id=0)

    def test_tx_ids_exclude_rx(self):
        codebook = Codebook([self._sector(0), self._sector(1), self._sector(2)])
        assert codebook.rx_sector_id == RX_SECTOR_ID
        assert codebook.tx_sector_ids == [1, 2]
        assert codebook.n_tx_sectors == 2

    def test_sector_id_field_is_6_bits(self):
        with pytest.raises(ValueError):
            Sector(64, WeightVector.uniform(4))


class TestTalonCodebook:
    def test_full_inventory(self, codebook):
        # 34 TX sectors (1-31, 61-63) plus the quasi-omni RX pattern.
        assert len(codebook) == 35
        assert codebook.n_tx_sectors == 34
        assert sorted(codebook.tx_sector_ids) == sorted(TALON_TX_SECTOR_IDS)

    def test_deterministic_default_build(self, antenna):
        first = talon_codebook(antenna)
        second = talon_codebook(antenna)
        for sector_id in first.sector_ids:
            np.testing.assert_allclose(
                first[sector_id].weights.weights, second[sector_id].weights.weights
            )

    def test_strong_sectors_outgain_weak_ones(self, antenna, codebook):
        azimuths = np.linspace(-90, 90, 91)
        strong_peaks = [
            antenna.gain_db(codebook[s].weights, azimuths, 0.0).max()
            for s in STRONG_SECTOR_IDS
        ]
        weak_peaks = [
            antenna.gain_db(codebook[s].weights, azimuths, 0.0).max()
            for s in WEAK_SECTOR_IDS
        ]
        assert min(strong_peaks) > max(weak_peaks) + 3.0

    def test_elevated_sector5_peaks_off_plane(self, antenna, codebook):
        weights = codebook[5].weights
        azimuths = np.linspace(-90, 90, 91)
        in_plane = antenna.gain_db(weights, azimuths, 0.0).max()
        elevated = antenna.gain_db(weights, azimuths, 25.0).max()
        assert elevated > in_plane + 3.0

    def test_wide_sector26_covers_more_azimuth(self, antenna, codebook):
        azimuths = np.linspace(-90, 90, 181)

        def coverage(sector_id: int) -> int:
            gains = antenna.gain_db(codebook[sector_id].weights, azimuths, 0.0)
            return int(np.sum(gains > gains.max() - 6.0))

        assert coverage(26) > 2 * coverage(63)

    def test_rx_sector_is_quasi_omni(self, antenna, codebook):
        azimuths = np.linspace(-60, 60, 61)
        gains = antenna.gain_db(codebook.rx_sector.weights, azimuths, 0.0)
        # Single-element pattern: gentle rolloff, no deep nulls in front.
        assert gains.max() - gains.min() < 8.0

    def test_weights_fit_2bit_hardware(self, codebook):
        for sector in codebook:
            weights = sector.weights.weights
            active = np.abs(weights) > 1e-12
            phases = np.angle(weights[active])
            step = np.pi / 2
            offsets = np.abs(((phases + np.pi) % step) - 0)
            remainder = np.minimum(offsets, step - offsets)
            np.testing.assert_allclose(remainder, 0.0, atol=1e-9)

    def test_gains_db_helper(self, antenna, codebook):
        gains = codebook.gains_db(antenna, np.array([0.0]), np.array([0.0]), [63, 25])
        assert set(gains) == {63, 25}
        assert gains[63][0] > gains[25][0]
