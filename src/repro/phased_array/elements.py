"""Antenna element layouts.

The Talon AD7200's QCA9500 chip drives a 32-element planar phased
array.  We model it as a 6×6 half-wavelength grid with the four corner
elements removed — a common low-cost layout with the right element
count — lying in the device's y–z plane so that the array boresight is
the +x axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SPEED_OF_LIGHT_M_S = 299_792_458.0
#: IEEE 802.11ad channel 2 center frequency (the Talon default).
DEFAULT_CARRIER_HZ = 60.48e9

__all__ = [
    "SPEED_OF_LIGHT_M_S",
    "DEFAULT_CARRIER_HZ",
    "wavelength_m",
    "ElementLayout",
    "uniform_rectangular_layout",
    "talon_layout",
]


def wavelength_m(carrier_hz: float = DEFAULT_CARRIER_HZ) -> float:
    """Free-space wavelength for a carrier frequency."""
    if carrier_hz <= 0:
        raise ValueError("carrier frequency must be positive")
    return SPEED_OF_LIGHT_M_S / carrier_hz


@dataclass(frozen=True)
class ElementLayout:
    """Positions of the array elements in the device frame (meters).

    Attributes:
        positions_m: array of shape ``(n_elements, 3)``; elements lie in
            the y–z plane for a boresight along +x.
        carrier_hz: design carrier frequency of the array.
    """

    positions_m: np.ndarray
    carrier_hz: float = DEFAULT_CARRIER_HZ

    def __post_init__(self) -> None:
        positions = np.asarray(self.positions_m, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError("positions must have shape (n_elements, 3)")
        if positions.shape[0] == 0:
            raise ValueError("layout must contain at least one element")
        object.__setattr__(self, "positions_m", positions)
        if self.carrier_hz <= 0:
            raise ValueError("carrier frequency must be positive")

    @property
    def n_elements(self) -> int:
        return self.positions_m.shape[0]

    @property
    def wavelength_m(self) -> float:
        return wavelength_m(self.carrier_hz)

    @property
    def aperture_m(self) -> float:
        """Largest pairwise element distance (array aperture)."""
        deltas = self.positions_m[:, np.newaxis, :] - self.positions_m[np.newaxis, :, :]
        return float(np.max(np.linalg.norm(deltas, axis=-1)))


def uniform_rectangular_layout(
    n_rows: int,
    n_cols: int,
    spacing_wavelengths: float = 0.5,
    carrier_hz: float = DEFAULT_CARRIER_HZ,
) -> ElementLayout:
    """A centered ``n_rows × n_cols`` grid in the y–z plane."""
    if n_rows < 1 or n_cols < 1:
        raise ValueError("grid dimensions must be at least 1x1")
    spacing = spacing_wavelengths * wavelength_m(carrier_hz)
    row_offsets = (np.arange(n_rows) - (n_rows - 1) / 2.0) * spacing
    col_offsets = (np.arange(n_cols) - (n_cols - 1) / 2.0) * spacing
    positions = [
        (0.0, col, row)  # columns along y, rows along z
        for row in row_offsets
        for col in col_offsets
    ]
    return ElementLayout(np.asarray(positions), carrier_hz)


def talon_layout(carrier_hz: float = DEFAULT_CARRIER_HZ) -> ElementLayout:
    """The synthetic 32-element Talon AD7200 array.

    A 6×6 half-wavelength grid with the four corner elements removed,
    matching the 32-element count reported for the QCA9500 front-end.
    """
    full = uniform_rectangular_layout(6, 6, 0.5, carrier_hz)
    spacing = 0.5 * full.wavelength_m
    half_extent = 2.5 * spacing
    y = full.positions_m[:, 1]
    z = full.positions_m[:, 2]
    is_corner = (np.abs(y) > half_extent - 1e-9) & (np.abs(z) > half_extent - 1e-9)
    return ElementLayout(full.positions_m[~is_corner], carrier_hz)
