"""Benches: ablations of the design choices DESIGN.md calls out.

Each bench quantifies one decision the paper makes (or argues against)
and asserts the direction of the effect.
"""

from repro.experiments import (
    run_3d_ablation,
    run_adaptive_ablation,
    run_fusion_ablation,
    run_oob_prior_ablation,
    run_pattern_ablation,
    run_probe_set_ablation,
    run_random_beam_ablation,
    run_refinement_ablation,
)


def test_ablation_fusion(benchmark, report_rows):
    """Eq. 5's SNR×RSSI product beats (or at worst ties) either alone."""
    result = benchmark.pedantic(lambda: run_fusion_ablation(), rounds=1, iterations=1)
    report_rows(result.format_rows())
    product = result.variants["fusion=product"]
    assert product <= result.variants["fusion=snr"] + 0.25
    assert product <= result.variants["fusion=rssi"] + 0.25
    # And it should beat the plain Eq. 3 (SNR-only) estimator clearly.
    assert product < result.variants["fusion=snr"]


def test_ablation_patterns(benchmark, report_rows):
    """Measured patterns beat the ideal-array theoretical prediction."""
    result = benchmark.pedantic(lambda: run_pattern_ablation(), rounds=1, iterations=1)
    report_rows(result.format_rows())
    assert result.variants["measured patterns"] < result.variants["theoretical patterns"]


def test_ablation_probe_sets(benchmark, report_rows):
    """§7: gain-diverse probing outperforms random subsets at small M."""
    result = benchmark.pedantic(
        lambda: run_probe_set_ablation(n_probes=10), rounds=1, iterations=1
    )
    report_rows(result.format_rows())
    assert result.variants["gain-diverse (greedy)"] < result.variants["random subsets"]


def test_ablation_3d(benchmark, report_rows):
    """3D estimation is required once the geometry leaves the plane."""
    result = benchmark.pedantic(lambda: run_3d_ablation(), rounds=1, iterations=1)
    report_rows(result.format_rows())
    assert (
        result.variants["3D search grid"] + 1.0
        < result.variants["2D (azimuth-only) grid"]
    )


def test_ablation_random_beams(benchmark, report_rows):
    """§2.1: random probing beams cost link budget and accuracy."""
    result = benchmark.pedantic(
        lambda: run_random_beam_ablation(), rounds=1, iterations=1
    )
    report_rows(result.format_rows())
    assert (
        result.variants["sectors: best-beam SNR"]
        > result.variants["random beams: best-beam SNR"] + 3.0
    )
    assert result.variants["sectors: az error"] < result.variants["random beams: az error"]


def test_ablation_adaptive(benchmark, report_rows):
    """§7: the adaptive budget sits between the fixed extremes."""
    result = benchmark.pedantic(lambda: run_adaptive_ablation(), rounds=1, iterations=1)
    report_rows(result.format_rows())
    adaptive_airtime = result.variants["adaptive 10..24: airtime"]
    assert (
        result.variants["fixed 10 probes: airtime"]
        < adaptive_airtime
        < result.variants["fixed 24 probes: airtime"]
    )
    # Quality stays within 1 dB of the always-maximum budget.
    assert (
        result.variants["adaptive 10..24: loss"]
        < result.variants["fixed 24 probes: loss"] + 1.0
    )


def test_ablation_oob_prior(benchmark, report_rows):
    """Out-of-band priors rescue the very-low-probe regime (§8 idea)."""
    result = benchmark.pedantic(lambda: run_oob_prior_ablation(), rounds=1, iterations=1)
    report_rows(result.format_rows())
    for n_probes in (4, 6, 10):
        without = result.variants[f"M={n_probes} no prior"]
        with_prior = result.variants[f"M={n_probes} with prior"]
        assert with_prior < without
    # The rescue is dramatic at M=4: several-fold error reduction.
    assert result.variants["M=4 with prior"] < result.variants["M=4 no prior"] / 2.0


def test_ablation_refinement(benchmark, report_rows):
    """BRP hill-climbing recovers the residual CSS loss (and more)."""
    result = benchmark.pedantic(lambda: run_refinement_ablation(), rounds=1, iterations=1)
    report_rows(result.format_rows())
    assert (
        result.variants["loss after refinement"]
        < result.variants["loss before refinement"]
    )
    # A refinement run costs far less than even one reduced sweep.
    assert result.variants["mean airtime [us]"] < 553.0
