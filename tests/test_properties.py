"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import quantize_to_step
from repro.core import correlation_map, to_linear_power
from repro.firmware import RingBuffer
from repro.geometry import (
    angular_distance,
    azimuth_difference,
    direction_vector,
    vector_to_angles,
    wrap_azimuth,
)
from repro.mac.fields import SSWField
from repro.mac.frames import SSWFeedbackField
from repro.mac.schedule import custom_sweep_burst
from repro.measurement.processing import interpolate_gaps, reject_outliers
from repro.phased_array import quantize_phase

finite_angle = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
azimuth = st.floats(min_value=-180.0, max_value=180.0)
elevation = st.floats(min_value=-89.9, max_value=89.9)


class TestAngleProperties:
    @given(finite_angle)
    def test_wrap_lands_in_half_open_interval(self, angle):
        wrapped = wrap_azimuth(angle)
        assert -180.0 < wrapped <= 180.0

    @given(finite_angle)
    def test_wrap_idempotent(self, angle):
        wrapped = wrap_azimuth(angle)
        assert wrap_azimuth(wrapped) == wrapped

    @given(finite_angle, st.integers(min_value=-5, max_value=5))
    def test_wrap_360_periodic(self, angle, turns):
        np.testing.assert_allclose(
            wrap_azimuth(angle + 360.0 * turns), wrap_azimuth(angle), atol=1e-6
        )

    @given(azimuth, azimuth)
    def test_difference_bounded(self, a, b):
        difference = azimuth_difference(a, b)
        assert -180.0 < difference <= 180.0

    @given(azimuth, elevation, azimuth, elevation)
    def test_angular_distance_symmetric_and_bounded(self, az_a, el_a, az_b, el_b):
        forward = angular_distance(az_a, el_a, az_b, el_b)
        backward = angular_distance(az_b, el_b, az_a, el_a)
        assert abs(forward - backward) < 1e-9
        assert 0.0 <= forward <= 180.0 + 1e-9

    @given(azimuth, elevation)
    def test_direction_vector_roundtrip(self, az, el):
        vector = direction_vector(az, el)
        az_back, el_back = vector_to_angles(vector)
        assert angular_distance(az, el, az_back, el_back) < 1e-6


class TestQuantizationProperties:
    @given(
        st.floats(min_value=-100, max_value=100),
        st.sampled_from([0.25, 0.5, 1.0, 2.0]),
    )
    def test_quantize_error_bounded_by_half_step(self, value, step):
        assert abs(quantize_to_step(value, step) - value) <= step / 2 + 1e-9

    @given(
        st.lists(st.floats(min_value=-np.pi, max_value=np.pi), min_size=1, max_size=16),
        st.integers(min_value=1, max_value=4),
    )
    def test_phase_quantization_idempotent(self, phases, bits):
        quantized = quantize_phase(np.array(phases), bits)
        np.testing.assert_allclose(quantize_phase(quantized, bits), quantized, atol=1e-9)


class TestFrameFieldProperties:
    @given(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=511),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=63),
    )
    def test_ssw_field_roundtrip(self, direction, cdown, sector, antenna, rxss):
        field = SSWField(direction, cdown, sector, antenna, rxss)
        assert SSWField.unpack(field.pack()) == field

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=-8.0, max_value=55.0),
    )
    def test_feedback_field_snr_within_quarter_db(self, sector, antenna, snr):
        field = SSWFeedbackField(sector, antenna, snr)
        decoded = SSWFeedbackField.unpack(field.pack())
        assert decoded.sector_select == sector
        assert abs(decoded.snr_report_db - snr) <= 0.125 + 1e-9


class TestScheduleProperties:
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=34, unique=True))
    def test_custom_burst_cdown_invariants(self, sector_ids):
        burst = custom_sweep_burst(sector_ids)
        cdowns = [cdown for cdown, _ in burst]
        assert cdowns[0] == len(sector_ids) - 1
        assert cdowns[-1] == 0
        assert cdowns == sorted(cdowns, reverse=True)
        assert [sector for _, sector in burst] == list(sector_ids)


class TestCorrelationProperties:
    @settings(max_examples=50)
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_bounds_and_scale_invariance(self, n_probes, n_grid, seed):
        rng = np.random.default_rng(seed)
        probes = rng.uniform(-7, 12, size=n_probes)
        patterns = rng.uniform(-7, 12, size=(n_probes, n_grid))
        surface = correlation_map(probes, patterns)
        assert (surface >= -1e-12).all() and (surface <= 1.0 + 1e-9).all()
        shifted = correlation_map(probes + 3.0, patterns)  # dB shift = linear scale
        np.testing.assert_allclose(surface, shifted, atol=1e-9)

    @given(st.floats(min_value=-100, max_value=100))
    def test_linear_power_positive(self, value):
        assert to_linear_power(np.array([value]))[0] > 0


class TestRingBufferProperties:
    @given(st.integers(min_value=1, max_value=8), st.lists(st.integers(), max_size=50))
    def test_keeps_most_recent_suffix(self, capacity, values):
        buffer = RingBuffer(capacity)
        for value in values:
            buffer.push(value)
        expected = values[-capacity:]
        assert buffer.peek_all() == expected
        assert buffer.dropped_count == max(0, len(values) - capacity)


class TestProcessingProperties:
    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=30))
    def test_reject_outliers_returns_subset(self, samples):
        kept = reject_outliers(samples)
        assert 1 <= len(kept) <= len(samples)
        # Every kept value was in the input.
        remaining = list(samples)
        for value in kept:
            assert value in remaining
            remaining.remove(value)

    @given(
        st.lists(
            st.one_of(st.floats(min_value=-20, max_value=20), st.just(float("nan"))),
            min_size=1,
            max_size=40,
        )
    )
    def test_interpolation_removes_all_gaps(self, row):
        result = interpolate_gaps(np.array(row))
        assert not np.isnan(result).any()

    @given(st.lists(st.floats(min_value=-20, max_value=20), min_size=1, max_size=40))
    def test_interpolation_identity_without_gaps(self, row):
        np.testing.assert_allclose(interpolate_gaps(np.array(row)), row)

    @given(
        st.lists(st.floats(min_value=-20, max_value=20), min_size=2, max_size=40),
        st.integers(min_value=0, max_value=38),
    )
    def test_interpolated_gap_within_neighbor_range(self, row, gap_index):
        values = np.array(row)
        gap_index = min(gap_index, len(values) - 1)
        original = values[gap_index]
        values[gap_index] = np.nan
        filled = interpolate_gaps(values)[gap_index]
        finite = [v for i, v in enumerate(row) if i != gap_index]
        assert min(finite) - 1e-9 <= filled <= max(finite) + 1e-9
