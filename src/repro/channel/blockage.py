"""Human-body blockage for 60 GHz links.

mm-wave links are famously fragile: a person crossing the LOS costs
20–30 dB.  A :class:`HumanBlocker` is a vertical cylinder that
attenuates every ray segment passing near it; moving the blocker over
time reproduces the blockage transients that motivate multi-path
tracking and fast re-steering (paper §7 / BeamSpy-style related work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .rays import Ray

__all__ = ["HumanBlocker", "apply_blockage"]


def _point_segment_distance_2d(
    point: np.ndarray, start: np.ndarray, end: np.ndarray
) -> float:
    """Distance from a point to a segment, in the horizontal plane."""
    point = point[:2]
    start = start[:2]
    end = end[:2]
    segment = end - start
    length_sq = float(segment @ segment)
    if length_sq < 1e-18:
        return float(np.linalg.norm(point - start))
    t = float(np.clip((point - start) @ segment / length_sq, 0.0, 1.0))
    closest = start + t * segment
    return float(np.linalg.norm(point - closest))


@dataclass(frozen=True)
class HumanBlocker:
    """A vertical cylindrical obstacle (a person).

    Attributes:
        position_m: center of the cylinder in the world frame (the z
            component is ignored; people block the whole link plane).
        radius_m: effective blocking radius (~0.25 m for a torso).
        attenuation_db: loss added to a fully blocked ray.
    """

    position_m: np.ndarray
    radius_m: float = 0.25
    attenuation_db: float = 22.0

    def __post_init__(self) -> None:
        position = np.asarray(self.position_m, dtype=float)
        if position.shape != (3,):
            raise ValueError("blocker position must be a 3-vector")
        object.__setattr__(self, "position_m", position)
        if self.radius_m <= 0:
            raise ValueError("radius must be positive")
        if self.attenuation_db < 0:
            raise ValueError("attenuation cannot be negative")

    def blocks_segment(self, start_m: np.ndarray, end_m: np.ndarray) -> bool:
        """True when the segment passes through the blocking cylinder."""
        distance = _point_segment_distance_2d(
            self.position_m, np.asarray(start_m, dtype=float), np.asarray(end_m, dtype=float)
        )
        return distance < self.radius_m

    def loss_on_segment_db(self, start_m: np.ndarray, end_m: np.ndarray) -> float:
        """Blockage loss with a soft edge (diffraction around the body)."""
        distance = _point_segment_distance_2d(
            self.position_m, np.asarray(start_m, dtype=float), np.asarray(end_m, dtype=float)
        )
        if distance >= 2.0 * self.radius_m:
            return 0.0
        if distance <= self.radius_m:
            return self.attenuation_db
        # Linear shadow-edge taper between 1 and 2 radii.
        fraction = (2.0 * self.radius_m - distance) / self.radius_m
        return self.attenuation_db * fraction


def apply_blockage(
    rays: Sequence[Ray],
    blockers: Sequence[HumanBlocker],
    tx_position_m: np.ndarray,
    rx_position_m: np.ndarray,
    bounce_points_m: Sequence,
) -> List[Ray]:
    """Add blocker losses to a ray set.

    Args:
        rays: the unblocked rays (LOS first, as the environments emit).
        blockers: obstacles to test against.
        tx_position_m / rx_position_m: link endpoints.
        bounce_points_m: per-ray bounce point, ``None`` for the LOS ray
            (aligned with ``rays``).

    Returns:
        New rays with ``extra_loss_db`` increased by the blockage.
    """
    if len(bounce_points_m) != len(rays):
        raise ValueError("bounce point list must align with rays")
    if not blockers:
        return list(rays)
    tx = np.asarray(tx_position_m, dtype=float)
    rx = np.asarray(rx_position_m, dtype=float)
    blocked: List[Ray] = []
    for ray, bounce in zip(rays, bounce_points_m):
        segments = [(tx, rx)] if bounce is None else [(tx, bounce), (bounce, rx)]
        loss = 0.0
        for blocker in blockers:
            for start, end in segments:
                loss += blocker.loss_on_segment_db(start, end)
        if loss == 0.0:
            blocked.append(ray)
        else:
            blocked.append(
                Ray(
                    departure_azimuth_deg=ray.departure_azimuth_deg,
                    departure_elevation_deg=ray.departure_elevation_deg,
                    arrival_azimuth_deg=ray.arrival_azimuth_deg,
                    arrival_elevation_deg=ray.arrival_elevation_deg,
                    path_length_m=ray.path_length_m,
                    extra_loss_db=ray.extra_loss_db + loss,
                    is_los=ray.is_los,
                )
            )
    return blocked
