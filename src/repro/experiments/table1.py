"""Table 1: which sector IDs beacons and sweeps use at each CDOWN.

The paper deployed three Talon routers in close proximity — an AP, a
client, and a monitor capturing every beacon and SSW frame with tcpdump
— and read the (CDOWN, sector ID) pairs out of the captures.  We do the
same: an AP/client pair trains while a monitor station captures; the AP
is rotated between bursts so that every sector eventually points near
the monitor (the paper likewise confirmed the mapping was independent
of the monitor's position).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from ..channel.environment import lab_environment
from ..geometry.rotation import Orientation
from ..mac.frames import BeaconFrame, SSWFrame
from ..mac.schedule import BEACON_SCHEDULE, SWEEP_SCHEDULE, schedule_table_rows
from ..mac.station import Station
from ..mac.sweep import SweepSession, transmit_beacon_burst
from ..phased_array.array import PhasedArray
from ..phased_array.talon import talon_codebook
from ..runtime.registry import register_scenario
from ..runtime.runner import ScenarioRunner
from ..runtime.spec import ScenarioSpec

__all__ = ["Table1Config", "Table1Result", "run_table1", "table1_spec"]


@dataclass(frozen=True)
class Table1Config:
    seed: int = 1
    n_bursts_per_pose: int = 2
    ap_yaws_deg: Tuple[float, ...] = (-135.0, -90.0, -45.0, 0.0, 45.0, 90.0, 135.0, 180.0)
    monitor_distance_m: float = 1.2


@dataclass
class Table1Result:
    beacon_observed: Dict[int, Set[int]]
    sweep_observed: Dict[int, Set[int]]

    def _consistent(self, observed: Dict[int, Set[int]], schedule: Dict[int, int]) -> bool:
        for cdown, sectors in observed.items():
            if len(sectors) != 1:
                return False
            if schedule.get(cdown) != next(iter(sectors)):
                return False
        return True

    @property
    def beacon_consistent(self) -> bool:
        """Every observed beacon slot matches the published schedule."""
        return self._consistent(self.beacon_observed, BEACON_SCHEDULE)

    @property
    def sweep_consistent(self) -> bool:
        return self._consistent(self.sweep_observed, SWEEP_SCHEDULE)

    def beacon_coverage(self) -> float:
        """Fraction of beacon schedule slots confirmed by captures."""
        return len(self.beacon_observed) / len(BEACON_SCHEDULE)

    def sweep_coverage(self) -> float:
        return len(self.sweep_observed) / len(SWEEP_SCHEDULE)

    def format_rows(self) -> List[str]:
        rows = ["table1: beacon/sweep sector schedule (captured vs spec)"]
        header = "CDOWN  " + " ".join(f"{c:3d}" for c in range(34, -1, -1))
        rows.append(header)
        for label, cells in schedule_table_rows():
            rows.append(f"{label:6s} " + " ".join(f"{c:>3s}" for c in cells))
        rows.append(
            f"captured beacon slots: {len(self.beacon_observed)}/{len(BEACON_SCHEDULE)} "
            f"consistent={self.beacon_consistent}"
        )
        rows.append(
            f"captured sweep  slots: {len(self.sweep_observed)}/{len(SWEEP_SCHEDULE)} "
            f"consistent={self.sweep_consistent}"
        )
        return rows


def table1_spec(config: Table1Config = Table1Config()) -> ScenarioSpec:
    """The declarative form of a Table 1 capture run."""
    params = {key: value for key, value in asdict(config).items() if key != "seed"}
    params["ap_yaws_deg"] = [float(yaw) for yaw in params["ap_yaws_deg"]]
    return ScenarioSpec(scenario="table1", seed=config.seed, params=params)


def _config_from_spec(spec: ScenarioSpec) -> Table1Config:
    params = dict(spec.params)
    params["ap_yaws_deg"] = tuple(params["ap_yaws_deg"])
    return Table1Config(seed=spec.seed, **params)


@register_scenario("table1", default_spec=table1_spec)
def _run_table1_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> Table1Result:
    """Table 1: capture beacon/sweep bursts on a monitor station.

    MAC-layer frame capture, not sector selection — the scenario wrapper
    only adds the manifest and the CLI entry point.
    """
    config = _config_from_spec(spec)
    rng = np.random.default_rng(config.seed)
    environment = lab_environment(3.0)

    ap = Station(
        "ap", 1, PhasedArray.talon(np.random.default_rng(config.seed + 1)),
        position_m=environment.tx_position_m,
    )
    client = Station(
        "client", 2, PhasedArray.talon(np.random.default_rng(config.seed + 2)),
        position_m=environment.rx_position_m,
        orientation=Orientation(yaw_deg=180.0),
    )
    monitor = Station(
        "monitor", 3, PhasedArray.talon(np.random.default_rng(config.seed + 3)),
        position_m=np.array([config.monitor_distance_m, config.monitor_distance_m, 0.0]),
        orientation=Orientation(yaw_deg=-135.0),
    )

    beacon_observed: Dict[int, Set[int]] = {}
    sweep_observed: Dict[int, Set[int]] = {}
    for yaw in config.ap_yaws_deg:
        ap.orientation = Orientation(yaw_deg=yaw)
        for _ in range(config.n_bursts_per_pose):
            for capture in transmit_beacon_burst(ap, environment, monitor, rng):
                frame = capture.frame
                assert isinstance(frame, BeaconFrame)
                beacon_observed.setdefault(frame.cdown, set()).add(frame.sector_id)

            session = SweepSession(ap, client, environment, monitor=monitor)
            result = session.run(rng)
            for capture in result.monitor_frames:
                frame = capture.frame
                if isinstance(frame, SSWFrame):
                    sweep_observed.setdefault(frame.cdown, set()).add(frame.sector_id)

    return Table1Result(beacon_observed=beacon_observed, sweep_observed=sweep_observed)


def run_table1(config: Table1Config = Table1Config()) -> Table1Result:
    """Capture beacon and sweep bursts on a monitor and aggregate."""
    return ScenarioRunner().run(table1_spec(config)).result
