"""Mobility: endpoint trajectories for tracking scenarios.

§7 motivates frequent re-training by mobile users; these trajectory
primitives move a station through the room over time.  A
:class:`MobileLink` recomputes the ray geometry per step and yields
the true sweep-SNR vector a tracker would face at each instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

import numpy as np

from ..geometry.rotation import Orientation
from ..geometry.spherical import vector_to_angles
from ..phased_array.array import PhasedArray
from ..phased_array.codebook import Codebook
from .environment import Environment
from .link import LinkBudget, LinkSimulator

__all__ = ["Trajectory", "LinearTrajectory", "ArcTrajectory", "MobileLink"]


class Trajectory(Protocol):
    """Anything that maps time to a world position."""

    def position_at(self, time_s: float) -> np.ndarray:
        """World-frame position at ``time_s``."""
        ...


@dataclass(frozen=True)
class LinearTrajectory:
    """Constant-velocity walk."""

    start_m: np.ndarray
    velocity_m_s: np.ndarray

    def __post_init__(self) -> None:
        start = np.asarray(self.start_m, dtype=float)
        velocity = np.asarray(self.velocity_m_s, dtype=float)
        if start.shape != (3,) or velocity.shape != (3,):
            raise ValueError("start and velocity must be 3-vectors")
        object.__setattr__(self, "start_m", start)
        object.__setattr__(self, "velocity_m_s", velocity)

    def position_at(self, time_s: float) -> np.ndarray:
        return self.start_m + time_s * self.velocity_m_s


@dataclass(frozen=True)
class ArcTrajectory:
    """Walk on a circular arc around a center (e.g. around the AP)."""

    center_m: np.ndarray
    radius_m: float
    angular_speed_deg_s: float
    start_angle_deg: float = 0.0
    height_m: float = 0.0

    def __post_init__(self) -> None:
        center = np.asarray(self.center_m, dtype=float)
        if center.shape != (3,):
            raise ValueError("center must be a 3-vector")
        object.__setattr__(self, "center_m", center)
        if self.radius_m <= 0:
            raise ValueError("radius must be positive")

    def position_at(self, time_s: float) -> np.ndarray:
        angle = np.deg2rad(self.start_angle_deg + self.angular_speed_deg_s * time_s)
        return self.center_m + np.array(
            [self.radius_m * np.cos(angle), self.radius_m * np.sin(angle), self.height_m]
        )


class MobileLink:
    """A fixed transmitter tracking a moving receiver.

    The transmitter (the AP, at the environment's TX endpoint) keeps a
    fixed pose; the receiver rides ``trajectory`` and always turns to
    face the transmitter (people carry devices roughly pointed at the
    AP; pose errors are absorbed by the quasi-omni receive sector).
    """

    def __init__(
        self,
        environment: Environment,
        trajectory: Trajectory,
        tx_antenna: PhasedArray,
        tx_codebook: Codebook,
        rx_antenna: PhasedArray,
        rx_codebook: Codebook,
        budget: Optional[LinkBudget] = None,
    ):
        self.environment = environment
        self.trajectory = trajectory
        self.tx_antenna = tx_antenna
        self.tx_codebook = tx_codebook
        self.rx_antenna = rx_antenna
        self.rx_codebook = rx_codebook
        self.budget = budget if budget is not None else LinkBudget()

    def _rx_orientation(self, rx_position: np.ndarray) -> Orientation:
        toward_tx = self.environment.tx_position_m - rx_position
        azimuth, _elevation = vector_to_angles(toward_tx)
        return Orientation(yaw_deg=azimuth)

    def true_snr_at(
        self, time_s: float, sector_ids: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Ground-truth sweep SNR per TX sector at one instant."""
        if sector_ids is None:
            sector_ids = self.tx_codebook.tx_sector_ids
        rx_position = self.trajectory.position_at(time_s)
        simulator = LinkSimulator(
            self.environment,
            self.tx_antenna,
            self.rx_antenna,
            self.budget,
            tx_position_m=self.environment.tx_position_m,
            rx_position_m=rx_position,
        )
        rx_orientation = self._rx_orientation(rx_position)
        return np.array(
            [
                simulator.true_snr_db(
                    self.tx_codebook[sector_id].weights,
                    self.rx_codebook.rx_sector.weights,
                    tx_orientation=Orientation(),
                    rx_orientation=rx_orientation,
                )
                for sector_id in sector_ids
            ]
        )

    def device_direction_at(self, time_s: float) -> tuple:
        """TX-device-frame direction of the receiver (ground truth)."""
        rx_position = self.trajectory.position_at(time_s)
        azimuth, elevation = vector_to_angles(
            rx_position - self.environment.tx_position_m
        )
        return (azimuth, elevation)
