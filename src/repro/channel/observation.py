"""Firmware measurement model: from true SNR to what the chip reports.

Section 5 of the paper documents the quirks of the QCA9500's signal
strength reporting, all of which are modelled here:

* SNR readings are quantized to quarter-dB steps and clipped to the
  range −7 … 12 dB;
* low-gain sectors show large fluctuations and severe outliers;
* sometimes the firmware reports nothing at all for a sector;
* RSSI is acquired separately from SNR — the two are correlated on
  average but their fluctuations are not simultaneous, which is what
  makes the paper's SNR×RSSI correlation fusion (Eq. 5) effective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["SignalObservation", "MeasurementModel", "quantize_to_step"]


def quantize_to_step(value: float, step: float) -> float:
    """Round ``value`` to the nearest multiple of ``step``."""
    if step <= 0:
        raise ValueError("quantization step must be positive")
    return round(value / step) * step


@dataclass(frozen=True)
class SignalObservation:
    """One reported measurement for one received SSW frame."""

    snr_db: float
    rssi_dbm: float


@dataclass(frozen=True)
class MeasurementModel:
    """Stochastic model of the firmware's signal-strength reporting.

    Attributes:
        snr_min_db / snr_max_db: reporting range of the SNR field.
        snr_step_db: SNR quantization (quarter dB on the QCA9500).
        rssi_step_db: RSSI quantization.
        decode_threshold_db: SNR at which frame decoding succeeds 50 %
            of the time (soft threshold with ``decode_width_db`` slope).
        report_dropout_probability: chance that a decoded frame still
            yields no firmware report.
        base_noise_std_db: measurement noise at high SNR.
        low_snr_extra_noise_db: extra noise approached at low SNR.
        outlier_probability: chance of a severe outlier per value.
        outlier_magnitude_db: half-range of the outlier offset.
    """

    snr_min_db: float = -7.0
    snr_max_db: float = 12.0
    snr_step_db: float = 0.25
    rssi_step_db: float = 1.0
    # SSW frames ride the heavily spread control PHY, which decodes
    # below the SNR field's own -7 dB reporting floor.
    decode_threshold_db: float = -9.0
    decode_width_db: float = 1.5
    report_dropout_probability: float = 0.03
    base_noise_std_db: float = 0.4
    low_snr_extra_noise_db: float = 1.6
    outlier_probability: float = 0.08
    outlier_magnitude_db: float = 10.0
    rssi_offset_db: float = 0.0

    def __post_init__(self) -> None:
        if self.snr_max_db <= self.snr_min_db:
            raise ValueError("snr_max_db must exceed snr_min_db")
        if not 0.0 <= self.report_dropout_probability < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        if not 0.0 <= self.outlier_probability < 1.0:
            raise ValueError("outlier probability must be in [0, 1)")

    @classmethod
    def noiseless(cls) -> "MeasurementModel":
        """Quantization only — for ablations and deterministic tests."""
        return cls(
            report_dropout_probability=0.0,
            base_noise_std_db=0.0,
            low_snr_extra_noise_db=0.0,
            outlier_probability=0.0,
            decode_threshold_db=-1e9,
        )

    def decode_probability(self, true_snr_db: float) -> float:
        """Soft frame-decoding probability as a function of SNR."""
        argument = (true_snr_db - self.decode_threshold_db) / self.decode_width_db
        return float(1.0 / (1.0 + np.exp(-argument)))

    def _noise_std_db(self, true_snr_db: float) -> float:
        """Noise grows as the SNR approaches the sensitivity floor."""
        low_snr_weight = 1.0 / (1.0 + np.exp((true_snr_db - 2.0) / 2.0))
        return self.base_noise_std_db + self.low_snr_extra_noise_db * low_snr_weight

    def _maybe_outlier(self, rng: np.random.Generator) -> float:
        if rng.random() < self.outlier_probability:
            return float(rng.uniform(-self.outlier_magnitude_db, self.outlier_magnitude_db))
        return 0.0

    def observe(
        self,
        true_snr_db: float,
        noise_floor_dbm: float,
        rng: np.random.Generator,
    ) -> Optional[SignalObservation]:
        """Produce the firmware's report for one frame, or ``None``.

        ``None`` models either a frame that failed to decode or a
        decoded frame whose measurement the firmware dropped.
        """
        if rng.random() > self.decode_probability(true_snr_db):
            return None
        if rng.random() < self.report_dropout_probability:
            return None

        noise_std = self._noise_std_db(true_snr_db)
        snr_reading = true_snr_db + rng.normal(0.0, noise_std) + self._maybe_outlier(rng)
        snr_reading = float(
            np.clip(
                quantize_to_step(snr_reading, self.snr_step_db),
                self.snr_min_db,
                self.snr_max_db,
            )
        )
        # RSSI: independently acquired estimate of the received power.
        rssi_reading = (
            true_snr_db
            + noise_floor_dbm
            + self.rssi_offset_db
            + rng.normal(0.0, noise_std)
            + self._maybe_outlier(rng)
        )
        rssi_reading = float(quantize_to_step(rssi_reading, self.rssi_step_db))
        return SignalObservation(snr_db=snr_reading, rssi_dbm=rssi_reading)
