"""Shared infrastructure for the evaluation experiments (§6).

The paper's methodology: record *full* sweeps (all 34 TX sectors) at
every rotation-head position, then evaluate the compressive algorithm
offline by considering only a random subset of each sweep's
measurements.  :func:`record_directions` produces those recordings;
the per-figure modules consume them.

A :func:`build_testbed` call assembles the simulated hardware —
device-under-test and reference routers, their measured 3D pattern
table from a chamber campaign — and is memoized because every
experiment shares it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..channel.batch import sweep_snr_matrix
from ..channel.environment import Environment
from ..channel.link import LinkBudget
from ..channel.observation import MeasurementModel
from ..core.measurements import ProbeMeasurement
from ..geometry.angles import wrap_azimuth
from ..measurement.campaign import CampaignConfig, PatternMeasurementCampaign
from ..measurement.patterns import PatternTable
from ..measurement.rotation_head import RotationHead
from ..phased_array.array import PhasedArray
from ..phased_array.codebook import Codebook
from ..phased_array.talon import talon_codebook

__all__ = [
    "Testbed",
    "build_testbed",
    "testbed_table_cache_info",
    "RecordedDirection",
    "record_directions",
    "random_subsweep",
    "random_probe_columns",
    "pack_probe_trials",
    "BoxStats",
]


@dataclass(frozen=True)
class Testbed:
    """The simulated hardware every experiment shares."""

    dut_antenna: PhasedArray
    dut_codebook: Codebook
    ref_antenna: PhasedArray
    ref_codebook: Codebook
    pattern_table: PatternTable
    budget: LinkBudget
    measurement_model: MeasurementModel

    @property
    def tx_sector_ids(self) -> List[int]:
        return self.dut_codebook.tx_sector_ids


def _testbed_memo_params(
    seed: int,
    azimuth_step_deg: float,
    elevation_step_deg: float,
    max_elevation_deg: float,
    campaign_sweeps: int,
) -> Dict:
    """The disk-memo key of a ``build_testbed`` campaign table."""
    return {
        "pipeline": "build_testbed-campaign",
        "seed": seed,
        "azimuth_step_deg": azimuth_step_deg,
        "elevation_step_deg": elevation_step_deg,
        "max_elevation_deg": max_elevation_deg,
        "campaign_sweeps": campaign_sweeps,
    }


def testbed_table_cache_info(
    seed: int = 2017,
    azimuth_step_deg: float = 2.0,
    elevation_step_deg: float = 4.0,
    max_elevation_deg: float = 32.0,
    campaign_sweeps: int = 3,
) -> Dict:
    """Status of the on-disk campaign-table memo for these parameters."""
    from ..measurement import artifacts

    path = artifacts.memoized_table_path(
        _testbed_memo_params(
            seed, azimuth_step_deg, elevation_step_deg, max_elevation_deg, campaign_sweeps
        )
    )
    return {
        "path": str(path),
        "present": path.is_file(),
        "enabled": artifacts._memo_enabled(),
    }


@lru_cache(maxsize=4)
def build_testbed(
    seed: int = 2017,
    azimuth_step_deg: float = 2.0,
    elevation_step_deg: float = 4.0,
    max_elevation_deg: float = 32.0,
    campaign_sweeps: int = 3,
) -> Testbed:
    """Create devices and run the chamber campaign once (memoized).

    The pattern table covers azimuth ±90° and elevation 0° up to
    ``max_elevation_deg`` — the same envelope as Figure 6.
    """
    rng = np.random.default_rng(seed)
    dut_antenna = PhasedArray.talon(np.random.default_rng(seed + 1))
    dut_codebook = talon_codebook(dut_antenna)
    ref_antenna = PhasedArray.talon(np.random.default_rng(seed + 2))
    ref_codebook = talon_codebook(ref_antenna)
    budget = LinkBudget()
    measurement_model = MeasurementModel()

    campaign = PatternMeasurementCampaign(
        dut_antenna,
        dut_codebook,
        reference_antenna=ref_antenna,
        reference_codebook=ref_codebook,
        budget=budget,
        measurement_model=measurement_model,
    )
    n_az = int(round(180.0 / azimuth_step_deg))
    azimuths = -90.0 + azimuth_step_deg * np.arange(n_az + 1)
    n_el = int(round(max_elevation_deg / elevation_step_deg))
    elevations = elevation_step_deg * np.arange(n_el + 1)
    config = CampaignConfig(
        azimuths_deg=azimuths, elevations_deg=elevations, n_sweeps=campaign_sweeps
    )
    # Disk-memoize the campaign output: the table is a pure function of
    # these parameters (the generator is seeded from `seed` and the
    # campaign is its only consumer), and `.npz` round-trips float64
    # exactly, so loading the cached table is indistinguishable from
    # rebuilding it.  Corruption or a version bump degrades to a
    # rebuild inside `load_or_build_table`.
    from ..measurement import artifacts

    memo_params = _testbed_memo_params(
        seed, azimuth_step_deg, elevation_step_deg, max_elevation_deg, campaign_sweeps
    )
    expected_sectors = set(dut_codebook.sector_ids)
    table = artifacts.load_or_build_table(
        memo_params,
        build=lambda: campaign.run(config, rng),
        validate=lambda t: set(t.sector_ids) == expected_sectors
        and t.grid.n_points == len(azimuths) * len(elevations),
    )
    return Testbed(
        dut_antenna=dut_antenna,
        dut_codebook=dut_codebook,
        ref_antenna=ref_antenna,
        ref_codebook=ref_codebook,
        pattern_table=table,
        budget=budget,
        measurement_model=measurement_model,
    )


@dataclass
class RecordedDirection:
    """All sweep recordings for one physical path direction.

    Attributes:
        azimuth_deg / elevation_deg: nominal device-frame direction of
            the link (the ground truth for estimation errors).
        true_snr_db: ground-truth sweep SNR per TX sector.
        sweeps: one dict per recorded sweep, mapping sector ID to the
            firmware measurement (missing IDs were not reported).
    """

    azimuth_deg: float
    elevation_deg: float
    true_snr_db: np.ndarray
    sweeps: List[Dict[int, ProbeMeasurement]] = field(default_factory=list)
    _packed: Optional[Tuple[tuple, np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def optimal_snr_db(self) -> float:
        return float(self.true_snr_db.max())

    def packed_sweeps(
        self, tx_sector_ids: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Column-packed view of the sweeps for the batched estimators.

        Returns ``(present, snr_db, rssi_dbm)``, each of shape
        ``(n_sweeps, len(tx_sector_ids))`` with column ``j`` holding
        sector ``tx_sector_ids[j]``; unreported slots are False / NaN.
        The result is cached — recordings are immutable once recorded.
        """
        key = tuple(tx_sector_ids)
        if self._packed is not None and self._packed[0] == key:
            return self._packed[1], self._packed[2], self._packed[3]
        column_of = {sector_id: column for column, sector_id in enumerate(key)}
        shape = (len(self.sweeps), len(key))
        present = np.zeros(shape, dtype=bool)
        snr = np.full(shape, np.nan)
        rssi = np.full(shape, np.nan)
        for row, sweep in enumerate(self.sweeps):
            for sector_id, measurement in sweep.items():
                column = column_of.get(sector_id)
                if column is not None:
                    present[row, column] = True
                    snr[row, column] = measurement.snr_db
                    rssi[row, column] = measurement.rssi_dbm
        self._packed = (key, present, snr, rssi)
        return present, snr, rssi


def record_directions(
    testbed: Testbed,
    environment: Environment,
    azimuths_deg: Sequence[float],
    elevations_deg: Sequence[float],
    n_sweeps: int,
    rng: np.random.Generator,
    observe_mode: str = "reference",
) -> List[RecordedDirection]:
    """Record full 34-sector sweeps over a grid of path directions.

    The DUT rides the rotation head (with its mechanical tilt errors),
    the reference device listens quasi-omni at the environment's far
    endpoint.  Per-sweep slow fading is modelled as a common SNR offset
    drawn from the environment's shadowing spread.

    ``observe_mode`` picks the firmware-report path: ``"reference"``
    (default) makes one scalar ``observe`` call per sector per sweep —
    the random stream every committed experiment output is pinned to —
    while ``"batched"`` drives ``observe_batch`` over whole
    (sweeps × sectors) blocks per direction.  Both are deterministic
    given the generator and draw from identical per-frame
    distributions, but they consume the stream in a different order,
    so the two modes produce different (equally valid) recordings for
    the same seed.  Switching the default would silently re-roll every
    pinned experiment value; keep ``"reference"`` unless throughput is
    the point.
    """
    if observe_mode not in ("reference", "batched"):
        raise ValueError("observe_mode must be 'reference' or 'batched'")
    head = RotationHead(np.random.default_rng(rng.integers(2**31)))
    tx_ids = testbed.tx_sector_ids
    noise_floor = testbed.budget.noise_floor_dbm
    recordings: List[RecordedDirection] = []

    for elevation in elevations_deg:
        head.set_tilt(float(elevation))
        orientations = []
        for azimuth in azimuths_deg:
            head.set_azimuth(-float(azimuth))
            orientations.append(head.orientation())

        true_matrix = sweep_snr_matrix(
            environment,
            testbed.dut_antenna,
            testbed.dut_codebook,
            tx_ids,
            orientations,
            testbed.ref_antenna,
            testbed.ref_codebook.rx_sector.weights,
            budget=testbed.budget,
        )

        for az_index, azimuth in enumerate(azimuths_deg):
            recording = RecordedDirection(
                azimuth_deg=wrap_azimuth(float(azimuth)),
                elevation_deg=float(elevation),
                true_snr_db=true_matrix[az_index].copy(),
            )
            if observe_mode == "batched":
                _record_sweeps_batched(
                    recording, testbed, environment, tx_ids, noise_floor, n_sweeps, rng
                )
            else:
                _record_sweeps_reference(
                    recording, testbed, environment, tx_ids, noise_floor, n_sweeps, rng
                )
            recordings.append(recording)
    return recordings


def _record_sweeps_reference(
    recording: RecordedDirection,
    testbed: Testbed,
    environment: Environment,
    tx_ids: Sequence[int],
    noise_floor: float,
    n_sweeps: int,
    rng: np.random.Generator,
) -> None:
    """One scalar ``observe`` per (sweep, sector) — the pinned stream."""
    for _ in range(n_sweeps):
        fade_db = (
            rng.normal(0.0, environment.shadowing_std_db)
            if environment.shadowing_std_db > 0
            else 0.0
        )
        sweep: Dict[int, ProbeMeasurement] = {}
        for column, sector_id in enumerate(tx_ids):
            observation = testbed.measurement_model.observe(
                recording.true_snr_db[column] + fade_db, noise_floor, rng
            )
            if observation is not None:
                sweep[sector_id] = ProbeMeasurement(
                    sector_id=sector_id,
                    snr_db=observation.snr_db,
                    rssi_dbm=observation.rssi_dbm,
                )
        recording.sweeps.append(sweep)


def _record_sweeps_batched(
    recording: RecordedDirection,
    testbed: Testbed,
    environment: Environment,
    tx_ids: Sequence[int],
    noise_floor: float,
    n_sweeps: int,
    rng: np.random.Generator,
) -> None:
    """One ``observe_batch`` over the whole (sweeps x sectors) block."""
    n_sectors = len(tx_ids)
    if environment.shadowing_std_db > 0:
        fades = rng.normal(0.0, environment.shadowing_std_db, n_sweeps)
    else:
        fades = np.zeros(n_sweeps)
    block = (recording.true_snr_db[np.newaxis, :] + fades[:, np.newaxis]).ravel()
    batch = testbed.measurement_model.observe_batch(block, noise_floor, rng)
    reported = batch.reported.reshape(n_sweeps, n_sectors)
    snr = batch.snr_db.reshape(n_sweeps, n_sectors)
    rssi = batch.rssi_dbm.reshape(n_sweeps, n_sectors)
    for row in range(n_sweeps):
        sweep: Dict[int, ProbeMeasurement] = {}
        for column in np.flatnonzero(reported[row]):
            sector_id = tx_ids[column]
            sweep[sector_id] = ProbeMeasurement(
                sector_id=sector_id,
                snr_db=float(snr[row, column]),
                rssi_dbm=float(rssi[row, column]),
            )
        recording.sweeps.append(sweep)


def random_subsweep(
    sweep: Dict[int, ProbeMeasurement],
    all_sector_ids: Sequence[int],
    n_probes: int,
    rng: np.random.Generator,
) -> List[ProbeMeasurement]:
    """The paper's offline compressive emulation.

    Draw ``n_probes`` random sectors from the full training set, then
    keep the measurements that actually exist for them in the recorded
    sweep — probed-but-unreported sectors stay missing, as they would
    in a live reduced sweep.
    """
    chosen = random_probe_columns(len(all_sector_ids), n_probes, rng)
    probe_ids = [all_sector_ids[index] for index in chosen]
    return [sweep[sector_id] for sector_id in probe_ids if sector_id in sweep]


def random_probe_columns(
    n_sectors: int, n_probes: int, rng: np.random.Generator
) -> np.ndarray:
    """The probe draw of :func:`random_subsweep` as column indices.

    Exactly one ``rng.choice`` call with the same arguments, so the
    batched experiment loops consume the stream identically to the
    scalar ones and pick the same probes for the same seed.
    """
    if n_probes > n_sectors:
        raise ValueError("cannot probe more sectors than exist")
    return rng.choice(n_sectors, size=n_probes, replace=False)


def pack_probe_trials(
    trials: Sequence[Sequence[ProbeMeasurement]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pad a list of scalar probe trials into batch-API arrays.

    Returns ``(sector_ids, snr_db, rssi_dbm, mask)``, each of shape
    ``(n_trials, max_len)``, with each trial's measurements in their
    original order and padded slots masked out (ids 0, values NaN) —
    the argument layout of ``AngleEstimator.estimate_batch`` and
    ``CompressiveSectorSelector.select_batch``.
    """
    n_trials = len(trials)
    width = max((len(trial) for trial in trials), default=0)
    sector_ids = np.zeros((n_trials, width), dtype=np.intp)
    snr = np.full((n_trials, width), np.nan)
    rssi = np.full((n_trials, width), np.nan)
    mask = np.zeros((n_trials, width), dtype=bool)
    for row, trial in enumerate(trials):
        for column, measurement in enumerate(trial):
            sector_ids[row, column] = measurement.sector_id
            snr[row, column] = measurement.snr_db
            rssi[row, column] = measurement.rssi_dbm
            mask[row, column] = True
    return sector_ids, snr, rssi, mask


@dataclass(frozen=True)
class BoxStats:
    """Median / 50 % box / 99 % whiskers, as drawn in Figure 7."""

    median: float
    box_low: float
    box_high: float
    whisker_low: float
    whisker_high: float
    n_samples: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxStats":
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise ValueError("cannot summarize an empty sample set")
        return cls(
            median=float(np.median(values)),
            box_low=float(np.percentile(values, 25)),
            box_high=float(np.percentile(values, 75)),
            whisker_low=float(np.percentile(values, 0.5)),
            whisker_high=float(np.percentile(values, 99.5)),
            n_samples=int(values.size),
        )
