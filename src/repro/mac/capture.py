"""Capture traces: persist monitor-mode frame captures (§4.1 workflow).

The paper captures beacon and SSW frames with tcpdump and dissects
them in Wireshark.  This module is the simulator's trace format: a
JSON-lines file where each record carries the capture timestamp, the
monitor's SNR reading, and the frame's exact wire bytes (hex).  Reading
a trace re-decodes the bytes through the real frame codecs — the same
dissect-from-the-wire workflow, reproducible offline.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from .frames import decode_frame
from .sweep import CapturedFrame

__all__ = ["save_capture", "load_capture", "capture_summary"]


def save_capture(captures: Iterable[CapturedFrame], path: str) -> int:
    """Write captured frames to a JSONL trace; returns the count."""
    count = 0
    with open(path, "w") as handle:
        for capture in captures:
            record = {
                "time_us": capture.time_us,
                "snr_db": capture.snr_db,
                "frame_hex": capture.frame.encode().hex(),
            }
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_capture(path: str) -> List[CapturedFrame]:
    """Read a trace back, re-decoding every frame from its wire bytes.

    Raises:
        ValueError: corrupt records or undecodable frame bytes.
    """
    captures: List[CapturedFrame] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                frame = decode_frame(bytes.fromhex(record["frame_hex"]))
                captures.append(
                    CapturedFrame(
                        time_us=float(record["time_us"]),
                        frame=frame,
                        snr_db=record.get("snr_db"),
                    )
                )
            except (KeyError, ValueError, TypeError) as error:
                raise ValueError(f"{path}:{line_number}: bad capture record: {error}")
    return captures


def capture_summary(captures: Iterable[CapturedFrame]) -> List[str]:
    """A tcpdump-style one-line-per-frame rendering of a trace."""
    rows: List[str] = []
    for capture in captures:
        frame = capture.frame
        kind = type(frame).__name__.replace("Frame", "")
        detail = ""
        if hasattr(frame, "sector_id"):
            detail = f"sector {frame.sector_id:2d} cdown {frame.cdown:2d}"
        elif hasattr(frame, "feedback"):
            detail = f"feedback sector {frame.feedback.sector_select:2d}"
        snr = "" if capture.snr_db is None else f" snr {capture.snr_db:5.2f} dB"
        rows.append(f"{capture.time_us:10.1f} us  {kind:11s} {detail}{snr}")
    return rows
