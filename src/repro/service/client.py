"""Small synchronous HTTP client for the selection service.

Used by the CLI (``repro-bench load`` result checks), the CI smoke job
and the tests.  Pure stdlib (:mod:`http.client`), one connection per
call — the *asynchronous* many-connection path lives in :mod:`.load`.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional, Tuple

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service answered with an unexpected status code."""

    def __init__(self, code: int, payload: Any):
        super().__init__(f"service returned {code}: {payload}")
        self.code = code
        self.payload = payload


class ServiceClient:
    """Talk to a running :class:`~repro.service.SelectionService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8780, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- raw ------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Any]:
        """One HTTP round-trip; JSON bodies in, parsed JSON (or text) out."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                return response.status, json.loads(raw.decode() or "null")
            return response.status, raw.decode()
        finally:
            connection.close()

    # -- typed helpers --------------------------------------------------

    def submit(self, spec_json: Dict[str, Any]) -> Dict[str, Any]:
        """POST a spec; returns the acceptance payload (raises on != 202)."""
        code, payload = self.request("POST", "/runs", spec_json)
        if code != 202:
            raise ServiceError(code, payload)
        return payload

    def status(self, run_id: str) -> Dict[str, Any]:
        code, payload = self.request("GET", f"/runs/{run_id}")
        if code != 200:
            raise ServiceError(code, payload)
        return payload

    def result(self, run_id: str) -> Dict[str, Any]:
        code, payload = self.request("GET", f"/runs/{run_id}/result")
        if code != 200:
            raise ServiceError(code, payload)
        return payload

    def retry(self, run_id: str, keep_faults: bool = False) -> Dict[str, Any]:
        code, payload = self.request(
            "POST", f"/runs/{run_id}/retry", {"keep_faults": keep_faults}
        )
        if code != 202:
            raise ServiceError(code, payload)
        return payload

    def metrics(self) -> str:
        code, payload = self.request("GET", "/metrics")
        if code != 200:
            raise ServiceError(code, payload)
        return payload

    def healthz(self) -> Dict[str, Any]:
        code, payload = self.request("GET", "/healthz")
        if code != 200:
            raise ServiceError(code, payload)
        return payload

    def wait(
        self, run_id: str, timeout: float = 120.0, poll_s: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the run leaves the queue/running states.

        Returns the final status payload; raises TimeoutError if the
        run is still in flight when the budget expires.
        """
        deadline = time.monotonic() + timeout
        while True:
            payload = self.status(run_id)
            if payload.get("status") in ("done", "failed"):
                return payload
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"run {run_id} still {payload.get('status')} after {timeout}s"
                )
            time.sleep(poll_s)
