"""Tests for the chamber measurement campaign (§4.2–§4.5)."""

import numpy as np
import pytest

from repro.channel import MeasurementModel
from repro.measurement import (
    CampaignConfig,
    PatternMeasurementCampaign,
    measure_3d_patterns,
    measure_azimuth_patterns,
)
from repro.phased_array import WEAK_SECTOR_IDS


@pytest.fixture(scope="module")
def campaign(testbed):
    return PatternMeasurementCampaign(
        testbed.dut_antenna,
        testbed.dut_codebook,
        reference_antenna=testbed.ref_antenna,
        reference_codebook=testbed.ref_codebook,
    )


@pytest.fixture(scope="module")
def coarse_table(campaign):
    config = CampaignConfig(
        azimuths_deg=np.arange(-90.0, 91.0, 7.5),
        elevations_deg=(0.0, 12.0, 24.0),
        n_sweeps=2,
    )
    return campaign.run(config, np.random.default_rng(99))


# Make the session testbed fixture visible at module scope.
@pytest.fixture(scope="module")
def testbed():
    from repro.experiments.common import build_testbed

    return build_testbed()


class TestCampaignConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(azimuths_deg=[0.0], n_sweeps=0)
        with pytest.raises(ValueError):
            CampaignConfig(azimuths_deg=[])

    def test_grid_built_from_axes(self):
        config = CampaignConfig(azimuths_deg=[-10.0, 0.0], elevations_deg=[0.0])
        assert config.grid.shape == (1, 2)


class TestCampaignRun:
    def test_covers_all_35_patterns(self, coarse_table, testbed):
        assert coarse_table.n_sectors == 35
        assert set(coarse_table.sector_ids) == set(testbed.dut_codebook.sector_ids)

    def test_no_gaps_after_processing(self, coarse_table):
        assert not coarse_table.has_gaps()

    def test_values_inside_reporting_window(self, coarse_table):
        for sector_id in coarse_table.sector_ids:
            pattern = coarse_table.pattern(sector_id)
            assert pattern.min() >= -7.0 - 1e-9
            assert pattern.max() <= 12.0 + 1e-9

    def test_attenuation_keeps_peaks_unclipped(self, coarse_table):
        """The calibrated attenuator must preserve the gain ranking."""
        peaks = [coarse_table.pattern(s).max() for s in coarse_table.sector_ids]
        assert max(peaks) < 12.0  # nothing pinned at the clip

    def test_strong_sector_dominates_its_direction(self, coarse_table, testbed):
        table_best = coarse_table.best_sector(0.0, 0.0)
        antenna = testbed.dut_antenna
        codebook = testbed.dut_codebook
        gains = {
            s: antenna.gain_db(codebook[s].weights, 0.0, 0.0)
            for s in codebook.tx_sector_ids
        }
        true_ranking = sorted(gains, key=gains.get, reverse=True)
        assert table_best in true_ranking[:3]

    def test_weak_sectors_stay_weak(self, coarse_table):
        strong_peak = coarse_table.pattern(63).max()
        for sector_id in WEAK_SECTOR_IDS:
            assert coarse_table.pattern(sector_id).max() < strong_peak - 4.0

    def test_deterministic_given_seed(self, campaign):
        config = CampaignConfig(
            azimuths_deg=np.arange(-30.0, 31.0, 15.0), elevations_deg=(0.0,), n_sweeps=1
        )
        first = campaign.run(config, np.random.default_rng(5))
        second = campaign.run(config, np.random.default_rng(5))
        np.testing.assert_allclose(first.pattern(63), second.pattern(63))

    def test_negative_attenuation_rejected(self, testbed):
        with pytest.raises(ValueError):
            PatternMeasurementCampaign(
                testbed.dut_antenna,
                testbed.dut_codebook,
                chamber_attenuation_db=-1.0,
            )


class TestPaperCampaigns:
    def test_fig5_grid(self, campaign):
        table = measure_azimuth_patterns(
            campaign, np.random.default_rng(1), azimuth_step_deg=18.0, n_sweeps=1
        )
        assert table.grid.n_elevation == 1
        assert table.grid.azimuths_deg[0] == -180.0
        assert table.grid.azimuths_deg[-1] == 180.0

    def test_fig6_grid(self, campaign):
        table = measure_3d_patterns(
            campaign,
            np.random.default_rng(1),
            azimuth_step_deg=18.0,
            elevation_step_deg=10.8,
            n_sweeps=1,
        )
        assert table.grid.azimuths_deg[0] == -90.0
        assert table.grid.azimuths_deg[-1] == 90.0
        assert table.grid.elevations_deg[0] == 0.0
        assert table.grid.elevations_deg[-1] == pytest.approx(32.4)
