"""Digest-keyed checkpoint journal: restartable scenario campaigns.

A :class:`CheckpointStore` journals every completed trial block of a
run to an append-only JSONL file keyed by the run's identity — the
scenario spec's SHA-256 digest plus its seed.  Kill a ``jobs=4``
campaign halfway and ``repro-bench run --resume`` restarts exactly
where it died: blocks already journaled are restored instead of
re-executed, and because block evaluation is pure (randomness is
consumed only during planning), restored results are bit-identical to
recomputed ones.

File format (one JSON object per line):

* line 1 — header: ``{"format": "repro-checkpoint", "version": 2,
  "spec_digest": ..., "seed": ...}``.  A header that does not match
  the resuming run is *stale* and the file is started fresh — a
  checkpoint can never leak results across specs or seeds.
* following lines — entries: ``{"key": "<policy-digest>:<call>:<block>",
  "sha256": ..., "payload": <base64 pickle of the block's results>}``.
  ``call`` is the ordinal of the supervised ``execute()`` call within
  the run, so a scenario that evaluates the *same* policy spec more
  than once (fig7 runs one CSS spec per environment) journals each
  evaluation under its own key instead of silently serving one
  environment's results as the other's.  Each payload carries its own
  digest; a corrupted or truncated tail (the likely outcome of a hard
  kill) is dropped with a warning and the journal continues from the
  last intact entry — corruption degrades to recomputation, never to
  wrong data.

Opening an existing journal of the *same* spec+seed with
``resume=False`` raises :class:`FileExistsError` instead of truncating
it: a journal the caller could have resumed is never destroyed by a
forgotten ``--resume`` flag.  Journals of a different spec, seed or
format version are overwritten freely.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from .. import obs as _obs

__all__ = ["CheckpointStore", "default_checkpoint_path", "journal_header"]

_LOGGER = logging.getLogger(__name__)

_FORMAT = "repro-checkpoint"
_VERSION = 2


def default_checkpoint_path(spec_digest: str, seed: int) -> Path:
    """Where a run of this spec+seed journals by convention."""
    from ..measurement.artifacts import cache_dir

    return cache_dir() / "checkpoints" / f"{spec_digest[:32]}-{seed}.jsonl"


def journal_header(path) -> Optional[Dict[str, Any]]:
    """The parsed header of a checkpoint journal, or None.

    Returns None for missing, unreadable or non-checkpoint files (any
    format version is accepted — GC only needs to know *whether* a file
    is one of ours, not whether it is resumable).
    """
    path = Path(path)
    if not path.is_file():
        return None
    try:
        with path.open("r", encoding="utf-8") as handle:
            first = handle.readline()
        header = json.loads(first)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return None
    if isinstance(header, dict) and header.get("format") == _FORMAT:
        return header
    return None


class CheckpointStore:
    """Append-only journal of completed block results for one run."""

    def __init__(
        self,
        path,
        spec_digest: str,
        seed: int,
        resume: bool = True,
        durable: bool = False,
    ):
        self.path = Path(path)
        # ``durable=True`` fsyncs the journal after the header and after
        # every entry.  ``flush()`` alone only reaches the OS page
        # cache; a power loss can tear entries a long-lived service
        # already acknowledged as journaled.  CLI runs keep the cheap
        # flush-only default (a torn tail degrades to recomputation via
        # the corrupt-tail drop); the service path opts in.
        self.durable = bool(durable)
        self._header = {
            "format": _FORMAT,
            "version": _VERSION,
            "spec_digest": str(spec_digest),
            "seed": int(seed),
        }
        self._entries: Dict[str, str] = {}
        self.restored = 0
        #: Byte offset of the end of the last intact journal line; set
        #: by ``_load`` so a dropped tail can be physically removed.
        self._valid_end = 0
        self._tail_dropped = False
        loaded = resume and self._load()
        if not resume and self._matching_journal_exists():
            raise FileExistsError(
                f"checkpoint {self.path} already journals this spec+seed; "
                f"pass --resume to continue it, or delete the file to "
                f"start the campaign over"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if loaded:
            if self._tail_dropped:
                # Appending after a torn line would glue the next entry
                # onto the fragment and corrupt it too — cut the file
                # back to the last intact entry before continuing.
                with self.path.open("rb+") as repair:
                    repair.truncate(self._valid_end)
                    if self.durable:
                        os.fsync(repair.fileno())
            self._handle = self.path.open("a", encoding="utf-8")
        else:
            self._handle = self.path.open("w", encoding="utf-8")
            self._handle.write(json.dumps(self._header, sort_keys=True) + "\n")
            self._sync()
        self.restored = len(self._entries)

    def _sync(self) -> None:
        """Flush the journal; in durable mode, force it to stable storage."""
        self._handle.flush()
        if self.durable:
            os.fsync(self._handle.fileno())

    # -- identity -------------------------------------------------------

    @staticmethod
    def entry_key(policy_key: str, call_index: int, block_index: int) -> str:
        """Journal key of one block.

        ``call_index`` is the ordinal of the supervised ``execute()``
        call within the run — without it, two evaluations of an
        identical policy spec (same digest, same block indices) would
        collide and ``get`` would serve the first evaluation's results
        as the second's.
        """
        policy_digest = hashlib.sha256(policy_key.encode()).hexdigest()[:16]
        return f"{policy_digest}:{int(call_index)}:{int(block_index)}"

    # -- journal I/O ----------------------------------------------------

    def _matching_journal_exists(self) -> bool:
        """True when ``path`` already journals this exact spec+seed."""
        if not self.path.is_file():
            return False
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                first = handle.readline()
            return json.loads(first) == self._header
        except (OSError, json.JSONDecodeError):
            return False

    def _load(self) -> bool:
        """Read an existing journal; False means start fresh."""
        if not self.path.is_file():
            return False
        try:
            data = self.path.read_text(encoding="utf-8")
            lines = data.splitlines()
        except (OSError, UnicodeDecodeError) as error:
            _LOGGER.warning("unreadable checkpoint %s (%s); starting fresh", self.path, error)
            return False
        if not lines:
            return False
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
        if header != self._header:
            _LOGGER.warning(
                "checkpoint %s belongs to a different spec/seed; starting fresh",
                self.path,
            )
            return False
        if len(lines) == 1 and not data.endswith("\n"):
            return False  # torn header line alone — start fresh
        self._valid_end = len(lines[0].encode("utf-8")) + 1
        size = len(data.encode("utf-8"))
        for number, line in enumerate(lines[1:], start=2):
            if self._valid_end + len(line.encode("utf-8")) + 1 > size:
                # Torn exactly at the line break: the text may parse,
                # but an unterminated line must not be appended after.
                _LOGGER.warning(
                    "checkpoint %s: line %d is not newline-terminated; "
                    "dropping tail",
                    self.path,
                    number,
                )
                self._tail_dropped = True
                break
            try:
                entry = json.loads(line)
                key = entry["key"]
                payload = entry["payload"]
                digest = entry["sha256"]
            except (json.JSONDecodeError, KeyError, TypeError):
                _LOGGER.warning(
                    "checkpoint %s: dropping corrupt journal tail from line %d",
                    self.path,
                    number,
                )
                self._tail_dropped = True
                break
            if hashlib.sha256(payload.encode()).hexdigest() != digest:
                _LOGGER.warning(
                    "checkpoint %s: entry at line %d fails its digest; dropping tail",
                    self.path,
                    number,
                )
                self._tail_dropped = True
                break
            self._entries[key] = payload
            self._valid_end += len(line.encode("utf-8")) + 1
        return True

    def get(
        self, policy_key: str, call_index: int, block_index: int
    ) -> Optional[Sequence[Any]]:
        """The journaled results of one block, or None when absent."""
        payload = self._entries.get(self.entry_key(policy_key, call_index, block_index))
        if payload is None:
            _obs.inc("checkpoint_misses_total")
            return None
        try:
            results = pickle.loads(base64.b64decode(payload))
        except Exception as error:  # digest passed but unpickle failed
            _LOGGER.warning(
                "checkpoint %s: undecodable entry for block %d (%s); recomputing",
                self.path,
                block_index,
                error,
            )
            _obs.inc("checkpoint_misses_total")
            return None
        _obs.inc("checkpoint_entries_served_total")
        return results

    def put(
        self, policy_key: str, call_index: int, block_index: int, results: Sequence[Any]
    ) -> None:
        """Journal one completed block (flushed immediately)."""
        key = self.entry_key(policy_key, call_index, block_index)
        if key in self._entries:
            return
        payload = base64.b64encode(pickle.dumps(results)).decode("ascii")
        entry = {
            "key": key,
            "sha256": hashlib.sha256(payload.encode()).hexdigest(),
            "payload": payload,
        }
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._sync()
        self._entries[key] = payload
        _obs.inc("checkpoint_entries_journaled_total")

    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
