"""Asyncio HTTP front-end for the scenario runtime (DESIGN.md §11).

Architecture — three decoupled stages, each with an explicit bound:

* **Admission** (event loop): ``POST /runs`` parses and validates the
  :class:`~repro.runtime.ScenarioSpec` JSON, computes its digest, and
  enqueues a :class:`RunRecord` onto a bounded :class:`asyncio.Queue`.
  A full queue rejects with ``429 Too Many Requests`` + ``Retry-After``
  instead of buffering without limit — backpressure is the contract,
  not a failure mode.
* **Execution** (worker pool): ``ServiceConfig.workers`` asyncio tasks
  each own one long-lived :class:`~repro.runtime.ScenarioRunner` and
  drain the queue, running each spec on a thread executor so the event
  loop stays responsive while numpy crunches.  Every run gets its own
  fsync-durable checkpoint journal (keyed by *run id*, never by digest
  alone, so concurrent submissions of the same spec cannot collide)
  and its own :class:`~repro.obs.ObsSession` (the session context is a
  ``ContextVar``, so concurrent runs cannot interleave buffers).
* **Retention** (event loop): finished records keep their manifest and
  sanitized result JSON in a bounded history (oldest evicted, journals
  unlinked), so a service hammered with thousands of submissions holds
  memory and disk constant.

Durability contract: a block the service has journaled survives power
loss (``durable=True`` fsyncs), a run killed mid-flight resumes from
its journal via ``POST /runs/<id>/retry``, and a completed run's
``result_sha256`` is bit-identical to the same spec+seed run through
``repro-bench run`` — the front-end changes *how* runs are scheduled,
never *what* they compute.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple

from .. import obs as _obs
from ..obs.metrics import MetricsRegistry
from ..runtime import RetryPolicy, ScenarioRunner, ScenarioSpec

__all__ = ["RunRecord", "SelectionService", "ServiceConfig", "serve"]

_LOGGER = logging.getLogger(__name__)

#: Protocol cap on one request head line / header line.
_MAX_LINE_BYTES = 16 * 1024
#: Protocol cap on the number of request headers.
_MAX_HEADERS = 64


def _utcnow() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass(frozen=True)
class ServiceConfig:
    """Every operational knob of the selection service.

    Attributes:
        host / port: bind address (port 0 picks an ephemeral port).
        workers: worker tasks (= concurrent in-flight runs); each owns
            one reused :class:`~repro.runtime.ScenarioRunner`.
        queue_depth: admission bound — submissions past this many
            *queued* (not yet running) runs get 429.
        jobs: process-pool width inside each run (1 = in-process; the
            service's parallelism axis is across runs, not within one).
        max_attempts / backoff_s / timeout_s: per-block supervision
            passed to every runner (see DESIGN.md §9).
        durable: fsync checkpoint journals (the service default; see
            :class:`~repro.runtime.checkpoint.CheckpointStore`).
        checkpoint_dir: journal directory (default: the artifact cache
            dir under ``service/``).
        history_limit: finished runs retained in memory; older records
            (and their journals) are evicted.
        max_body_bytes: request-body cap (413 beyond it).
    """

    host: str = "127.0.0.1"
    port: int = 8780
    workers: int = 2
    queue_depth: int = 64
    jobs: int = 1
    max_attempts: int = 3
    backoff_s: float = 0.05
    timeout_s: Optional[float] = None
    durable: bool = True
    checkpoint_dir: Optional[str] = None
    history_limit: int = 512
    max_body_bytes: int = 1024 * 1024

    def resolved_checkpoint_dir(self) -> Path:
        if self.checkpoint_dir is not None:
            return Path(self.checkpoint_dir)
        from ..measurement.artifacts import cache_dir

        return cache_dir() / "service"


@dataclass
class RunRecord:
    """One submitted run, from admission to retention."""

    id: str
    scenario: str
    spec_digest: str
    seed: int
    spec_json: Dict[str, Any]
    status: str = "queued"  # queued | running | done | failed
    submitted: str = ""
    started: str = ""
    finished: str = ""
    attempts: int = 0
    error: str = ""
    checkpoint_path: str = ""
    manifest: Dict[str, Any] = field(default_factory=dict)
    result: Optional[Dict[str, Any]] = None

    def summary(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "scenario": self.scenario,
            "spec_digest": self.spec_digest,
            "seed": self.seed,
            "status": self.status,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "error": self.error,
            "result_sha256": self.manifest.get("result_sha256", ""),
        }

    def detail(self) -> Dict[str, Any]:
        data = self.summary()
        data["checkpoint"] = self.checkpoint_path
        data["manifest"] = self.manifest
        return data


# ----------------------------------------------------------------------
# Minimal HTTP/1.1 plumbing (stdlib asyncio streams only).
# ----------------------------------------------------------------------

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


@dataclass
class _Request:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    @property
    def close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


class _ProtocolError(Exception):
    """Malformed request; carries the status code to answer with."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code


async def _read_request(
    reader: asyncio.StreamReader, max_body: int
) -> Optional[_Request]:
    """Parse one HTTP/1.1 request, or None on a clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > _MAX_LINE_BYTES:
        raise _ProtocolError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _ProtocolError(400, "malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADERS + 1):
        line = await reader.readline()
        if not line:
            raise _ProtocolError(400, "truncated headers")
        if line in (b"\r\n", b"\n"):
            break
        if len(line) > _MAX_LINE_BYTES:
            raise _ProtocolError(400, "header line too long")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _ProtocolError(400, "too many headers")
    if headers.get("transfer-encoding"):
        raise _ProtocolError(400, "chunked request bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _ProtocolError(400, "bad content-length") from None
    if length < 0:
        raise _ProtocolError(400, "bad content-length")
    if length > max_body:
        raise _ProtocolError(413, f"request body exceeds {max_body} bytes")
    body = await reader.readexactly(length) if length else b""
    return _Request(method=method, path=path, headers=headers, body=body)


def _encode_response(
    code: int,
    body: bytes,
    content_type: str,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    head = [
        f"HTTP/1.1 {code} {_REASONS.get(code, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    head.append("\r\n")
    return "\r\n".join(head).encode("latin-1") + body


def _json_body(code: int, payload: Any, *extra: Tuple[str, str]) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return _encode_response(code, body, "application/json", tuple(extra))


def _text_body(code: int, text: str) -> bytes:
    return _encode_response(
        code, text.encode(), "text/plain; version=0.0.4; charset=utf-8"
    )


# ----------------------------------------------------------------------
# The service.
# ----------------------------------------------------------------------


class SelectionService:
    """Long-lived scenario-execution service over asyncio HTTP.

    Lifecycle::

        service = SelectionService(ServiceConfig(port=0))
        await service.start()        # binds; service.port is now real
        ...
        await service.stop()

    All shared state (records, queue, metric registries) is touched only
    from the event-loop thread; executor threads hand results back
    through the worker coroutines.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.port: int = self.config.port
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._workers: List[asyncio.Task] = []
        self._queue: "asyncio.Queue[RunRecord]" = asyncio.Queue(
            maxsize=max(1, self.config.queue_depth)
        )
        self._runs: Dict[str, RunRecord] = {}
        self._finished: Deque[str] = deque()
        self._sequence = 0
        self._inflight = 0
        self._started_at = 0.0
        #: Service-plane metrics (admission, HTTP, run latency).
        self.metrics = MetricsRegistry()
        #: Cumulative data-plane metrics folded from every finished
        #: run's ObsSession snapshot (counters/histograms add).
        self.run_metrics = MetricsRegistry()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("service already started")
        self.config.resolved_checkpoint_dir().mkdir(parents=True, exist_ok=True)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service-run",
        )
        self._workers = [
            asyncio.get_running_loop().create_task(self._worker_loop(index))
            for index in range(self.config.workers)
        ]
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        _LOGGER.info(
            "selection service listening on %s:%d (%d workers, queue %d)",
            self.config.host,
            self.port,
            self.config.workers,
            self.config.queue_depth,
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._workers:
            task.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # -- HTTP dispatch ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader, self.config.max_body_bytes)
                except _ProtocolError as error:
                    writer.write(
                        _json_body(error.code, {"error": str(error)})
                    )
                    await writer.drain()
                    break
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if request.close:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _dispatch(self, request: _Request) -> bytes:
        route, response = await self._route(request)
        code = int(response.split(b" ", 2)[1])
        self.metrics.inc("service_http_requests_total", route=route, code=code)
        return response

    async def _route(self, request: _Request) -> Tuple[str, bytes]:
        method, path = request.method, request.path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return "healthz", _json_body(200, self._healthz())
        if path == "/metrics" and method == "GET":
            return "metrics", _text_body(200, self._render_metrics())
        if path == "/runs" and method == "POST":
            return "submit", self._submit(request.body)
        if path == "/runs" and method == "GET":
            return "list", _json_body(
                200, {"runs": [self._runs[rid].summary() for rid in self._runs]}
            )
        if path.startswith("/runs/"):
            tail = path[len("/runs/"):]
            if tail.endswith("/retry") and method == "POST":
                return "retry", self._retry(tail[: -len("/retry")], request.body)
            if tail.endswith("/result") and method == "GET":
                return "result", self._result(tail[: -len("/result")])
            if method == "GET":
                record = self._runs.get(tail)
                if record is None:
                    return "status", _json_body(404, {"error": f"no run '{tail}'"})
                return "status", _json_body(200, record.detail())
        if path == "/" and method == "GET":
            return "index", _json_body(
                200,
                {
                    "service": "repro-selection-service",
                    "routes": [
                        "POST /runs",
                        "GET /runs",
                        "GET /runs/<id>",
                        "GET /runs/<id>/result",
                        "POST /runs/<id>/retry",
                        "GET /metrics",
                        "GET /healthz",
                    ],
                },
            )
        return "unknown", _json_body(
            405 if path in ("/runs", "/metrics", "/healthz", "/") else 404,
            {"error": f"no route for {method} {path}"},
        )

    # -- admission -------------------------------------------------------

    def _submit(self, body: bytes) -> bytes:
        try:
            data = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError):
            self.metrics.inc("service_submissions_total", outcome="invalid")
            return _json_body(400, {"error": "request body is not valid JSON"})
        if not isinstance(data, dict):
            self.metrics.inc("service_submissions_total", outcome="invalid")
            return _json_body(400, {"error": "request body must be a spec object"})
        try:
            spec = ScenarioSpec.from_json(data)
            from ..runtime.registry import get_scenario

            get_scenario(spec.scenario)
        except (KeyError, TypeError, ValueError) as error:
            self.metrics.inc("service_submissions_total", outcome="invalid")
            return _json_body(400, {"error": f"invalid scenario spec: {error}"})

        digest = spec.digest()
        self._sequence += 1
        run_id = f"r{self._sequence:06d}-{digest[:8]}"
        record = RunRecord(
            id=run_id,
            scenario=spec.scenario,
            spec_digest=digest,
            seed=spec.seed,
            spec_json=spec.to_json(),
            submitted=_utcnow(),
            checkpoint_path=str(
                self.config.resolved_checkpoint_dir() / f"{run_id}.jsonl"
            ),
        )
        try:
            self._queue.put_nowait(record)
        except asyncio.QueueFull:
            self.metrics.inc("service_submissions_total", outcome="rejected")
            self._update_gauges()
            return _json_body(
                429,
                {
                    "error": "run queue is full",
                    "queue_depth": self._queue.qsize(),
                    "queue_limit": self.config.queue_depth,
                },
                ("Retry-After", "1"),
            )
        self._runs[run_id] = record
        self.metrics.inc("service_submissions_total", outcome="accepted")
        self._update_gauges()
        return _json_body(
            202,
            {
                "run": run_id,
                "spec_digest": digest,
                "status": record.status,
                "queue_depth": self._queue.qsize(),
            },
        )

    def _retry(self, run_id: str, body: bytes) -> bytes:
        record = self._runs.get(run_id)
        if record is None:
            return _json_body(404, {"error": f"no run '{run_id}'"})
        if record.status in ("queued", "running"):
            return _json_body(409, {"error": f"run '{run_id}' is {record.status}"})
        options: Dict[str, Any] = {}
        if body:
            try:
                options = json.loads(body.decode())
            except (json.JSONDecodeError, UnicodeDecodeError):
                return _json_body(400, {"error": "retry body is not valid JSON"})
        # A retry recovers from an interrupted/failed execution by
        # resuming the durable journal; an injected fault-plan overlay
        # describes the *failure experiment*, so replaying it would
        # deterministically fail again — drop it unless asked not to.
        if options.get("keep_faults") is not True:
            record.spec_json.pop("faults", None)
        try:
            self._queue.put_nowait(record)
        except asyncio.QueueFull:
            return _json_body(
                429, {"error": "run queue is full"}, ("Retry-After", "1")
            )
        record.status = "queued"
        record.error = ""
        self._finished = deque(rid for rid in self._finished if rid != run_id)
        self.metrics.inc("service_submissions_total", outcome="retried")
        self._update_gauges()
        return _json_body(
            202, {"run": run_id, "status": "queued", "resume": True}
        )

    def _result(self, run_id: str) -> bytes:
        record = self._runs.get(run_id)
        if record is None:
            return _json_body(404, {"error": f"no run '{run_id}'"})
        if record.status != "done" or record.result is None:
            return _json_body(
                404,
                {"error": f"run '{run_id}' has no result (status {record.status})"},
            )
        return _json_body(200, {"run": run_id, "result": record.result})

    # -- execution -------------------------------------------------------

    def _make_runner(self) -> ScenarioRunner:
        return ScenarioRunner(
            jobs=self.config.jobs,
            retry=RetryPolicy(
                max_attempts=self.config.max_attempts,
                backoff_base_s=self.config.backoff_s,
                timeout_s=self.config.timeout_s,
            ),
            durable=self.config.durable,
        )

    async def _worker_loop(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        runner = self._make_runner()
        try:
            while True:
                record = await self._queue.get()
                self._inflight += 1
                record.status = "running"
                record.started = _utcnow()
                record.attempts += 1
                self._update_gauges()
                begin = time.perf_counter()
                try:
                    manifest, result, metrics_snapshot = await loop.run_in_executor(
                        self._executor, self._execute, runner, record
                    )
                except Exception as error:
                    record.status = "failed"
                    record.error = f"{type(error).__name__}: {error}"
                    self.metrics.inc(
                        "service_runs_total",
                        scenario=record.scenario,
                        status="failed",
                    )
                    _LOGGER.warning(
                        "run %s (%s) failed: %s",
                        record.id,
                        record.scenario,
                        record.error,
                    )
                else:
                    record.status = "done"
                    record.manifest = manifest
                    record.result = result
                    self.run_metrics.merge(metrics_snapshot)
                    self.metrics.inc(
                        "service_runs_total",
                        scenario=record.scenario,
                        status="done",
                    )
                    self._discard_journal(record)
                finally:
                    record.finished = _utcnow()
                    self.metrics.observe(
                        "service_run_seconds",
                        time.perf_counter() - begin,
                        scenario=record.scenario,
                    )
                    self._inflight -= 1
                    self._finished.append(record.id)
                    self._evict_history()
                    self._update_gauges()
                    self._queue.task_done()
        except asyncio.CancelledError:
            pass
        finally:
            runner.close()

    def _execute(
        self, runner: ScenarioRunner, record: RunRecord
    ) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]], Dict[str, Any]]:
        """Run one record on an executor thread (no shared-state access).

        ``resume=True`` is unconditional: a fresh run id has no journal
        (so it starts clean), while a retried record picks up exactly
        the blocks its previous attempt journaled.
        """
        spec = ScenarioSpec.from_json(record.spec_json)
        session = _obs.ObsSession()
        outcome = runner.run(
            spec,
            checkpoint=record.checkpoint_path,
            resume=True,
            obs=session,
        )
        manifest = outcome.manifest.to_json()
        result: Optional[Dict[str, Any]] = None
        try:
            from ..experiments.io import result_to_dict

            result = result_to_dict(outcome.result)
        except TypeError:
            result = None
        return manifest, result, session.metrics.snapshot()

    # -- retention / introspection --------------------------------------

    def _discard_journal(self, record: RunRecord) -> None:
        """A completed run's journal has served its purpose — drop it."""
        try:
            Path(record.checkpoint_path).unlink(missing_ok=True)
        except OSError:  # pragma: no cover - non-fatal cleanup race
            pass

    def _evict_history(self) -> None:
        while len(self._finished) > max(0, self.config.history_limit):
            run_id = self._finished.popleft()
            record = self._runs.pop(run_id, None)
            if record is not None:
                self._discard_journal(record)

    def _update_gauges(self) -> None:
        self.metrics.set_gauge("service_queue_depth", self._queue.qsize())
        self.metrics.set_gauge("service_runs_inflight", self._inflight)
        self.metrics.set_gauge("service_runs_retained", len(self._runs))

    def _status_counts(self) -> Dict[str, int]:
        counts = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for record in self._runs.values():
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def _healthz(self) -> Dict[str, Any]:
        counts = self._status_counts()
        active = [
            record.summary()
            for record in self._runs.values()
            if record.status in ("queued", "running")
        ]
        degraded = counts["failed"] > 0
        return {
            "status": "degraded" if degraded else "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": self.config.workers,
            "queue": {
                "depth": self._queue.qsize(),
                "limit": self.config.queue_depth,
            },
            "inflight": self._inflight,
            "runs": counts,
            "active": active,
            "durable": self.config.durable,
        }

    def _render_metrics(self) -> str:
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        merged.merge(self.run_metrics.snapshot())
        return merged.render_prometheus()


async def serve(config: Optional[ServiceConfig] = None) -> None:
    """Run the service until cancelled (the ``repro-bench serve`` body)."""
    service = SelectionService(config)
    await service.start()
    print(
        f"selection service listening on "
        f"http://{service.config.host}:{service.port}",
        flush=True,
    )
    try:
        await service.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        await service.stop()
