"""Measured sector-pattern tables.

A :class:`PatternTable` stores, for every sector, the measured SNR
pattern over a rectangular (azimuth × elevation) rotation grid — the
direct analogue of the data behind Figures 5 and 6 of the paper and the
`x_n(φ, θ)` terms of Eqs. 2–4.  Tables interpolate bilinearly between
grid points and persist to ``.npz`` files like the published
measurement data.
"""

from __future__ import annotations

import hashlib
import zipfile
import zlib
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..geometry.grid import AngularGrid
from .errors import ArtifactCorruptError, ArtifactMissingError, ArtifactSchemaError

__all__ = ["PatternTable"]

#: Metadata keys every saved table must carry besides its patterns.
_REQUIRED_KEYS = ("azimuths_deg", "elevations_deg", "sector_ids")

ArrayLike = Union[float, np.ndarray]


class PatternTable:
    """Per-sector gain patterns over an angular grid.

    Attributes:
        grid: the angular sampling grid.
        patterns: map sector ID → array of shape ``grid.shape``
            (``(n_elevation, n_azimuth)``); values are measured SNR in
            dB.  ``NaN`` marks gaps (before interpolation).
    """

    def __init__(self, grid: AngularGrid, patterns: Dict[int, np.ndarray]):
        if not patterns:
            raise ValueError("a pattern table needs at least one sector")
        self.grid = grid
        self.patterns: Dict[int, np.ndarray] = {}
        for sector_id, values in patterns.items():
            array = np.asarray(values, dtype=float)
            if array.shape != grid.shape:
                raise ValueError(
                    f"sector {sector_id}: pattern shape {array.shape} does not "
                    f"match grid shape {grid.shape}"
                )
            self.patterns[int(sector_id)] = array

    @property
    def sector_ids(self) -> List[int]:
        """Sector IDs in insertion order."""
        return list(self.patterns)

    @property
    def n_sectors(self) -> int:
        return len(self.patterns)

    def pattern(self, sector_id: int) -> np.ndarray:
        try:
            return self.patterns[sector_id]
        except KeyError:
            raise KeyError(f"no measured pattern for sector {sector_id}") from None

    def has_gaps(self) -> bool:
        """True if any pattern still contains NaN gaps."""
        return any(np.isnan(values).any() for values in self.patterns.values())

    def digest(self) -> str:
        """SHA-256 over the grid axes and every sector pattern.

        Tables are treated as immutable once built, so the digest is
        computed lazily on first use and memoized — it identifies the
        table across processes (unlike ``id()``), which is what keys
        the probe-design cache in :mod:`repro.core.probes`.
        """
        cached = getattr(self, "_digest", None)
        if cached is not None:
            return cached
        hasher = hashlib.sha256()
        hasher.update(np.ascontiguousarray(self.grid.azimuths_deg, dtype=float))
        hasher.update(np.ascontiguousarray(self.grid.elevations_deg, dtype=float))
        for sector_id in self.sector_ids:
            hasher.update(str(sector_id).encode())
            hasher.update(np.ascontiguousarray(self.patterns[sector_id], dtype=float))
        digest = hasher.hexdigest()
        self._digest = digest
        return digest

    # ------------------------------------------------------------------
    # Interpolation.
    # ------------------------------------------------------------------

    def _interpolate(
        self, values: np.ndarray, azimuth_deg: ArrayLike, elevation_deg: ArrayLike
    ) -> np.ndarray:
        azimuths = np.atleast_1d(np.asarray(azimuth_deg, dtype=float))
        elevations = np.atleast_1d(np.asarray(elevation_deg, dtype=float))
        azimuths, elevations = np.broadcast_arrays(azimuths, elevations)

        az_axis = self.grid.azimuths_deg
        el_axis = self.grid.elevations_deg
        az_clipped = np.clip(azimuths, az_axis[0], az_axis[-1])
        el_clipped = np.clip(elevations, el_axis[0], el_axis[-1])

        az_hi = np.clip(np.searchsorted(az_axis, az_clipped), 1, max(az_axis.size - 1, 1))
        el_hi = np.clip(np.searchsorted(el_axis, el_clipped), 1, max(el_axis.size - 1, 1))
        az_lo = az_hi - 1
        el_lo = el_hi - 1

        if az_axis.size == 1:
            az_lo = az_hi = np.zeros_like(az_hi)
            az_fraction = np.zeros_like(az_clipped)
        else:
            az_fraction = (az_clipped - az_axis[az_lo]) / (az_axis[az_hi] - az_axis[az_lo])
        if el_axis.size == 1:
            el_lo = el_hi = np.zeros_like(el_hi)
            el_fraction = np.zeros_like(el_clipped)
        else:
            el_fraction = (el_clipped - el_axis[el_lo]) / (el_axis[el_hi] - el_axis[el_lo])

        v00 = values[el_lo, az_lo]
        v01 = values[el_lo, az_hi]
        v10 = values[el_hi, az_lo]
        v11 = values[el_hi, az_hi]
        top = v00 * (1.0 - az_fraction) + v01 * az_fraction
        bottom = v10 * (1.0 - az_fraction) + v11 * az_fraction
        return top * (1.0 - el_fraction) + bottom * el_fraction

    def gain(self, sector_id: int, azimuth_deg: ArrayLike, elevation_deg: ArrayLike) -> ArrayLike:
        """Measured gain of one sector, bilinearly interpolated."""
        result = self._interpolate(self.pattern(sector_id), azimuth_deg, elevation_deg)
        if np.ndim(azimuth_deg) == 0 and np.ndim(elevation_deg) == 0:
            return float(result.ravel()[0])
        return result

    def vector(
        self,
        azimuth_deg: float,
        elevation_deg: float,
        sector_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Expected pattern vector x(φ, θ) across sectors (Eq. 2)."""
        if sector_ids is None:
            sector_ids = self.sector_ids
        return np.array(
            [self.gain(sector_id, azimuth_deg, elevation_deg) for sector_id in sector_ids]
        )

    def sample_matrix(
        self, grid: AngularGrid, sector_ids: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Patterns resampled on a search grid.

        Returns an array of shape ``(n_sectors, grid.n_points)`` — the
        matrix the correlation kernel multiplies against, with grid
        points flattened in C order over ``grid.shape``.
        """
        if sector_ids is None:
            sector_ids = self.sector_ids
        azimuths, elevations = grid.flat_angles()
        matrix = np.empty((len(sector_ids), grid.n_points))
        for row, sector_id in enumerate(sector_ids):
            matrix[row] = self._interpolate(self.pattern(sector_id), azimuths, elevations)
        return matrix

    def best_sector(
        self,
        azimuth_deg: float,
        elevation_deg: float,
        sector_ids: Optional[Sequence[int]] = None,
    ) -> int:
        """Sector with the highest measured gain at a direction (Eq. 4)."""
        if sector_ids is None:
            sector_ids = self.sector_ids
        gains = self.vector(azimuth_deg, elevation_deg, sector_ids)
        return int(sector_ids[int(np.argmax(gains))])

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the table to an ``.npz`` file."""
        arrays = {
            "azimuths_deg": self.grid.azimuths_deg,
            "elevations_deg": self.grid.elevations_deg,
            "sector_ids": np.array(self.sector_ids, dtype=int),
        }
        for sector_id in self.sector_ids:
            arrays[f"pattern_{sector_id}"] = self.patterns[sector_id]
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str) -> "PatternTable":
        """Load a table written by :meth:`save`.

        Raises:
            ArtifactMissingError: no file at ``path``.
            ArtifactCorruptError: the bytes are damaged (truncated zip,
                bit flips, broken deflate streams, non-npz content).
            ArtifactSchemaError: the archive is readable but does not
                contain a valid pattern table (missing keys, wrong
                shapes or dtypes); the message names the offending key.
        """
        try:
            handle = np.load(path)
        except FileNotFoundError as error:
            raise ArtifactMissingError(f"pattern table not found: {path}") from error
        except (zipfile.BadZipFile, zlib.error, EOFError, OSError, ValueError) as error:
            raise ArtifactCorruptError(
                f"pattern table '{path}' is not a readable .npz archive: {error}"
            ) from error
        with handle as data:
            return cls._from_npz(data, source=str(path))

    @classmethod
    def _from_npz(cls, data, source: str) -> "PatternTable":
        """Validate and build a table from an open npz mapping."""

        def read(key: str) -> np.ndarray:
            if key not in data.files:
                raise ArtifactSchemaError(
                    f"pattern table '{source}' is missing required key '{key}'"
                )
            try:
                return data[key]
            except (zipfile.BadZipFile, zlib.error, EOFError, OSError, ValueError) as error:
                raise ArtifactCorruptError(
                    f"pattern table '{source}': array '{key}' is unreadable: {error}"
                ) from error

        arrays = {key: read(key) for key in _REQUIRED_KEYS}
        for key in ("azimuths_deg", "elevations_deg"):
            axis = arrays[key]
            if axis.ndim != 1 or not np.issubdtype(axis.dtype, np.number):
                raise ArtifactSchemaError(
                    f"pattern table '{source}': key '{key}' must be a 1-D numeric "
                    f"axis, got shape {axis.shape} dtype {axis.dtype}"
                )
        sector_ids = arrays["sector_ids"]
        if sector_ids.ndim != 1 or not np.issubdtype(sector_ids.dtype, np.integer):
            raise ArtifactSchemaError(
                f"pattern table '{source}': key 'sector_ids' must be a 1-D integer "
                f"array, got shape {sector_ids.shape} dtype {sector_ids.dtype}"
            )
        try:
            grid = AngularGrid(arrays["azimuths_deg"], arrays["elevations_deg"])
        except ValueError as error:
            raise ArtifactSchemaError(
                f"pattern table '{source}': invalid angular axes: {error}"
            ) from error

        patterns: Dict[int, np.ndarray] = {}
        for sector_id in sector_ids:
            key = f"pattern_{int(sector_id)}"
            values = read(key)
            if not np.issubdtype(values.dtype, np.number):
                raise ArtifactSchemaError(
                    f"pattern table '{source}': key '{key}' has non-numeric "
                    f"dtype {values.dtype}"
                )
            if values.shape != grid.shape:
                raise ArtifactSchemaError(
                    f"pattern table '{source}': key '{key}' has shape "
                    f"{values.shape} but the grid implies {grid.shape}"
                )
            patterns[int(sector_id)] = values
        if not patterns:
            raise ArtifactSchemaError(
                f"pattern table '{source}': 'sector_ids' lists no sectors"
            )
        return cls(grid, patterns)
