"""Result serialization: every experiment result to/from JSON.

Downstream users want the series, not the prose — this module turns
any experiment result dataclass into plain JSON (numpy scalars and
arrays included) so results can be archived, diffed across runs, or
plotted elsewhere.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

import numpy as np

__all__ = ["result_to_dict", "dump_result_json", "load_result_json"]


def _sanitize(value: Any) -> Any:
    """Recursively convert a result object into JSON-encodable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _sanitize(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(key): _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot serialize {type(value).__name__} into a result JSON")


def result_to_dict(result: Any) -> Dict[str, Any]:
    """Convert an experiment result (dataclass) to a plain dict."""
    if not dataclasses.is_dataclass(result) or isinstance(result, type):
        raise TypeError("expected a dataclass result object")
    return _sanitize(result)


def dump_result_json(result: Any, path: str) -> None:
    """Write a result to ``path`` as pretty-printed JSON.

    The experiment's class name is recorded under ``"experiment"`` so
    archives stay self-describing.
    """
    payload = {
        "experiment": type(result).__name__,
        "data": result_to_dict(result),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_result_json(path: str) -> Dict[str, Any]:
    """Read back a result archive written by :func:`dump_result_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    if "experiment" not in payload or "data" not in payload:
        raise ValueError(f"{path} is not a result archive")
    return payload
