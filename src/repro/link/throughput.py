"""Application-layer throughput model (Figure 11's iPerf3 analogue).

Maps the sweep SNR of the selected sector to TCP goodput: MCS selection
→ PHY rate → MAC/TCP efficiency → host cap (the Talon's CPU tops out
well below the top PHY rates), minus the airtime spent on beamforming
training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..mac.timing import SWEEP_INTERVAL_US, mutual_training_time_us
from .mcs import select_mcs

__all__ = ["ThroughputModel"]


@dataclass(frozen=True)
class ThroughputModel:
    """TCP goodput estimator for one 802.11ad link.

    Attributes:
        mac_efficiency: fraction of PHY rate surviving MAC framing,
            aggregation limits and TCP overhead.
        host_cap_gbps: goodput ceiling from the router's CPU/switch
            fabric (iPerf3 on the Talon saturates around here).
        sweep_interval_us: how often training recurs (§6.4: roughly
            once per second even in static scenarios).
    """

    mac_efficiency: float = 0.65
    host_cap_gbps: float = 1.8
    sweep_interval_us: float = SWEEP_INTERVAL_US
    switch_penalty: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.mac_efficiency <= 1.0:
            raise ValueError("MAC efficiency must be in (0, 1]")
        if self.host_cap_gbps <= 0 or self.sweep_interval_us <= 0:
            raise ValueError("cap and interval must be positive")
        if not 0.0 <= self.switch_penalty < 1.0:
            raise ValueError("switch penalty must be in [0, 1)")

    def goodput_gbps(self, sweep_snr_db: float) -> float:
        """Steady-state TCP goodput at a given sweep SNR (no training)."""
        mcs = select_mcs(sweep_snr_db)
        if mcs is None:
            return 0.0
        return min(mcs.phy_rate_mbps * self.mac_efficiency / 1000.0, self.host_cap_gbps)

    def training_duty_cycle(self, n_probes: int) -> float:
        """Fraction of airtime consumed by periodic mutual training."""
        return mutual_training_time_us(n_probes) / self.sweep_interval_us

    def goodput_with_training_gbps(self, sweep_snr_db: float, n_probes: int) -> float:
        """Goodput including the training airtime of ``n_probes``."""
        return self.goodput_gbps(sweep_snr_db) * (1.0 - self.training_duty_cycle(n_probes))

    def expected_goodput_gbps(
        self,
        sweep_snr_series_db: Sequence[float],
        n_probes: int,
        selections: Optional[Sequence[int]] = None,
    ) -> float:
        """Average goodput over a series of per-interval selections.

        Each entry is the sweep SNR delivered by the sector selected
        for that interval.  When the selection IDs are supplied, every
        interval whose sector *changed* pays :attr:`switch_penalty` —
        the rate-adaptation and retraining transient that makes
        unstable selections cost throughput (the Figure 11 effect).
        """
        series = list(sweep_snr_series_db)
        if not series:
            raise ValueError("need at least one interval")
        if selections is not None and len(selections) != len(series):
            raise ValueError("selections must align with the SNR series")
        values = []
        for index, snr in enumerate(series):
            goodput = self.goodput_with_training_gbps(snr, n_probes)
            if (
                selections is not None
                and index > 0
                and selections[index] != selections[index - 1]
            ):
                goodput *= 1.0 - self.switch_penalty
            values.append(goodput)
        return float(np.mean(values))
