"""Load harness: find the selection service's saturation point.

``repro-bench load`` hammers a service (self-hosted on an ephemeral
port by default, or any ``--host/--port`` target) with bursts of
concurrent spec submissions at increasing concurrency levels, records
per-request submit latency and admission outcomes, waits for each
burst to drain, and reports:

* the highest level fully *sustained* (every submission admitted),
* the first level where admission control kicked in (429s) — the
  saturation point the ISSUE asks for,
* submit-latency percentiles and end-to-end completion throughput,
* the retained-history size, proving memory stays bounded.

The headline numbers are appended to the BENCH_core.json trajectory
(label ``service-load``) so the service's capacity is tracked across
PRs like every other hot path; ``--gate-p99-ms`` turns the harness
into a CI latency smoke gate.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LoadConfig", "LoadReport", "run_load"]

#: Default burst sizes; the top level satisfies the ">= 100 concurrent
#: submissions" acceptance bar with headroom.
DEFAULT_LEVELS: Tuple[int, ...] = (4, 8, 16, 32, 64, 100, 128)


@dataclass(frozen=True)
class LoadConfig:
    """Knobs of one load run."""

    scenario: str = "fig10"
    levels: Tuple[int, ...] = DEFAULT_LEVELS
    host: Optional[str] = None  # None = self-host a service in-process
    port: int = 0
    workers: int = 4
    queue_depth: int = 256
    history_limit: int = 256
    drain_timeout_s: float = 120.0
    gate_p99_ms: Optional[float] = None


@dataclass
class LoadReport:
    """What the harness observed, per level and overall."""

    scenario: str
    levels: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    def format_rows(self) -> List[str]:
        rows = [
            f"service load: scenario={self.scenario}",
            f"{'level':>6s} {'accepted':>9s} {'rejected':>9s} "
            f"{'p50 ms':>8s} {'p99 ms':>8s} {'drain s':>8s} {'runs/s':>8s}",
        ]
        for level in self.levels:
            rows.append(
                f"{level['concurrency']:6d} {level['accepted']:9d} "
                f"{level['rejected']:9d} {level['submit_p50_ms']:8.2f} "
                f"{level['submit_p99_ms']:8.2f} {level['drain_s']:8.2f} "
                f"{level['runs_per_s']:8.1f}"
            )
        for name in sorted(self.metrics):
            rows.append(f"  {name:40s} {self.metrics[name]:12.5g}")
        return rows


async def _http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
) -> Tuple[int, bytes]:
    """One short-lived HTTP/1.1 exchange over a raw asyncio connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.split()
        code = int(parts[1]) if len(parts) >= 2 else 599
        payload = await reader.read()
        return code, payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _submit(host: str, port: int, body: bytes) -> Tuple[int, float]:
    start = time.perf_counter()
    try:
        code, _ = await _http_request(host, port, "POST", "/runs", body)
    except (ConnectionError, OSError):
        code = 599
    return code, time.perf_counter() - start


async def _healthz(host: str, port: int) -> Dict[str, Any]:
    code, payload = await _http_request(host, port, "GET", "/healthz")
    if code != 200:
        raise RuntimeError(f"healthz returned {code}")
    body = payload.split(b"\r\n\r\n", 1)[-1]
    return json.loads(body.decode())


async def _drain(host: str, port: int, timeout_s: float) -> float:
    """Wait until no runs are queued or running; returns the wait time."""
    begin = time.perf_counter()
    deadline = begin + timeout_s
    while True:
        health = await _healthz(host, port)
        counts = health.get("runs", {})
        if counts.get("queued", 0) == 0 and counts.get("running", 0) == 0:
            return time.perf_counter() - begin
        if time.perf_counter() > deadline:
            raise TimeoutError(
                f"service did not drain within {timeout_s}s "
                f"(queued={counts.get('queued')}, running={counts.get('running')})"
            )
        await asyncio.sleep(0.02)


async def _run_levels(
    config: LoadConfig, host: str, port: int, spec_body: bytes
) -> LoadReport:
    report = LoadReport(scenario=config.scenario)
    for concurrency in config.levels:
        burst_start = time.perf_counter()
        outcomes = await asyncio.gather(
            *(_submit(host, port, spec_body) for _ in range(concurrency))
        )
        drain_s = await _drain(host, port, config.drain_timeout_s)
        elapsed = time.perf_counter() - burst_start
        codes = [code for code, _ in outcomes]
        latencies_ms = sorted(1e3 * latency for _, latency in outcomes)
        accepted = sum(1 for code in codes if code == 202)
        rejected = sum(1 for code in codes if code == 429)
        errors = len(codes) - accepted - rejected
        report.levels.append(
            {
                "concurrency": concurrency,
                "accepted": accepted,
                "rejected": rejected,
                "errors": errors,
                "submit_p50_ms": float(np.percentile(latencies_ms, 50)),
                "submit_p99_ms": float(np.percentile(latencies_ms, 99)),
                "drain_s": drain_s,
                "runs_per_s": accepted / elapsed if elapsed > 0 else 0.0,
            }
        )
    health = await _healthz(host, port)
    report.metrics = _headline_metrics(report, health)
    return report


def _headline_metrics(report: LoadReport, health: Dict[str, Any]) -> Dict[str, float]:
    sustained = [
        level for level in report.levels
        if level["rejected"] == 0 and level["errors"] == 0
    ]
    saturated = [
        level for level in report.levels
        if level["rejected"] > 0 or level["errors"] > 0
    ]
    top = sustained[-1] if sustained else report.levels[-1]
    return {
        "service_load_max_sustained_concurrency": float(
            max((level["concurrency"] for level in sustained), default=0)
        ),
        # The first concurrency level where admission control rejected
        # work — 0 means the harness never drove the service past its
        # queue (saturation lies beyond the largest level tried).
        "service_load_saturation_concurrency": float(
            min((level["concurrency"] for level in saturated), default=0)
        ),
        "service_load_submit_p50_ms": top["submit_p50_ms"],
        "service_load_submit_p99_ms": top["submit_p99_ms"],
        "service_load_runs_per_s": top["runs_per_s"],
        "service_load_total_requests": float(
            sum(level["concurrency"] for level in report.levels)
        ),
        "service_load_rejected_total": float(
            sum(level["rejected"] for level in report.levels)
        ),
        "service_load_retained_runs": float(
            len(health.get("active", [])) + sum(health.get("runs", {}).values())
        ),
    }


async def _load_async(config: LoadConfig) -> LoadReport:
    from ..runtime.registry import scenario_spec

    spec_body = json.dumps(scenario_spec(config.scenario).to_json()).encode()
    if config.host is not None:
        return await _run_levels(config, config.host, config.port, spec_body)

    # Self-host a service on an ephemeral port for the duration.
    from .server import SelectionService, ServiceConfig

    service = SelectionService(
        ServiceConfig(
            port=0,
            workers=config.workers,
            queue_depth=config.queue_depth,
            history_limit=config.history_limit,
        )
    )
    await service.start()
    try:
        return await _run_levels(config, "127.0.0.1", service.port, spec_body)
    finally:
        await service.stop()


def run_load(
    config: Optional[LoadConfig] = None,
    output: Optional[str] = None,
    label: str = "service-load",
) -> int:
    """Execute the harness; print the report; optionally append a BENCH
    point; return a process exit code (nonzero = latency gate failed)."""
    config = config or LoadConfig()
    report = asyncio.run(_load_async(config))
    print("\n".join(report.format_rows()))

    status = 0
    if config.gate_p99_ms is not None:
        p99 = report.metrics.get("service_load_submit_p99_ms", float("inf"))
        if p99 > config.gate_p99_ms:
            print(
                f"GATE FAILED: submit p99 {p99:.2f} ms exceeds "
                f"{config.gate_p99_ms:.2f} ms"
            )
            status = 1
        else:
            print(
                f"gate: submit p99 {p99:.2f} ms within "
                f"{config.gate_p99_ms:.2f} ms budget"
            )
    if output:
        from datetime import datetime, timezone

        from ..perf import PerfPoint, _environment, append_point

        point = PerfPoint(
            label=label,
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            metrics=report.metrics,
            environment=_environment(),
        )
        append_point(output, point)
        print(f"appended trajectory point '{label}' to {output}")
    return status
