"""Pattern measurement: rotation head, chamber campaign, processing, tables."""

from .campaign import (
    CampaignConfig,
    PatternMeasurementCampaign,
    measure_3d_patterns,
    measure_azimuth_patterns,
)
from .patterns import PatternTable
from .processing import interpolate_gaps, reject_outliers, robust_average
from .published import PUBLISHED_PATTERNS_RESOURCE, load_published_patterns
from .rotation_head import RotationHead

__all__ = [
    "CampaignConfig",
    "PatternMeasurementCampaign",
    "measure_3d_patterns",
    "measure_azimuth_patterns",
    "PatternTable",
    "interpolate_gaps",
    "reject_outliers",
    "robust_average",
    "PUBLISHED_PATTERNS_RESOURCE",
    "load_published_patterns",
    "RotationHead",
]
