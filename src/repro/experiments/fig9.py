"""Figure 9: SNR loss vs. number of probing sectors.

For every sweep the loss is the gap between the true SNR of an oracle's
sector (the best achievable) and the true SNR of the sector the
algorithm selected.  The exhaustive sweep sits ~0.5 dB under the
optimum (noise occasionally crowns the wrong sector); compressive
selection starts worse with few probes and crosses below the sweep
around 14, approaching the optimum near 20.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..channel.environment import conference_room
from ..core.compressive import CompressiveSectorSelector
from ..core.selector import SectorSweepSelector
from .common import build_testbed, random_probe_columns, record_directions

__all__ = ["Fig9Config", "Fig9Result", "run_fig9"]


@dataclass(frozen=True)
class Fig9Config:
    seed: int = 9
    probe_counts: Sequence[int] = tuple(range(4, 35, 2))
    azimuth_step_deg: float = 5.0
    n_sweeps: int = 20


@dataclass
class Fig9Result:
    probe_counts: List[int]
    css_loss_db: List[float]
    ssw_loss_db: float

    def css_at(self, n_probes: int) -> float:
        return self.css_loss_db[self.probe_counts.index(n_probes)]

    def crossover_probes(self) -> int:
        """Smallest probe count where CSS loses no more than SSW."""
        for n_probes, loss in zip(self.probe_counts, self.css_loss_db):
            if loss <= self.ssw_loss_db:
                return n_probes
        return self.probe_counts[-1]

    def format_rows(self) -> List[str]:
        rows = [
            "fig9: average SNR loss vs optimal sector (conference room)",
            f"SSW (full sweep): {self.ssw_loss_db:.2f} dB",
            "probes | CSS loss [dB]",
        ]
        for n_probes, loss in zip(self.probe_counts, self.css_loss_db):
            marker = " <- reaches SSW" if n_probes == self.crossover_probes() else ""
            rows.append(f"{n_probes:6d} | {loss:5.2f}{marker}")
        return rows


def _true_snr_of(recording, sector_id: int, tx_ids: Sequence[int]) -> float:
    return float(recording.true_snr_db[list(tx_ids).index(sector_id)])


def run_fig9(config: Fig9Config = Fig9Config()) -> Fig9Result:
    """Run the SNR-loss experiment in the conference room."""
    testbed = build_testbed()
    rng = np.random.default_rng(config.seed)
    azimuths = np.arange(-60.0, 60.0 + 1e-9, config.azimuth_step_deg)
    recordings = record_directions(
        testbed, conference_room(6.0), azimuths, [0.0], config.n_sweeps, rng
    )
    tx_ids = testbed.tx_sector_ids

    ssw_losses: List[float] = []
    for recording in recordings:
        selector = SectorSweepSelector()
        optimal = recording.optimal_snr_db()
        for sweep in recording.sweeps:
            chosen = selector.select(list(sweep.values())).sector_id
            ssw_losses.append(optimal - _true_snr_of(recording, chosen, tx_ids))
    ssw_loss_db = float(np.mean(ssw_losses))

    # One hoisted selector (construction samples two full grid
    # matrices); `reset()` between recordings reproduces the fresh-
    # selector state, and one `select_batch` per recording replays the
    # sweeps in order — bit-identical to the scalar loop.
    selector = CompressiveSectorSelector(testbed.pattern_table)
    id_row = np.asarray(tx_ids, dtype=np.intp)
    column_of = {sector_id: column for column, sector_id in enumerate(tx_ids)}
    css_loss_db: List[float] = []
    for n_probes in config.probe_counts:
        losses: List[float] = []
        for recording in recordings:
            selector.reset()
            present, snr, rssi = recording.packed_sweeps(tx_ids)
            optimal = recording.optimal_snr_db()
            columns = np.stack(
                [
                    random_probe_columns(len(tx_ids), n_probes, rng)
                    for _ in recording.sweeps
                ]
            )
            sweep_rows = np.arange(len(recording.sweeps))[:, np.newaxis]
            results = selector.select_batch(
                id_row[columns],
                snr_db=snr[sweep_rows, columns],
                rssi_dbm=rssi[sweep_rows, columns],
                mask=present[sweep_rows, columns],
            )
            for result in results:
                losses.append(
                    optimal - float(recording.true_snr_db[column_of[result.sector_id]])
                )
        css_loss_db.append(float(np.mean(losses)))

    return Fig9Result(
        probe_counts=list(config.probe_counts),
        css_loss_db=css_loss_db,
        ssw_loss_db=ssw_loss_db,
    )
