"""DMG beacon-interval access: BTI, A-BFT, and association.

IEEE 802.11ad organizes each 102.4 ms beacon interval (BI) into a
Beacon Transmission Interval (the AP's swept DMG beacons, §4.1), an
Association BeamForming Training window (A-BFT: slotted, contention-
based responder sector sweeps of stations that heard a beacon), and
the Data Transfer Interval.  This module simulates that machinery so
that multi-station rooms, association latency, and A-BFT collisions
can be studied — the substrate behind the paper's observation that the
AP "periodically transmits beacon frames successively over multiple
sectors" to reach unknown stations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..channel.environment import Environment
from ..channel.link import LinkBudget, LinkSimulator
from .frames import SSWFrame, SSWFeedbackField
from .fields import SSWField
from .schedule import beacon_burst, sweep_burst
from .station import Station
from .timing import BEACON_INTERVAL_US, SSW_FRAME_TIME_US

__all__ = ["ABFTConfig", "AssociationOutcome", "AssociationSimulator"]


@dataclass(frozen=True)
class ABFTConfig:
    """A-BFT window parameters (standard defaults).

    Attributes:
        n_slots: SSW slots per A-BFT window.
        frames_per_slot: SSW frames a station may send per slot (FSS).
        retry_probability: chance that a station which collided keeps
            contending in the *next* BI — the backoff that prevents a
            permanent pile-up when stations outnumber slots.
    """

    n_slots: int = 8
    frames_per_slot: int = 8  # FSS: SSW frames a station may send per slot
    retry_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.n_slots < 1 or self.frames_per_slot < 1:
            raise ValueError("A-BFT needs at least one slot and one frame")
        if not 0.0 < self.retry_probability <= 1.0:
            raise ValueError("retry probability must be in (0, 1]")


@dataclass
class AssociationOutcome:
    """Result of running beacon intervals until everyone associated."""

    association_bi: Dict[str, int] = field(default_factory=dict)
    collisions: int = 0
    beacon_intervals_run: int = 0
    ap_tx_sector_for: Dict[str, int] = field(default_factory=dict)
    station_tx_sector: Dict[str, int] = field(default_factory=dict)

    @property
    def all_associated(self) -> bool:
        return bool(self.association_bi)

    def association_delay_us(self, station_name: str) -> float:
        """Delay until the station's successful A-BFT, in µs."""
        return self.association_bi[station_name] * BEACON_INTERVAL_US


class AssociationSimulator:
    """Runs beacon intervals: beacons out, A-BFT responses back."""

    def __init__(
        self,
        ap: Station,
        stations: List[Station],
        environment: Environment,
        budget: Optional[LinkBudget] = None,
        abft: ABFTConfig = ABFTConfig(),
    ):
        if not stations:
            raise ValueError("need at least one station")
        self.ap = ap
        self.stations = list(stations)
        self.environment = environment
        self.budget = budget if budget is not None else LinkBudget()
        self.abft = abft
        self._downlinks = {
            station.name: LinkSimulator(
                environment,
                ap.antenna,
                station.antenna,
                self.budget,
                tx_position_m=ap.position_m,
                rx_position_m=station.position_m,
            )
            for station in stations
        }
        self._collided: set = set()
        self._uplinks = {
            station.name: LinkSimulator(
                environment,
                station.antenna,
                ap.antenna,
                self.budget,
                tx_position_m=station.position_m,
                rx_position_m=ap.position_m,
            )
            for station in stations
        }

    def _beacon_phase(self, rng: np.random.Generator) -> Dict[str, int]:
        """BTI: every station listens; returns best AP sector heard."""
        heard: Dict[str, Dict[int, float]] = {station.name: {} for station in self.stations}
        for _cdown, sector_id in beacon_burst():
            for station in self.stations:
                link = self._downlinks[station.name]
                true_snr = link.true_snr_db(
                    self.ap.tx_weights(sector_id),
                    station.rx_weights,
                    tx_orientation=self.ap.orientation,
                    rx_orientation=station.orientation,
                )
                observation = station.chip.measurement_model.observe(
                    true_snr, station.chip.noise_floor_dbm, rng
                )
                if observation is not None:
                    heard[station.name][sector_id] = observation.snr_db
        return {
            name: max(readings, key=readings.get)
            for name, readings in heard.items()
            if readings
        }

    def _abft_phase(
        self,
        pending: List[Station],
        best_ap_sector: Dict[str, int],
        outcome: AssociationOutcome,
        bi_index: int,
        rng: np.random.Generator,
    ) -> None:
        """A-BFT: pending stations pick random slots; collisions burn them."""
        slot_choice: Dict[int, List[Station]] = {}
        for station in pending:
            if station.name not in best_ap_sector:
                continue  # heard no beacon this BI
            if (
                station.name in self._collided
                and rng.random() > self.abft.retry_probability
            ):
                continue  # backing off this BI
            slot = int(rng.integers(0, self.abft.n_slots))
            slot_choice.setdefault(slot, []).append(station)

        for slot, contenders in slot_choice.items():
            if len(contenders) > 1:
                # Simultaneous responder sweeps garble each other.
                outcome.collisions += len(contenders)
                for station in contenders:
                    self._collided.add(station.name)
                continue
            station = contenders[0]
            # Responder sector sweep inside the slot: the AP measures a
            # truncated sweep (FSS frames) and feeds back the best.
            self.ap.chip.start_sweep()
            burst = sweep_burst()[: self.abft.frames_per_slot]
            link = self._uplinks[station.name]
            for cdown, sector_id in burst:
                true_snr = link.true_snr_db(
                    station.tx_weights(sector_id),
                    self.ap.rx_weights,
                    tx_orientation=station.orientation,
                    rx_orientation=self.ap.orientation,
                )
                self.ap.chip.process_ssw_frame(sector_id, cdown, true_snr, rng)
            if not self.ap.chip.current_sweep_reports():
                continue  # nothing decodable: try again next BI
            station_sector = self.ap.chip.select_feedback_sector()
            station.tx_sector_id = station_sector
            outcome.association_bi[station.name] = bi_index
            outcome.ap_tx_sector_for[station.name] = best_ap_sector[station.name]
            outcome.station_tx_sector[station.name] = station_sector

    def run(
        self, rng: np.random.Generator, max_beacon_intervals: int = 50
    ) -> AssociationOutcome:
        """Run BIs until every station associated (or the BI budget ends)."""
        outcome = AssociationOutcome()
        for bi_index in range(max_beacon_intervals):
            pending = [
                station
                for station in self.stations
                if station.name not in outcome.association_bi
            ]
            if not pending:
                break
            best_ap_sector = self._beacon_phase(rng)
            self._abft_phase(pending, best_ap_sector, outcome, bi_index, rng)
            outcome.beacon_intervals_run = bi_index + 1
        return outcome
