"""60 GHz channel substrate: path loss, rays, reflectors, observation."""

from .blockage import HumanBlocker, apply_blockage
from .environment import Environment, anechoic_chamber, conference_room, lab_environment
from .link import LinkBudget, LinkSimulator
from .mobility import ArcTrajectory, LinearTrajectory, MobileLink, Trajectory
from .observation import MeasurementModel, SignalObservation, quantize_to_step
from .pathloss import (
    OXYGEN_ABSORPTION_DB_PER_KM,
    free_space_path_loss_db,
    oxygen_absorption_db,
    path_loss_db,
)
from .rays import Ray
from .reflectors import ReflectorPanel

__all__ = [
    "HumanBlocker",
    "apply_blockage",
    "Environment",
    "anechoic_chamber",
    "conference_room",
    "lab_environment",
    "LinkBudget",
    "LinkSimulator",
    "ArcTrajectory",
    "LinearTrajectory",
    "MobileLink",
    "Trajectory",
    "MeasurementModel",
    "SignalObservation",
    "quantize_to_step",
    "OXYGEN_ABSORPTION_DB_PER_KM",
    "free_space_path_loss_db",
    "oxygen_absorption_db",
    "path_loss_db",
    "Ray",
    "ReflectorPanel",
]
