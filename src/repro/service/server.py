"""Asyncio HTTP front-end for the scenario runtime (DESIGN.md §11).

Architecture — three decoupled stages, each with an explicit bound:

* **Admission** (event loop): ``POST /runs`` parses and validates the
  :class:`~repro.runtime.ScenarioSpec` JSON, computes its digest, and
  enqueues a :class:`RunRecord` onto a bounded :class:`asyncio.Queue`.
  A full queue rejects with ``429 Too Many Requests`` + ``Retry-After``
  instead of buffering without limit — backpressure is the contract,
  not a failure mode.
* **Execution** (worker pool): ``ServiceConfig.workers`` asyncio tasks
  each own one long-lived :class:`~repro.runtime.ScenarioRunner` and
  drain the queue, running each spec on a thread executor so the event
  loop stays responsive while numpy crunches.  Every run gets its own
  fsync-durable checkpoint journal (keyed by *run id*, never by digest
  alone, so concurrent submissions of the same spec cannot collide)
  and its own :class:`~repro.obs.ObsSession` (the session context is a
  ``ContextVar``, so concurrent runs cannot interleave buffers).
* **Retention** (event loop): finished records keep their manifest and
  sanitized result JSON in a bounded history (oldest evicted, journals
  unlinked), so a service hammered with thousands of submissions holds
  memory and disk constant.

Durability contract: a block the service has journaled survives power
loss (``durable=True`` fsyncs), a run killed mid-flight resumes from
its journal via ``POST /runs/<id>/retry``, and a completed run's
``result_sha256`` is bit-identical to the same spec+seed run through
``repro-bench run`` — the front-end changes *how* runs are scheduled,
never *what* they compute.

Crash-safety (DESIGN.md §14): every run state transition is journaled
to a WAL-style :class:`~.registry.RunRegistry` under the service state
dir.  A restart after SIGKILL replays the registry, re-admits queued
runs and resumes interrupted ones from their checkpoint journals —
recovered digests stay bit-identical to uninterrupted runs.  SIGTERM/
SIGINT trigger a graceful drain (503 + ``Retry-After`` on admission,
in-flight runs finish up to ``drain_timeout_s``, stragglers are
cancelled back to ``queued`` so nothing is lost), ``DELETE
/runs/<id>`` cancels cooperatively, and a per-submission
``deadline_s`` bounds how long a run may be scheduled.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import os
import signal
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple

from .. import obs as _obs
from ..obs import profile as _profile
from ..obs.metrics import MetricsRegistry
from ..obs.trace import RotatingTraceWriter
from ..runtime import RetryPolicy, ScenarioRunner, ScenarioSpec
from ..runtime.checkpoint import journal_header
from ..runtime.faults import DeadlineExceededError, RunCancelledError
from ..runtime.shm import sweep_leaked_segments
from .registry import RunRegistry

__all__ = ["RunRecord", "SelectionService", "ServiceConfig", "serve"]

#: Statuses a run can end in.  ``deadline`` is the 504-style terminal
#: state of a run whose wall-clock budget expired.
TERMINAL_STATES = ("done", "failed", "cancelled", "deadline")

_LOGGER = logging.getLogger(__name__)

#: Protocol cap on one request head line / header line.
_MAX_LINE_BYTES = 16 * 1024
#: Protocol cap on the number of request headers.
_MAX_HEADERS = 64


def _utcnow() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


_FORK_GUARD_INSTALLED = False


def _detach_inherited_signal_plumbing() -> None:
    """Runs in every forked child of the serving process.

    The event loop's signal handling is a no-op Python handler plus a
    wakeup fd — the write end of the loop's self-socketpair.  A forked
    child shares that socketpair as an open file description, so any
    signal the *child* catches before it installs its own handlers is
    echoed into the byte stream the parent's loop reads as its own
    signals: a SIGTERM aimed at a half-started pool worker reads back
    as "the service was told to drain".  The pool initializer
    (:func:`repro.runtime.runner._reset_worker_signals`) can't close
    that window — ProcessPoolExecutor forks workers lazily, and CPython
    terminates a broken pool's survivors before a just-forked worker
    reaches its initializer.  An at-fork hook runs before any child
    bytecode, so the window closes for every fork off this process.
    """
    try:
        had_wakeup = signal.set_wakeup_fd(-1) != -1
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        return
    if had_wakeup:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)


def _install_fork_guard() -> None:
    global _FORK_GUARD_INSTALLED
    if not _FORK_GUARD_INSTALLED:  # registrations are forever; add once
        os.register_at_fork(after_in_child=_detach_inherited_signal_plumbing)
        _FORK_GUARD_INSTALLED = True


@dataclass(frozen=True)
class ServiceConfig:
    """Every operational knob of the selection service.

    Attributes:
        host / port: bind address (port 0 picks an ephemeral port).
        workers: worker tasks (= concurrent in-flight runs); each owns
            one reused :class:`~repro.runtime.ScenarioRunner`.
        queue_depth: admission bound — submissions past this many
            *queued* (not yet running) runs get 429.
        jobs: process-pool width inside each run (1 = in-process; the
            service's parallelism axis is across runs, not within one).
        max_attempts / backoff_s / timeout_s: per-block supervision
            passed to every runner (see DESIGN.md §9).
        durable: fsync checkpoint journals and the run registry (the
            service default; see
            :class:`~repro.runtime.checkpoint.CheckpointStore`).
        checkpoint_dir: journal directory (default: the state dir).
        state_dir: durable service state — the run-registry WAL and,
            unless ``checkpoint_dir`` overrides it, the checkpoint
            journals.  Restarting with the same state dir recovers
            queued and in-flight runs (default: the artifact cache dir
            under ``service/``).
        drain_timeout_s: how long a graceful shutdown waits for
            in-flight runs before cancelling them back to ``queued``.
        sweep_shm: sweep leaked ``repro-kernels-*`` /dev/shm segments
            at startup.  Off by default (another live process on the
            host may own them); ``repro-bench serve`` turns it on.
        history_limit: finished runs retained in memory; older records
            (and their journals) are evicted.
        max_body_bytes: request-body cap (413 beyond it).
        trace_path: append every finished run's span events to a
            rotating JSONL sink here (None = no trace sink).  Every
            segment carries its own ``repro-trace`` header, so any
            segment feeds ``repro-bench report`` directly.
        trace_max_mb: per-segment size cap for the trace sink.
        profile_path: run the sampling profiler for the service's
            lifetime and write the collapsed-stack aggregate here at
            shutdown (None = no profiling).
    """

    host: str = "127.0.0.1"
    port: int = 8780
    workers: int = 2
    queue_depth: int = 64
    jobs: int = 1
    max_attempts: int = 3
    backoff_s: float = 0.05
    timeout_s: Optional[float] = None
    durable: bool = True
    checkpoint_dir: Optional[str] = None
    state_dir: Optional[str] = None
    drain_timeout_s: float = 30.0
    sweep_shm: bool = False
    history_limit: int = 512
    max_body_bytes: int = 1024 * 1024
    trace_path: Optional[str] = None
    trace_max_mb: float = 64.0
    profile_path: Optional[str] = None

    def resolved_state_dir(self) -> Path:
        if self.state_dir is not None:
            return Path(self.state_dir)
        if self.checkpoint_dir is not None:
            return Path(self.checkpoint_dir)
        from ..measurement.artifacts import cache_dir

        return cache_dir() / "service"

    def resolved_checkpoint_dir(self) -> Path:
        if self.checkpoint_dir is not None:
            return Path(self.checkpoint_dir)
        return self.resolved_state_dir()


@dataclass
class RunRecord:
    """One submitted run, from admission to retention."""

    id: str
    scenario: str
    spec_digest: str
    seed: int
    spec_json: Dict[str, Any]
    status: str = "queued"  # queued | running | done | failed | cancelled | deadline
    submitted: str = ""
    started: str = ""
    finished: str = ""
    attempts: int = 0
    error: str = ""
    checkpoint_path: str = ""
    #: Wall-clock epoch instant past which the run must not execute;
    #: epoch (not monotonic) so the deadline survives a service restart.
    deadline_wall: Optional[float] = None
    manifest: Dict[str, Any] = field(default_factory=dict)
    result: Optional[Dict[str, Any]] = None

    def summary(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "scenario": self.scenario,
            "spec_digest": self.spec_digest,
            "seed": self.seed,
            "status": self.status,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "error": self.error,
            "result_sha256": self.manifest.get("result_sha256", ""),
        }

    def detail(self) -> Dict[str, Any]:
        data = self.summary()
        data["checkpoint"] = self.checkpoint_path
        data["manifest"] = self.manifest
        return data


# ----------------------------------------------------------------------
# Minimal HTTP/1.1 plumbing (stdlib asyncio streams only).
# ----------------------------------------------------------------------

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class _Request:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    @property
    def close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


class _ProtocolError(Exception):
    """Malformed request; carries the status code to answer with."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code


async def _read_request(
    reader: asyncio.StreamReader, max_body: int
) -> Optional[_Request]:
    """Parse one HTTP/1.1 request, or None on a clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > _MAX_LINE_BYTES:
        raise _ProtocolError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _ProtocolError(400, "malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADERS + 1):
        line = await reader.readline()
        if not line:
            raise _ProtocolError(400, "truncated headers")
        if line in (b"\r\n", b"\n"):
            break
        if len(line) > _MAX_LINE_BYTES:
            raise _ProtocolError(400, "header line too long")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _ProtocolError(400, "too many headers")
    if headers.get("transfer-encoding"):
        raise _ProtocolError(400, "chunked request bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _ProtocolError(400, "bad content-length") from None
    if length < 0:
        raise _ProtocolError(400, "bad content-length")
    if length > max_body:
        raise _ProtocolError(413, f"request body exceeds {max_body} bytes")
    body = await reader.readexactly(length) if length else b""
    return _Request(method=method, path=path, headers=headers, body=body)


def _encode_response(
    code: int,
    body: bytes,
    content_type: str,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    head = [
        f"HTTP/1.1 {code} {_REASONS.get(code, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    head.append("\r\n")
    return "\r\n".join(head).encode("latin-1") + body


def _json_body(code: int, payload: Any, *extra: Tuple[str, str]) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return _encode_response(code, body, "application/json", tuple(extra))


def _text_body(code: int, text: str) -> bytes:
    return _encode_response(
        code, text.encode(), "text/plain; version=0.0.4; charset=utf-8"
    )


# ----------------------------------------------------------------------
# The service.
# ----------------------------------------------------------------------


class SelectionService:
    """Long-lived scenario-execution service over asyncio HTTP.

    Lifecycle::

        service = SelectionService(ServiceConfig(port=0))
        await service.start()        # binds; service.port is now real
        ...
        await service.stop()

    All shared state (records, queue, metric registries) is touched only
    from the event-loop thread; executor threads hand results back
    through the worker coroutines.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.port: int = self.config.port
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._workers: List[asyncio.Task] = []
        # Unbounded on purpose: admission control enforces
        # ``queue_depth`` explicitly in ``_submit``/``_retry`` (429),
        # while crash recovery must always be able to re-admit every
        # journaled run regardless of the configured depth.
        self._queue: "asyncio.Queue[RunRecord]" = asyncio.Queue()
        self._runs: Dict[str, RunRecord] = {}
        self._finished: Deque[str] = deque()
        #: Runners currently executing, keyed by run id — the cancel
        #: endpoint's bridge from the event loop to the worker thread.
        self._running: Dict[str, ScenarioRunner] = {}
        self._registry: Optional[RunRegistry] = None
        self._sequence = 0
        self._inflight = 0
        self._draining = False
        self._started_at = 0.0
        #: Recent run wall times; feeds the computed Retry-After.
        self._durations: Deque[float] = deque(maxlen=64)
        #: Service-plane metrics (admission, HTTP, run latency).
        self.metrics = MetricsRegistry()
        #: Cumulative data-plane metrics folded from every finished
        #: run's ObsSession snapshot (counters/histograms add).
        self.run_metrics = MetricsRegistry()
        #: Every worker's long-lived runner, for the shm-segment gauge.
        self._runners: List[ScenarioRunner] = []
        #: Rotating span-trace sink (``--trace``), None when off.
        self._trace_writer: Optional[RotatingTraceWriter] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("service already started")
        self.config.resolved_state_dir().mkdir(parents=True, exist_ok=True)
        self.config.resolved_checkpoint_dir().mkdir(parents=True, exist_ok=True)
        self._registry = RunRegistry(
            self.config.resolved_state_dir() / "registry.jsonl",
            durable=self.config.durable,
        )
        if self.config.trace_path:
            self._trace_writer = RotatingTraceWriter(
                self.config.trace_path,
                header={"service": "repro-selection-service"},
                max_bytes=max(1024, int(self.config.trace_max_mb * 1024 * 1024)),
            )
        if self.config.profile_path:
            _profile.start_profiling()
        self._recover()
        self._collect_garbage()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service-run",
        )
        self._workers = [
            asyncio.get_running_loop().create_task(self._worker_loop(index))
            for index in range(self.config.workers)
        ]
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._update_gauges()
        _LOGGER.info(
            "selection service listening on %s:%d (%d workers, queue %d)",
            self.config.host,
            self.port,
            self.config.workers,
            self.config.queue_depth,
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._workers:
            task.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._registry is not None:
            self._registry.close()
            self._registry = None
        self._runners = []
        if self._trace_writer is not None:
            self._trace_writer.close()
            self._trace_writer = None
        if self.config.profile_path and _profile.active_sampler() is not None:
            profile = _profile.stop_profiling()
            stacks, samples = _profile.write_collapsed(
                self.config.profile_path,
                profile,
                header={"service": "repro-selection-service"},
            )
            _LOGGER.info(
                "wrote service profile to %s (%d stacks, %d samples)",
                self.config.profile_path,
                stacks,
                samples,
            )

    async def drain(self, timeout_s: Optional[float] = None) -> None:
        """Graceful shutdown, phase 1: stop admitting, finish in flight.

        New submissions get 503 + ``Retry-After`` the moment this is
        entered; queued runs stay queued (their registry state already
        says so, a restart re-admits them).  In-flight runs get up to
        ``timeout_s`` to finish; stragglers are cooperatively cancelled
        and journaled back to ``queued`` — a drain never loses a run,
        it only decides how much of it happens now versus after the
        next start.
        """
        if timeout_s is None:
            timeout_s = self.config.drain_timeout_s
        self._draining = True
        self._update_gauges()
        deadline = time.monotonic() + max(0.0, float(timeout_s))
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        if self._inflight > 0:
            _LOGGER.warning(
                "drain timeout: cancelling %d in-flight run(s) back to queued",
                self._inflight,
            )
            for runner in list(self._running.values()):
                runner.cancel()
            # The cancel lands at the next block boundary; wait for the
            # workers to journal the interrupted runs back to queued.
            while self._inflight > 0:
                await asyncio.sleep(0.05)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # -- crash recovery / startup GC -------------------------------------

    @staticmethod
    def _record_from_state(state: Dict[str, Any]) -> RunRecord:
        return RunRecord(
            id=str(state["id"]),
            scenario=str(state.get("scenario", "")),
            spec_digest=str(state.get("spec_digest", "")),
            seed=int(state.get("seed", 0)),
            spec_json=dict(state.get("spec_json") or {}),
            status=str(state.get("status", "queued")),
            submitted=str(state.get("submitted", "")),
            started=str(state.get("started", "")),
            finished=str(state.get("finished", "")),
            attempts=int(state.get("attempts", 0)),
            error=str(state.get("error", "")),
            checkpoint_path=str(state.get("checkpoint_path", "")),
            deadline_wall=state.get("deadline_wall"),
            manifest=dict(state.get("manifest") or {}),
        )

    @staticmethod
    def _sequence_of(run_id: str) -> int:
        try:
            return int(run_id[1:].split("-", 1)[0])
        except (ValueError, IndexError):
            return 0

    def _recover(self) -> None:
        """Replay the run registry: restore history, re-admit live runs.

        Queued and running runs are re-admitted in submission order
        with ``resume=True`` semantics — an interrupted run picks up
        from its checkpoint journal, so its final digest is
        bit-identical to an uninterrupted execution.  Terminal runs
        come back as history (manifests only; result payloads are not
        retained across restarts — re-submit to recompute cheaply from
        the digest-stable pipeline).
        """
        assert self._registry is not None
        replayed = self._registry.replay()
        if not replayed:
            self._registry.maybe_compact()
            return
        recovered = {"queued": 0, "running": 0, "terminal": 0}
        for run_id in sorted(replayed, key=self._sequence_of):
            state = replayed[run_id]
            record = self._record_from_state(state)
            self._sequence = max(self._sequence, self._sequence_of(run_id))
            self._runs[run_id] = record
            if record.status in TERMINAL_STATES:
                self._finished.append(run_id)
                recovered["terminal"] += 1
                continue
            recovered[record.status] = recovered.get(record.status, 0) + 1
            # An interrupted ``running`` run restarts as queued; its
            # attempt counter survives and its journal resumes it.
            if record.status != "queued":
                record.status = "queued"
                self._registry.record(run_id, "queued", attempts=record.attempts)
            self._queue.put_nowait(record)
            self.metrics.inc("service_recovered_total", state="queued")
        if recovered["queued"] or recovered["running"]:
            _LOGGER.warning(
                "recovered %d queued and %d interrupted run(s) from %s",
                recovered["queued"],
                recovered["running"],
                self._registry.path,
            )
        compacted = self._registry.compact()
        if compacted:
            _LOGGER.info("compacted run registry (%d events dropped)", compacted)

    def _collect_garbage(self) -> None:
        """Sweep orphans a crashed predecessor left behind.

        * checkpoint journals in the journal dir that no retained run
          references (their runs were evicted, or the registry that
          knew them is gone);
        * leaked ``repro-kernels-*`` /dev/shm segments, when
          ``sweep_shm`` says this service owns the host.
        """
        referenced = {
            record.checkpoint_path for record in self._runs.values()
        }
        registry_path = self._registry.path if self._registry is not None else None
        swept = 0
        for path in sorted(self.config.resolved_checkpoint_dir().glob("*.jsonl")):
            if registry_path is not None and path == registry_path:
                continue
            if str(path) in referenced:
                continue
            if journal_header(path) is None:
                continue  # not a checkpoint journal — leave it alone
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                continue
            swept += 1
            self.metrics.inc("service_gc_total", kind="journal")
            _LOGGER.warning("gc: reclaimed orphaned checkpoint journal %s", path)
        segments = sweep_leaked_segments() if self.config.sweep_shm else []
        for _ in segments:
            self.metrics.inc("service_gc_total", kind="shm")
        if swept or segments:
            _LOGGER.warning(
                "startup gc reclaimed %d journal(s), %d shm segment(s)",
                swept,
                len(segments),
            )

    # -- HTTP dispatch ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader, self.config.max_body_bytes)
                except _ProtocolError as error:
                    writer.write(
                        _json_body(error.code, {"error": str(error)})
                    )
                    await writer.drain()
                    break
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if request.close:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _dispatch(self, request: _Request) -> bytes:
        route, response = await self._route(request)
        code = int(response.split(b" ", 2)[1])
        self.metrics.inc("service_http_requests_total", route=route, code=code)
        return response

    async def _route(self, request: _Request) -> Tuple[str, bytes]:
        method, path = request.method, request.path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return "healthz", _json_body(200, self._healthz())
        if path == "/metrics" and method == "GET":
            return "metrics", _text_body(200, self._render_metrics())
        if path == "/runs" and method == "POST":
            return "submit", self._submit(request.body)
        if path == "/runs" and method == "GET":
            return "list", _json_body(
                200, {"runs": [self._runs[rid].summary() for rid in self._runs]}
            )
        if path.startswith("/runs/"):
            tail = path[len("/runs/"):]
            if tail.endswith("/retry") and method == "POST":
                return "retry", self._retry(tail[: -len("/retry")], request.body)
            if tail.endswith("/result") and method == "GET":
                return "result", self._result(tail[: -len("/result")])
            if method == "DELETE":
                return "cancel", self._cancel(tail)
            if method == "GET":
                record = self._runs.get(tail)
                if record is None:
                    return "status", _json_body(404, {"error": f"no run '{tail}'"})
                return "status", _json_body(200, record.detail())
        if path == "/" and method == "GET":
            return "index", _json_body(
                200,
                {
                    "service": "repro-selection-service",
                    "routes": [
                        "POST /runs",
                        "GET /runs",
                        "GET /runs/<id>",
                        "GET /runs/<id>/result",
                        "POST /runs/<id>/retry",
                        "DELETE /runs/<id>",
                        "GET /metrics",
                        "GET /healthz",
                    ],
                },
            )
        return "unknown", _json_body(
            405 if path in ("/runs", "/metrics", "/healthz", "/") else 404,
            {"error": f"no route for {method} {path}"},
        )

    # -- admission -------------------------------------------------------

    def _retry_after_s(self) -> float:
        """How long a rejected client should wait, from observed drain rate.

        p50 run duration × waiting runs ÷ workers, clamped to [1, 60] —
        an empty-history service answers 1 s, a backed-up one tells
        clients the truth instead of inviting a thundering herd.
        """
        if self._durations:
            ordered = sorted(self._durations)
            p50 = ordered[len(ordered) // 2]
        else:
            p50 = 1.0
        waiting = self._queue.qsize() + self._inflight
        value = p50 * max(1, waiting) / max(1, self.config.workers)
        value = max(1.0, min(60.0, value))
        self.metrics.set_gauge("service_retry_after_s", value)
        return value

    def _reject(self, code: int, payload: Dict[str, Any]) -> bytes:
        retry_after = self._retry_after_s()
        payload.setdefault("retry_after_s", round(retry_after, 3))
        return _json_body(
            code, payload, ("Retry-After", str(int(math.ceil(retry_after))))
        )

    def _submit(self, body: bytes) -> bytes:
        try:
            data = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError):
            self.metrics.inc("service_submissions_total", outcome="invalid")
            return _json_body(400, {"error": "request body is not valid JSON"})
        if not isinstance(data, dict):
            self.metrics.inc("service_submissions_total", outcome="invalid")
            return _json_body(400, {"error": "request body must be a spec object"})
        # Two accepted shapes: a bare spec object (optionally carrying a
        # top-level ``deadline_s``, which the spec parser ignores), or
        # an envelope ``{"spec": {...}, "deadline_s": ...}``.
        if isinstance(data.get("spec"), dict):
            spec_data = data["spec"]
            deadline_s = data.get("deadline_s")
        else:
            spec_data = data
            deadline_s = data.get("deadline_s")
        if deadline_s is not None:
            if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
                self.metrics.inc("service_submissions_total", outcome="invalid")
                return _json_body(
                    400, {"error": "deadline_s must be a positive number"}
                )
        try:
            spec = ScenarioSpec.from_json(spec_data)
            from ..runtime.registry import get_scenario

            get_scenario(spec.scenario)
        except (KeyError, TypeError, ValueError) as error:
            self.metrics.inc("service_submissions_total", outcome="invalid")
            return _json_body(400, {"error": f"invalid scenario spec: {error}"})

        if self._draining:
            self.metrics.inc("service_submissions_total", outcome="drained")
            return self._reject(503, {"error": "service is draining"})
        if self._queue.qsize() >= max(1, self.config.queue_depth):
            self.metrics.inc("service_submissions_total", outcome="rejected")
            self._update_gauges()
            return self._reject(
                429,
                {
                    "error": "run queue is full",
                    "queue_depth": self._queue.qsize(),
                    "queue_limit": self.config.queue_depth,
                },
            )
        digest = spec.digest()
        self._sequence += 1
        run_id = f"r{self._sequence:06d}-{digest[:8]}"
        record = RunRecord(
            id=run_id,
            scenario=spec.scenario,
            spec_digest=digest,
            seed=spec.seed,
            spec_json=spec.to_json(),
            submitted=_utcnow(),
            checkpoint_path=str(
                self.config.resolved_checkpoint_dir() / f"{run_id}.jsonl"
            ),
            deadline_wall=(
                time.time() + float(deadline_s) if deadline_s is not None else None
            ),
        )
        self._journal_transition(
            record,
            "queued",
            scenario=record.scenario,
            spec_digest=record.spec_digest,
            seed=record.seed,
            spec_json=record.spec_json,
            submitted=record.submitted,
            checkpoint_path=record.checkpoint_path,
            deadline_wall=record.deadline_wall,
        )
        self._queue.put_nowait(record)
        self._runs[run_id] = record
        self.metrics.inc("service_submissions_total", outcome="accepted")
        self._update_gauges()
        return _json_body(
            202,
            {
                "run": run_id,
                "spec_digest": digest,
                "status": record.status,
                "queue_depth": self._queue.qsize(),
            },
        )

    def _retry(self, run_id: str, body: bytes) -> bytes:
        record = self._runs.get(run_id)
        if record is None:
            return _json_body(404, {"error": f"no run '{run_id}'"})
        if record.status in ("queued", "running"):
            return _json_body(409, {"error": f"run '{run_id}' is {record.status}"})
        options: Dict[str, Any] = {}
        if body:
            try:
                options = json.loads(body.decode())
            except (json.JSONDecodeError, UnicodeDecodeError):
                return _json_body(400, {"error": "retry body is not valid JSON"})
        if self._draining:
            return self._reject(503, {"error": "service is draining"})
        if self._queue.qsize() >= max(1, self.config.queue_depth):
            return self._reject(429, {"error": "run queue is full"})
        # A retry recovers from an interrupted/failed execution by
        # resuming the durable journal; an injected fault-plan overlay
        # describes the *failure experiment*, so replaying it would
        # deterministically fail again — drop it unless asked not to.
        if options.get("keep_faults") is not True:
            record.spec_json.pop("faults", None)
        record.status = "queued"
        record.error = ""
        # A retried run gets a fresh deadline budget only if the caller
        # provides one; the original (likely already blown) is cleared.
        deadline_s = options.get("deadline_s")
        record.deadline_wall = (
            time.time() + float(deadline_s)
            if isinstance(deadline_s, (int, float)) and deadline_s > 0
            else None
        )
        self._journal_transition(
            record,
            "queued",
            spec_json=record.spec_json,
            error="",
            finished="",
            deadline_wall=record.deadline_wall,
        )
        self._queue.put_nowait(record)
        self._finished = deque(rid for rid in self._finished if rid != run_id)
        self.metrics.inc("service_submissions_total", outcome="retried")
        self._update_gauges()
        return _json_body(
            202, {"run": run_id, "status": "queued", "resume": True}
        )

    def _cancel(self, run_id: str) -> bytes:
        """Cooperative cancellation of a queued or running run.

        A queued run is settled immediately (the worker skips its queue
        entry).  A running run's runner is signalled; the abort lands
        at the next block boundary and the worker finalizes the record.
        Either way the checkpoint journal is *kept* — ``POST
        /runs/<id>/retry`` resumes from exactly the blocks that
        finished before the cancel.
        """
        record = self._runs.get(run_id)
        if record is None:
            return _json_body(404, {"error": f"no run '{run_id}'"})
        if record.status in TERMINAL_STATES:
            return _json_body(
                409, {"error": f"run '{run_id}' already {record.status}"}
            )
        if record.status == "queued":
            record.status = "cancelled"
            record.error = "cancelled before start"
            record.finished = _utcnow()
            self._journal_transition(
                record, "cancelled", error=record.error, finished=record.finished
            )
            self._finished.append(run_id)
            self.metrics.inc(
                "service_runs_total", scenario=record.scenario, status="cancelled"
            )
            self._evict_history()
            self._update_gauges()
            return _json_body(200, {"run": run_id, "status": "cancelled"})
        runner = self._running.get(run_id)
        if runner is not None:
            runner.cancel()
        self.metrics.inc("service_cancellations_total", state="running")
        return _json_body(202, {"run": run_id, "status": "cancelling"})

    def _result(self, run_id: str) -> bytes:
        record = self._runs.get(run_id)
        if record is None:
            return _json_body(404, {"error": f"no run '{run_id}'"})
        if record.status != "done" or record.result is None:
            return _json_body(
                404,
                {"error": f"run '{run_id}' has no result (status {record.status})"},
            )
        return _json_body(200, {"run": run_id, "result": record.result})

    # -- execution -------------------------------------------------------

    def _make_runner(self) -> ScenarioRunner:
        return ScenarioRunner(
            jobs=self.config.jobs,
            retry=RetryPolicy(
                max_attempts=self.config.max_attempts,
                backoff_base_s=self.config.backoff_s,
                timeout_s=self.config.timeout_s,
            ),
            durable=self.config.durable,
        )

    async def _worker_loop(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        runner = self._make_runner()
        self._runners.append(runner)
        try:
            while True:
                record = await self._queue.get()
                if record.status != "queued":
                    # Cancelled while waiting in the queue — its
                    # terminal transition is already journaled.
                    self._queue.task_done()
                    continue
                if self._draining:
                    # Stay queued: the registry already says so, and
                    # the next start re-admits it.  Consumed once, so
                    # this never spins.
                    self._queue.task_done()
                    continue
                if (
                    record.deadline_wall is not None
                    and time.time() >= record.deadline_wall
                ):
                    self._settle_terminal(
                        record, "deadline", "deadline expired before the run started"
                    )
                    self._queue.task_done()
                    continue
                self._inflight += 1
                record.status = "running"
                record.started = _utcnow()
                record.attempts += 1
                self._journal_transition(
                    record,
                    "running",
                    started=record.started,
                    attempts=record.attempts,
                )
                self._update_gauges()
                begin = time.perf_counter()
                requeued = False
                self._running[record.id] = runner
                try:
                    (
                        manifest, result, metrics_snapshot, events,
                    ) = await loop.run_in_executor(
                        self._executor, self._execute, runner, record
                    )
                except RunCancelledError:
                    if self._draining:
                        # Drain-timeout interruption is not a client
                        # cancel: journal the run back to queued so the
                        # next start resumes it — zero lost runs.
                        record.status = "queued"
                        record.started = ""
                        self._journal_transition(
                            record, "queued", attempts=record.attempts, started=""
                        )
                        requeued = True
                        _LOGGER.warning(
                            "run %s interrupted by drain; resumes on next start",
                            record.id,
                        )
                    else:
                        record.finished = _utcnow()
                        self._settle_terminal(
                            record, "cancelled", "cancelled while running",
                            retain=False,
                        )
                except DeadlineExceededError:
                    record.finished = _utcnow()
                    self._settle_terminal(
                        record, "deadline", "run deadline exceeded", retain=False
                    )
                except Exception as error:
                    record.status = "failed"
                    record.error = f"{type(error).__name__}: {error}"
                    record.finished = _utcnow()
                    self._journal_transition(
                        record,
                        "failed",
                        error=record.error,
                        finished=record.finished,
                    )
                    self.metrics.inc(
                        "service_runs_total",
                        scenario=record.scenario,
                        status="failed",
                    )
                    _LOGGER.warning(
                        "run %s (%s) failed: %s",
                        record.id,
                        record.scenario,
                        record.error,
                        exc_info=True,
                    )
                else:
                    record.status = "done"
                    record.manifest = manifest
                    record.result = result
                    record.finished = _utcnow()
                    self.run_metrics.merge(metrics_snapshot)
                    if self._trace_writer is not None and events:
                        # One batch per run, stamped with the run id;
                        # rotation happens between batches so a run's
                        # trace never splits across segments.
                        self._trace_writer.write(events, run=record.id)
                    self.metrics.inc(
                        "service_runs_total",
                        scenario=record.scenario,
                        status="done",
                    )
                    self._journal_transition(
                        record,
                        "done",
                        finished=record.finished,
                        manifest=record.manifest,
                    )
                    self._discard_journal(record)
                finally:
                    self._running.pop(record.id, None)
                    elapsed = time.perf_counter() - begin
                    self.metrics.observe(
                        "service_run_seconds",
                        elapsed,
                        scenario=record.scenario,
                    )
                    self._inflight -= 1
                    if not requeued:
                        if not record.finished:
                            record.finished = _utcnow()
                        self._durations.append(elapsed)
                        self._finished.append(record.id)
                        self._evict_history()
                    self._update_gauges()
                    self._queue.task_done()
        except asyncio.CancelledError:
            pass
        finally:
            runner.close()

    def _settle_terminal(
        self, record: RunRecord, status: str, error: str, retain: bool = True
    ) -> None:
        """Finalize a run that ended without a result (journal kept)."""
        record.status = status
        record.error = error
        if not record.finished:
            record.finished = _utcnow()
        self._journal_transition(
            record, status, error=error, finished=record.finished
        )
        self.metrics.inc(
            "service_runs_total", scenario=record.scenario, status=status
        )
        if retain:
            self._finished.append(record.id)
            self._evict_history()
            self._update_gauges()

    def _execute(
        self, runner: ScenarioRunner, record: RunRecord
    ) -> Tuple[
        Dict[str, Any],
        Optional[Dict[str, Any]],
        Dict[str, Any],
        List[Dict[str, Any]],
    ]:
        """Run one record on an executor thread (no shared-state access).

        ``resume=True`` is unconditional: a fresh run id has no journal
        (so it starts clean), while a retried record picks up exactly
        the blocks its previous attempt journaled.
        """
        spec = ScenarioSpec.from_json(record.spec_json)
        session = _obs.ObsSession()
        deadline_s: Optional[float] = None
        if record.deadline_wall is not None:
            deadline_s = max(0.0, record.deadline_wall - time.time())
        outcome = runner.run(
            spec,
            checkpoint=record.checkpoint_path,
            resume=True,
            obs=session,
            deadline_s=deadline_s,
        )
        manifest = outcome.manifest.to_json()
        result: Optional[Dict[str, Any]] = None
        try:
            from ..experiments.io import result_to_dict

            result = result_to_dict(outcome.result)
        except TypeError:
            result = None
        # The event buffer survives finalize (reset clears it); hand it
        # to the worker coroutine so the rotating sink, if configured,
        # appends it from the event-loop thread.
        return manifest, result, session.metrics.snapshot(), list(session.tracer.events)

    # -- retention / introspection --------------------------------------

    def _journal_transition(self, record: RunRecord, to: str, **fields: Any) -> None:
        """Append one state transition to the durable run registry."""
        if self._registry is not None:
            self._registry.record(record.id, to, **fields)
            self._registry.maybe_compact()

    def _discard_journal(self, record: RunRecord) -> None:
        """A completed run's journal has served its purpose — drop it."""
        try:
            Path(record.checkpoint_path).unlink(missing_ok=True)
        except OSError:  # pragma: no cover - non-fatal cleanup race
            pass

    def _evict_history(self) -> None:
        while len(self._finished) > max(0, self.config.history_limit):
            run_id = self._finished.popleft()
            record = self._runs.pop(run_id, None)
            if record is not None:
                self._journal_transition(record, "evicted")
                self._discard_journal(record)

    def _update_gauges(self) -> None:
        self.metrics.set_gauge("service_queue_depth", self._queue.qsize())
        self.metrics.set_gauge("service_runs_inflight", self._inflight)
        self.metrics.set_gauge("service_runs_retained", len(self._runs))
        self.metrics.set_gauge("service_draining", 1 if self._draining else 0)
        # Resource-plane gauges: live shared-memory segments across the
        # worker runners, the registry WAL's size on disk, and how full
        # the finished-run history is — the three quantities an operator
        # had to infer from /dev/shm and du before.
        self.metrics.set_gauge(
            "service_shm_segments",
            sum(len(runner._shm) for runner in self._runners),
        )
        if self._registry is not None:
            try:
                journal_bytes = self._registry.path.stat().st_size
            except OSError:  # pragma: no cover - racing a compaction
                journal_bytes = 0
            self.metrics.set_gauge("service_registry_journal_bytes", journal_bytes)
            self.metrics.set_gauge("service_registry_events", self._registry.events)
        self.metrics.set_gauge("service_history_occupancy", len(self._finished))
        self.metrics.set_gauge(
            "service_history_limit", max(0, self.config.history_limit)
        )
        sampler = _profile.active_sampler()
        if sampler is not None:
            self.metrics.set_gauge("service_profile_samples_total", sampler.samples)

    def _status_counts(self) -> Dict[str, int]:
        counts = {
            "queued": 0,
            "running": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            "deadline": 0,
        }
        for record in self._runs.values():
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def _healthz(self) -> Dict[str, Any]:
        counts = self._status_counts()
        active = [
            record.summary()
            for record in self._runs.values()
            if record.status in ("queued", "running")
        ]
        degraded = counts["failed"] > 0
        return {
            "status": "draining" if self._draining else (
                "degraded" if degraded else "ok"
            ),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": self.config.workers,
            "queue": {
                "depth": self._queue.qsize(),
                "limit": self.config.queue_depth,
            },
            "inflight": self._inflight,
            "draining": self._draining,
            "retry_after_s": round(self._retry_after_s(), 3),
            "runs": counts,
            "active": active,
            "durable": self.config.durable,
        }

    def _render_metrics(self) -> str:
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        merged.merge(self.run_metrics.snapshot())
        return merged.render_prometheus()


async def serve(config: Optional[ServiceConfig] = None) -> None:
    """Run the service until signalled (the ``repro-bench serve`` body).

    SIGTERM/SIGINT trigger a graceful drain instead of tearing the
    loop down mid-run: admission flips to 503, in-flight runs get
    ``drain_timeout_s`` to finish (stragglers are cancelled back to
    ``queued``), every transition is journaled, and the coroutine
    returns normally so the process exits 0.
    """
    service = SelectionService(config)
    await service.start()
    print(
        f"selection service listening on "
        f"http://{service.config.host}:{service.port}",
        flush=True,
    )
    loop = asyncio.get_running_loop()
    shutdown = asyncio.Event()
    installed: List[int] = []
    _install_fork_guard()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, shutdown.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
            pass
    server_task = asyncio.ensure_future(service.serve_forever())
    shutdown_task = asyncio.ensure_future(shutdown.wait())
    try:
        await asyncio.wait(
            {server_task, shutdown_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if shutdown.is_set():
            print("shutdown signal received; draining...", flush=True)
            await service.drain()
            print("drain complete", flush=True)
    finally:
        for task in (server_task, shutdown_task):
            task.cancel()
        await asyncio.gather(server_task, shutdown_task, return_exceptions=True)
        for signum in installed:
            loop.remove_signal_handler(signum)
        await service.stop()
