"""Figure 6: spherical SNR patterns over azimuth and elevation.

Regenerates the 3D campaign (azimuth ±90° at 1.8°, manual tilts 0° to
32.4° in 3.6° steps) and verifies the elevation behaviour the paper
highlights: sector 5 gains strength off-plane, sector 26's wide azimuth
coverage fades at higher elevations, and 25/62 stay weak everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..measurement.campaign import PatternMeasurementCampaign, measure_3d_patterns
from ..measurement.patterns import PatternTable
from .common import build_testbed

__all__ = ["Fig6Config", "Fig6Result", "run_fig6"]


@dataclass(frozen=True)
class Fig6Config:
    seed: int = 6
    azimuth_step_deg: float = 1.8
    elevation_step_deg: float = 3.6
    max_elevation_deg: float = 32.4
    n_sweeps: int = 2


@dataclass
class Fig6Result:
    table: PatternTable

    def elevation_profile(self, sector_id: int) -> np.ndarray:
        """Max-over-azimuth SNR per elevation row (one heatmap column)."""
        return np.max(self.table.pattern(sector_id), axis=1)

    def in_plane_peak(self, sector_id: int) -> float:
        """Peak SNR in the elevation-0 row."""
        return float(np.max(self.table.pattern(sector_id)[0]))

    def off_plane_peak(self, sector_id: int) -> float:
        """Peak SNR anywhere above the first elevation row."""
        return float(np.max(self.table.pattern(sector_id)[1:]))

    def format_rows(self) -> List[str]:
        rows = [
            "fig6: spherical patterns (max SNR per elevation band)",
            "sector | el=0 peak | off-plane peak",
        ]
        for sector_id in self.table.sector_ids:
            label = "RX" if sector_id == 0 else str(sector_id)
            rows.append(
                f"{label:>6s} | {self.in_plane_peak(sector_id):8.1f} | "
                f"{self.off_plane_peak(sector_id):8.1f}"
            )
        return rows


def run_fig6(config: Fig6Config = Fig6Config()) -> Fig6Result:
    """Run the Figure 6 spherical campaign."""
    testbed = build_testbed()
    rng = np.random.default_rng(config.seed)
    campaign = PatternMeasurementCampaign(
        testbed.dut_antenna,
        testbed.dut_codebook,
        reference_antenna=testbed.ref_antenna,
        reference_codebook=testbed.ref_codebook,
        budget=testbed.budget,
        measurement_model=testbed.measurement_model,
    )
    table = measure_3d_patterns(
        campaign,
        rng,
        azimuth_step_deg=config.azimuth_step_deg,
        elevation_step_deg=config.elevation_step_deg,
        max_elevation_deg=config.max_elevation_deg,
        n_sweeps=config.n_sweeps,
    )
    return Fig6Result(table=table)
