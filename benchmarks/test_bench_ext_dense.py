"""Bench (extension): dense deployments (§7's airtime argument).

Expected shape: at one pair the algorithms tie (training is a rounding
error of the epoch); as pairs multiply, channel-exclusive training
airtime eats into everyone's data time and the 2.3× shorter CSS sweep
compounds into a growing aggregate-goodput lead.  The sustainable
tracking rate at a fixed airtime budget is exactly 2.3× higher for CSS
at every scale.
"""

import pytest

from repro.experiments import DenseConfig, run_dense_deployment


def test_dense_deployment(benchmark, report_rows):
    config = DenseConfig(pair_counts=(1, 2, 5, 10, 20, 40))
    result = benchmark.pedantic(
        lambda: run_dense_deployment(config), rounds=1, iterations=1
    )
    report_rows(result.format_rows())

    # Near parity with a single pair.
    first = result.pair_counts.index(1)
    assert result.css_aggregate_gbps[first] == pytest.approx(
        result.ssw_aggregate_gbps[first], rel=0.06
    )

    # The CSS advantage grows with the number of pairs.
    advantages = [
        css / ssw
        for css, ssw in zip(result.css_aggregate_gbps, result.ssw_aggregate_gbps)
    ]
    assert advantages[-1] > advantages[0]
    assert advantages[-1] > 1.15  # clearly visible at 40 pairs

    # Tracking-rate headroom is the paper's 2.3x at every scale.
    for n_pairs in result.pair_counts:
        ratio = result.css_max_rate_hz[n_pairs] / result.ssw_max_rate_hz[n_pairs]
        assert ratio == pytest.approx(2.3, abs=0.05)


def test_dense_interference(benchmark, report_rows):
    """Spatial reuse saturates: SINR-aware goodput plateaus with pairs."""
    from repro.experiments import run_dense_interference

    result = benchmark.pedantic(
        lambda: run_dense_interference(pair_counts=(1, 2, 4, 8)),
        rounds=1,
        iterations=1,
    )
    report_rows(result.format_rows())

    # One pair: no interference at all.
    assert result.mean_reuse_penalty_db[0] == pytest.approx(0.0, abs=1e-6)
    assert result.sinr_aware_gbps[0] == pytest.approx(result.ideal_gbps[0], rel=1e-6)

    # The reuse penalty grows as pairs pack tighter ...
    assert result.mean_reuse_penalty_db[-1] > result.mean_reuse_penalty_db[1]
    # ... and the real aggregate falls well short of the ideal one.
    assert result.sinr_aware_gbps[-1] < 0.6 * result.ideal_gbps[-1]
    # Still, adding pairs never *reduces* what one pair alone achieves.
    assert result.sinr_aware_gbps[-1] > result.sinr_aware_gbps[0]
