"""Angle-of-arrival estimation from compressive probes (Eqs. 3 and 5).

The estimator maximizes the correlation map over a discrete angular
grid.  Following §5, it can fuse the SNR-based and RSSI-based maps by
multiplication — the two values are acquired independently inside the
firmware, so an outlier in one rarely coincides with an outlier in the
other, and the product suppresses it.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.grid import AngularGrid
from ..measurement.patterns import PatternTable
from .correlation import correlation_map
from .measurements import ProbeMeasurement

__all__ = ["AngleEstimate", "AngleEstimator"]

#: RSSI values are referenced to this nominal noise floor before the
#: linear-domain correlation; any constant works (the correlation is
#: scale-invariant) but keeping numbers small avoids float overflow.
_RSSI_REFERENCE_DBM = -71.5

_LOGGER = logging.getLogger(__name__)


@dataclass(frozen=True)
class AngleEstimate:
    """Result of one angle-of-arrival estimation."""

    azimuth_deg: float
    elevation_deg: float
    correlation: float
    n_probes_used: int


class AngleEstimator:
    """Correlation-based estimator over a measured pattern table."""

    def __init__(
        self,
        pattern_table: PatternTable,
        search_grid: Optional[AngularGrid] = None,
        domain: str = "linear",
        fusion: str = "product",
    ):
        """
        Args:
            pattern_table: measured sector patterns (Figures 5/6 data).
            search_grid: grid for the numeric argmax of Eq. 3; defaults
                to the table's own measurement grid.
            domain: correlation domain (see :mod:`.correlation`).
            fusion: ``"product"`` fuses the SNR and RSSI maps (Eq. 5);
                ``"snr"`` / ``"rssi"`` use one map alone (Eq. 3).
        """
        if fusion not in ("product", "snr", "rssi"):
            raise ValueError("fusion must be 'product', 'snr' or 'rssi'")
        self.pattern_table = pattern_table
        self.search_grid = search_grid if search_grid is not None else pattern_table.grid
        self.domain = domain
        self.fusion = fusion
        # Precompute the (n_sectors, n_grid_points) matrix once.
        self._matrix = pattern_table.sample_matrix(self.search_grid)
        self._row_of_sector: Dict[int, int] = {
            sector_id: row for row, sector_id in enumerate(pattern_table.sector_ids)
        }

    def known_sector_ids(self) -> List[int]:
        """Sectors with a measured pattern (usable as probes)."""
        return list(self._row_of_sector)

    def _rows_for(self, measurements: Sequence[ProbeMeasurement]) -> np.ndarray:
        try:
            rows = [self._row_of_sector[m.sector_id] for m in measurements]
        except KeyError as error:
            raise KeyError(f"no measured pattern for probed sector {error.args[0]}") from None
        return self._matrix[rows]

    def _usable_measurements(
        self, measurements: Sequence[ProbeMeasurement]
    ) -> List[ProbeMeasurement]:
        """Drop probes whose reported values are non-finite.

        Firmware reports occasionally carry NaN/inf after parse bugs or
        truncated ring-buffer reads; left alone they poison the whole
        correlation map (``NaN`` wins ``np.argmax`` ties arbitrarily).
        Only the channels the fusion mode actually uses are checked.

        Raises:
            ValueError: fewer than two finite measurements remain.
        """

        def finite(measurement: ProbeMeasurement) -> bool:
            if self.fusion in ("product", "snr") and not np.isfinite(measurement.snr_db):
                return False
            if self.fusion in ("product", "rssi") and not np.isfinite(measurement.rssi_dbm):
                return False
            return True

        kept = [m for m in measurements if finite(m)]
        dropped = len(measurements) - len(kept)
        if dropped:
            _LOGGER.warning(
                "dropped %d of %d probe measurements with non-finite "
                "snr/rssi values (sectors %s)",
                dropped,
                len(measurements),
                sorted(m.sector_id for m in measurements if not finite(m)),
            )
        if len(kept) < 2:
            if dropped:
                raise ValueError(
                    f"need at least two finite probe measurements to correlate "
                    f"({dropped} of {len(measurements)} were non-finite)"
                )
            raise ValueError("need at least two probe measurements to correlate")
        return kept

    def correlation_surface(
        self, measurements: Sequence[ProbeMeasurement]
    ) -> np.ndarray:
        """The fused correlation map over the search grid, flattened.

        Shape ``(grid.n_points,)``; reshape to ``grid.shape`` to plot.
        Non-finite probe values are dropped (with a logged count)
        before correlating.
        """
        return self._surface(self._usable_measurements(measurements))

    def _surface(self, measurements: Sequence[ProbeMeasurement]) -> np.ndarray:
        """Correlate already-validated measurements against the grid."""
        patterns = self._rows_for(measurements)
        surface = None
        if self.fusion in ("product", "snr"):
            snr_values = np.array([m.snr_db for m in measurements])
            surface = correlation_map(snr_values, patterns, self.domain)
        if self.fusion in ("product", "rssi"):
            rssi_values = np.array(
                [m.rssi_dbm - _RSSI_REFERENCE_DBM for m in measurements]
            )
            rssi_surface = correlation_map(rssi_values, patterns, self.domain)
            surface = rssi_surface if surface is None else surface * rssi_surface
        return surface

    def estimate(self, measurements: Sequence[ProbeMeasurement]) -> AngleEstimate:
        """Eq. 3 / Eq. 5: the grid direction with maximum correlation.

        ``n_probes_used`` counts only the finite measurements that
        actually entered the correlation.
        """
        measurements = self._usable_measurements(measurements)
        surface = self._surface(measurements)
        best_index = int(np.argmax(surface))
        azimuth, elevation = self.search_grid.index_to_angles(best_index)
        return AngleEstimate(
            azimuth_deg=azimuth,
            elevation_deg=elevation,
            correlation=float(surface[best_index]),
            n_probes_used=len(measurements),
        )
