"""Steering vectors for planar arrays.

A steering vector captures the relative carrier phase at each element
for a plane wave from direction ``(azimuth, elevation)``.  Beamforming
weights that conjugate the steering vector align all element
contributions in that direction.
"""

from __future__ import annotations

import numpy as np

from ..geometry.spherical import direction_vector
from .elements import ElementLayout

__all__ = ["steering_vector", "steering_matrix"]


def steering_vector(
    layout: ElementLayout, azimuth_deg: float, elevation_deg: float
) -> np.ndarray:
    """Complex steering vector of shape ``(n_elements,)``.

    Element ``i`` carries phase ``exp(j * 2π/λ * <p_i, u>)`` where
    ``p_i`` is the element position and ``u`` the unit direction.
    """
    direction = direction_vector(azimuth_deg, elevation_deg)
    wavenumber = 2.0 * np.pi / layout.wavelength_m
    phases = wavenumber * (layout.positions_m @ direction)
    return np.exp(1j * phases)


def steering_matrix(
    layout: ElementLayout, azimuths_deg: np.ndarray, elevations_deg: np.ndarray
) -> np.ndarray:
    """Steering vectors for many directions at once.

    Args:
        layout: the array geometry.
        azimuths_deg: flat array of ``k`` azimuth angles.
        elevations_deg: flat array of ``k`` elevation angles (same length).

    Returns:
        Complex array of shape ``(k, n_elements)``.
    """
    azimuths = np.atleast_1d(np.asarray(azimuths_deg, dtype=float))
    elevations = np.atleast_1d(np.asarray(elevations_deg, dtype=float))
    if azimuths.shape != elevations.shape:
        raise ValueError("azimuth and elevation arrays must have the same shape")
    directions = direction_vector(azimuths, elevations)  # (k, 3)
    wavenumber = 2.0 * np.pi / layout.wavelength_m
    phases = wavenumber * (directions @ layout.positions_m.T)  # (k, n)
    return np.exp(1j * phases)
