"""Angle-of-arrival estimation from compressive probes (Eqs. 3 and 5).

The estimator maximizes the correlation map over a discrete angular
grid.  Following §5, it can fuse the SNR-based and RSSI-based maps by
multiplication — the two values are acquired independently inside the
firmware, so an outlier in one rarely coincides with an outlier in the
other, and the product suppresses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.grid import AngularGrid
from ..measurement.patterns import PatternTable
from .correlation import correlation_map
from .measurements import ProbeMeasurement

__all__ = ["AngleEstimate", "AngleEstimator"]

#: RSSI values are referenced to this nominal noise floor before the
#: linear-domain correlation; any constant works (the correlation is
#: scale-invariant) but keeping numbers small avoids float overflow.
_RSSI_REFERENCE_DBM = -71.5


@dataclass(frozen=True)
class AngleEstimate:
    """Result of one angle-of-arrival estimation."""

    azimuth_deg: float
    elevation_deg: float
    correlation: float
    n_probes_used: int


class AngleEstimator:
    """Correlation-based estimator over a measured pattern table."""

    def __init__(
        self,
        pattern_table: PatternTable,
        search_grid: Optional[AngularGrid] = None,
        domain: str = "linear",
        fusion: str = "product",
    ):
        """
        Args:
            pattern_table: measured sector patterns (Figures 5/6 data).
            search_grid: grid for the numeric argmax of Eq. 3; defaults
                to the table's own measurement grid.
            domain: correlation domain (see :mod:`.correlation`).
            fusion: ``"product"`` fuses the SNR and RSSI maps (Eq. 5);
                ``"snr"`` / ``"rssi"`` use one map alone (Eq. 3).
        """
        if fusion not in ("product", "snr", "rssi"):
            raise ValueError("fusion must be 'product', 'snr' or 'rssi'")
        self.pattern_table = pattern_table
        self.search_grid = search_grid if search_grid is not None else pattern_table.grid
        self.domain = domain
        self.fusion = fusion
        # Precompute the (n_sectors, n_grid_points) matrix once.
        self._matrix = pattern_table.sample_matrix(self.search_grid)
        self._row_of_sector: Dict[int, int] = {
            sector_id: row for row, sector_id in enumerate(pattern_table.sector_ids)
        }

    def known_sector_ids(self) -> List[int]:
        """Sectors with a measured pattern (usable as probes)."""
        return list(self._row_of_sector)

    def _rows_for(self, measurements: Sequence[ProbeMeasurement]) -> np.ndarray:
        try:
            rows = [self._row_of_sector[m.sector_id] for m in measurements]
        except KeyError as error:
            raise KeyError(f"no measured pattern for probed sector {error.args[0]}") from None
        return self._matrix[rows]

    def correlation_surface(
        self, measurements: Sequence[ProbeMeasurement]
    ) -> np.ndarray:
        """The fused correlation map over the search grid, flattened.

        Shape ``(grid.n_points,)``; reshape to ``grid.shape`` to plot.
        """
        if len(measurements) < 2:
            raise ValueError("need at least two probe measurements to correlate")
        patterns = self._rows_for(measurements)
        surface = None
        if self.fusion in ("product", "snr"):
            snr_values = np.array([m.snr_db for m in measurements])
            surface = correlation_map(snr_values, patterns, self.domain)
        if self.fusion in ("product", "rssi"):
            rssi_values = np.array(
                [m.rssi_dbm - _RSSI_REFERENCE_DBM for m in measurements]
            )
            rssi_surface = correlation_map(rssi_values, patterns, self.domain)
            surface = rssi_surface if surface is None else surface * rssi_surface
        return surface

    def estimate(self, measurements: Sequence[ProbeMeasurement]) -> AngleEstimate:
        """Eq. 3 / Eq. 5: the grid direction with maximum correlation."""
        surface = self.correlation_surface(measurements)
        best_index = int(np.argmax(surface))
        azimuth, elevation = self.search_grid.index_to_angles(best_index)
        return AngleEstimate(
            azimuth_deg=azimuth,
            elevation_deg=elevation,
            correlation=float(surface[best_index]),
            n_probes_used=len(measurements),
        )
