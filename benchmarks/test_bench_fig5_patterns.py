"""Bench: regenerate Figure 5 (azimuth patterns of all 35 sectors).

Runs the full-circle chamber campaign and checks the §4.4 qualitative
traits: dominant single lobes on the strong sectors, multiple lobes on
13/22/27, weak 25/62, and distortion behind the device.
"""

import numpy as np

from repro.experiments import Fig5Config, run_fig5
from repro.phased_array import (
    MULTI_LOBE_SECTOR_IDS,
    STRONG_SECTOR_IDS,
    WEAK_SECTOR_IDS,
)


def test_fig5_azimuth_patterns(benchmark, report_rows):
    config = Fig5Config(azimuth_step_deg=1.8, n_sweeps=2)  # paper: 0.9, 3 sweeps
    result = benchmark.pedantic(lambda: run_fig5(config), rounds=1, iterations=1)
    report_rows(result.format_rows())

    table = result.table
    assert table.n_sectors == 35
    assert not table.has_gaps()

    # Strong sectors clearly outgain the weak ones.
    strong_peaks = [result.summaries[s].peak_snr_db for s in STRONG_SECTOR_IDS]
    weak_peaks = [result.summaries[s].peak_snr_db for s in WEAK_SECTOR_IDS]
    assert min(strong_peaks) > max(weak_peaks) + 3.0

    # The beacon sector 63 is among the strongest and points frontal.
    summary_63 = result.summaries[63]
    assert abs(summary_63.peak_azimuth_deg) < 30.0

    # At least one designed multi-lobe sector shows multiple lobes.
    lobe_counts = [result.summaries[s].n_lobes for s in MULTI_LOBE_SECTOR_IDS]
    assert max(lobe_counts) >= 2

    # Distorted/attenuated back region: average of |az| > 120 well below
    # the frontal average for the strong sectors.
    azimuths = table.grid.azimuths_deg
    back = np.abs(azimuths) > 120.0
    front = np.abs(azimuths) <= 60.0
    for sector_id in STRONG_SECTOR_IDS:
        pattern = table.pattern(sector_id)[0]
        assert pattern[front].max() > pattern[back].max() + 6.0
