"""Simulated QCA9500 firmware: memory map, patches, WMI, sweep reports."""

from .chip import DEFAULT_FIRMWARE_VERSION, QCA9500, SweepReport
from .memory import MemoryProtectionError, MemoryRegion, QCA9500MemoryMap
from .patches import (
    Patch,
    PatchFramework,
    sector_override_patch,
    signal_strength_extraction_patch,
)
from .ringbuffer import RingBuffer
from .wmi_codec import WMI_COMMAND_IDS, decode_wmi, encode_wmi
from .wmi import (
    WmiClearSectorOverride,
    WmiCommand,
    WmiDrainSweepReports,
    WmiError,
    WmiResetSweepState,
    WmiSetSectorOverride,
)

__all__ = [
    "DEFAULT_FIRMWARE_VERSION",
    "QCA9500",
    "SweepReport",
    "MemoryProtectionError",
    "MemoryRegion",
    "QCA9500MemoryMap",
    "Patch",
    "PatchFramework",
    "sector_override_patch",
    "signal_strength_extraction_patch",
    "RingBuffer",
    "WmiClearSectorOverride",
    "WmiCommand",
    "WmiDrainSweepReports",
    "WmiError",
    "WmiResetSweepState",
    "WmiSetSectorOverride",
    "WMI_COMMAND_IDS",
    "decode_wmi",
    "encode_wmi",
]
