"""One engine for every experiment: plan → execute → post-process.

The paper's evaluation is a single experiment shape — record full
sweeps, probe a subset, select, score — instantiated for several
strategies.  :class:`ScenarioRunner` owns that shape once:

* **plan_trials** replays each policy's probe draws in the exact
  scalar order (one draw per recording × sweep × subsample) and packs
  them into per-recording :class:`TrialBlock` arrays;
* **execute** evaluates the blocks through the policy's batched fast
  path (or a scalar fallback for policies without one), resetting
  selection state per recording or per plan;
* **run_interactive** drives multi-round policies (hierarchical
  search) against a measure callable, round by round;
* **run** resolves a :class:`~.spec.ScenarioSpec` through the registry,
  times every policy, and emits a :class:`~.manifest.RunManifest`.

Bit-exactness: randomness is consumed *only* during planning, batched
kernels are row-sequential twins of the scalar paths (PR-2), and reset
boundaries reproduce each legacy loop's selector lifetimes — so every
experiment's output is bit-identical to its pre-runtime version, at
any ``jobs`` count.

Sharding (``jobs > 1``) fans per-recording blocks out to a process
pool.  It engages only when state resets per recording (blocks are
then independent), the policy is batched, and both the testbed and the
policy are spec-described (workers rebuild them from JSON); anything
else degrades to the sequential path, same results.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .manifest import RunManifest, git_revision
from .policy import PolicyContext, PolicyOutcome
from .spec import PolicySpec, ScenarioSpec, TestbedSpec

__all__ = [
    "TrialBlock",
    "TrialRecord",
    "RunOutcome",
    "ScenarioRunner",
]


@dataclass(frozen=True)
class TrialBlock:
    """All planned trials of one recording, padded into batch arrays.

    Rows are trials in scalar order (sweep-major, then subsample).
    ``sector_ids`` / ``snr_db`` / ``rssi_dbm`` / ``mask`` have shape
    ``(n_trials, width)`` — the argument layout of ``select_batch`` —
    and ``probes_requested[t]`` is the number of probes the policy
    asked for in trial ``t`` (before padding and before reports went
    missing), which prices the training airtime.
    """

    recording_index: int
    sector_ids: np.ndarray
    snr_db: np.ndarray
    rssi_dbm: np.ndarray
    mask: np.ndarray
    sweep_indices: np.ndarray
    subsample_indices: np.ndarray
    probes_requested: np.ndarray

    @property
    def n_trials(self) -> int:
        return self.sector_ids.shape[0]


@dataclass(frozen=True)
class TrialRecord:
    """One evaluated trial, tagged with its origin in the plan."""

    recording_index: int
    sweep_index: int
    subsample: int
    result: Any  # SelectionResult
    probes_requested: int


@dataclass(frozen=True)
class RunOutcome:
    """What :meth:`ScenarioRunner.run` returns."""

    result: Any
    manifest: RunManifest


# ----------------------------------------------------------------------
# Process-pool worker side.
#
# Workers rebuild the testbed and policy from their canonical-JSON spec
# keys (build_testbed is lru_cached and disk-memoized, so under the
# preferred fork start method this is a cache hit) and keep them in
# module-level caches across block submissions.
# ----------------------------------------------------------------------

_WORKER_CONTEXTS: Dict[str, PolicyContext] = {}
_WORKER_POLICIES: Dict[Tuple[str, str], Any] = {}


def _worker_run_block(testbed_key: str, policy_key: str, block: TrialBlock):
    policy = _WORKER_POLICIES.get((testbed_key, policy_key))
    if policy is None:
        from .registry import build_policy, load_builtin

        load_builtin()
        context = _WORKER_CONTEXTS.get(testbed_key)
        if context is None:
            testbed = TestbedSpec.from_json(json.loads(testbed_key)).build()
            context = PolicyContext(testbed=testbed)
            _WORKER_CONTEXTS[testbed_key] = context
        policy = build_policy(PolicySpec.from_json(json.loads(policy_key)), context)
        _WORKER_POLICIES[(testbed_key, policy_key)] = policy
    policy.reset()
    return policy.select_batch(
        block.sector_ids,
        snr_db=block.snr_db,
        rssi_dbm=block.rssi_dbm,
        mask=block.mask,
    )


def _pad_rows(
    rows: Sequence[np.ndarray], fill: float, dtype=None
) -> np.ndarray:
    """Stack 1-D rows, padding shorter ones with ``fill`` on the right.

    Equal-length rows (the common case — fixed probe budgets) stack
    without any padding, so the arrays reaching ``select_batch`` are
    exactly the ones the legacy loops built.
    """
    width = max((row.size for row in rows), default=0)
    out = np.full((len(rows), width), fill, dtype=dtype if dtype else float)
    for index, row in enumerate(rows):
        out[index, : row.size] = row
    return out


class ScenarioRunner:
    """Executes scenario specs; owns trial loops, batching, sharding."""

    def __init__(self, jobs: int = 1):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = int(jobs)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._contexts: Dict[int, PolicyContext] = {}
        self._policy_timings: Dict[str, float] = {}

    # -- spec resolution ------------------------------------------------

    def run(self, spec: ScenarioSpec) -> RunOutcome:
        """Resolve and execute a scenario spec; emit result + manifest."""
        from .registry import get_scenario

        entry = get_scenario(spec.scenario)
        self._policy_timings = {}
        started = datetime.now(timezone.utc).isoformat(timespec="seconds")
        begin = time.perf_counter()
        try:
            result = entry.executor(spec, self)
        finally:
            self.close()
        manifest = RunManifest(
            scenario=spec.scenario,
            spec_digest=spec.digest(),
            seed=spec.seed,
            jobs=self.jobs,
            git_rev=git_revision(),
            started=started,
            wall_time_s=time.perf_counter() - begin,
            policy_timings_s=dict(self._policy_timings),
        )
        return RunOutcome(result=result, manifest=manifest)

    def context(self, testbed) -> PolicyContext:
        """The shared per-testbed policy context (selector cache)."""
        context = self._contexts.get(id(testbed))
        if context is None:
            context = PolicyContext(testbed=testbed)
            self._contexts[id(testbed)] = context
        return context

    def build_policy(self, policy_spec: PolicySpec, context: PolicyContext):
        from .registry import build_policy

        return build_policy(policy_spec, context)

    # -- planning -------------------------------------------------------

    def plan_trials(
        self,
        policy,
        recordings: Sequence,
        tx_ids: Sequence[int],
        rng: np.random.Generator,
        subsamples_per_sweep: int = 1,
    ) -> List[TrialBlock]:
        """Pre-draw every trial's probes in scalar order, per recording.

        The single place randomness is consumed: one
        ``probes_for_round(0, ...)`` call per recording × sweep ×
        subsample, in exactly that nesting order — the draw order every
        legacy experiment loop used.
        """
        column_of = {sector_id: column for column, sector_id in enumerate(tx_ids)}
        id_row = np.asarray(tx_ids, dtype=np.intp)
        pool = list(tx_ids)
        blocks: List[TrialBlock] = []
        for recording_index, recording in enumerate(recordings):
            present, snr, rssi = recording.packed_sweeps(tx_ids)
            row_ids: List[np.ndarray] = []
            row_snr: List[np.ndarray] = []
            row_rssi: List[np.ndarray] = []
            row_mask: List[np.ndarray] = []
            sweep_ix: List[int] = []
            sub_ix: List[int] = []
            requested: List[int] = []
            for sweep_index in range(len(recording.sweeps)):
                for subsample in range(subsamples_per_sweep):
                    probe_ids = policy.probes_for_round(0, pool, rng)
                    if probe_ids is None:
                        raise ValueError(
                            f"policy '{getattr(policy, 'name', policy)}' declined "
                            f"round 0; multi-round policies need run_interactive"
                        )
                    columns = np.asarray(
                        [column_of[sector_id] for sector_id in probe_ids],
                        dtype=np.intp,
                    )
                    row_ids.append(id_row[columns])
                    row_snr.append(snr[sweep_index, columns])
                    row_rssi.append(rssi[sweep_index, columns])
                    row_mask.append(present[sweep_index, columns])
                    sweep_ix.append(sweep_index)
                    sub_ix.append(subsample)
                    requested.append(len(probe_ids))
            blocks.append(
                TrialBlock(
                    recording_index=recording_index,
                    sector_ids=_pad_rows(row_ids, 0, dtype=np.intp),
                    snr_db=_pad_rows(row_snr, np.nan),
                    rssi_dbm=_pad_rows(row_rssi, np.nan),
                    mask=_pad_rows(row_mask, False, dtype=bool),
                    sweep_indices=np.asarray(sweep_ix, dtype=np.intp),
                    subsample_indices=np.asarray(sub_ix, dtype=np.intp),
                    probes_requested=np.asarray(requested, dtype=np.intp),
                )
            )
        return blocks

    # -- execution ------------------------------------------------------

    def execute(
        self,
        policy,
        blocks: Sequence[TrialBlock],
        reset: str = "recording",
        policy_spec: Optional[PolicySpec] = None,
        testbed_spec: Optional[TestbedSpec] = None,
        label: Optional[str] = None,
    ) -> List[TrialRecord]:
        """Evaluate planned blocks through a policy.

        ``reset`` fixes the selection-state lifetime:

        * ``"recording"`` — state resets at every block boundary (the
          fresh-selector-per-recording loops).  Blocks are independent,
          so this mode is eligible for process-pool sharding.
        * ``"plan"`` — one reset up front, state threads through all
          blocks in order (the one-big-batch loops).  Always
          sequential.
        """
        if reset not in ("recording", "plan"):
            raise ValueError("reset must be 'recording' or 'plan'")
        if label is None:
            label = getattr(policy, "name", type(policy).__name__)
        begin = time.perf_counter()
        try:
            if (
                self.jobs > 1
                and reset == "recording"
                and len(blocks) > 1
                and policy_spec is not None
                and testbed_spec is not None
                and hasattr(policy, "select_batch")
            ):
                records = self._execute_pool(policy_spec, testbed_spec, blocks)
            else:
                records = self._execute_local(policy, blocks, reset)
        finally:
            elapsed = time.perf_counter() - begin
            self._policy_timings[label] = self._policy_timings.get(label, 0.0) + elapsed
        return records

    def _execute_local(
        self, policy, blocks: Sequence[TrialBlock], reset: str
    ) -> List[TrialRecord]:
        policy.reset()
        records: List[TrialRecord] = []
        for block in blocks:
            if reset == "recording":
                policy.reset()
            records.extend(self._records_of(block, self._evaluate_block(policy, block)))
        return records

    def _evaluate_block(self, policy, block: TrialBlock) -> List:
        if hasattr(policy, "select_batch"):
            return policy.select_batch(
                block.sector_ids,
                snr_db=block.snr_db,
                rssi_dbm=block.rssi_dbm,
                mask=block.mask,
            )
        # Scalar fallback for policies without a batched kernel (e.g.
        # third-party plugins): rebuild each row's measurement list.
        from ..core.measurements import ProbeMeasurement

        results = []
        for row in range(block.n_trials):
            measurements = [
                ProbeMeasurement(
                    sector_id=int(block.sector_ids[row, column]),
                    snr_db=float(block.snr_db[row, column]),
                    rssi_dbm=float(block.rssi_dbm[row, column]),
                )
                for column in np.flatnonzero(block.mask[row])
            ]
            results.append(policy.select(measurements))
        return results

    @staticmethod
    def _records_of(block: TrialBlock, results: Sequence) -> List[TrialRecord]:
        return [
            TrialRecord(
                recording_index=block.recording_index,
                sweep_index=int(block.sweep_indices[index]),
                subsample=int(block.subsample_indices[index]),
                result=result,
                probes_requested=int(block.probes_requested[index]),
            )
            for index, result in enumerate(results)
        ]

    def _execute_pool(
        self,
        policy_spec: PolicySpec,
        testbed_spec: TestbedSpec,
        blocks: Sequence[TrialBlock],
    ) -> List[TrialRecord]:
        testbed_key = testbed_spec.key()
        policy_key = policy_spec.key()
        pool = self._ensure_pool()
        futures = [
            pool.submit(_worker_run_block, testbed_key, policy_key, block)
            for block in blocks
        ]
        records: List[TrialRecord] = []
        for block, future in zip(blocks, futures):
            records.extend(self._records_of(block, future.result()))
        return records

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if "fork" in multiprocessing.get_all_start_methods():
                mp_context = multiprocessing.get_context("fork")
            else:  # pragma: no cover - non-POSIX fallback
                mp_context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=mp_context
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (no-op when none was started)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- interactive (multi-round) path ---------------------------------

    def run_interactive(
        self,
        policy,
        pool: Sequence[int],
        measure: Callable[[List[int], np.random.Generator], List],
        rng: np.random.Generator,
        label: Optional[str] = None,
    ) -> PolicyOutcome:
        """Drive one training round-by-round (hierarchical, oracle, …).

        ``measure(sector_ids, rng)`` returns the measurements of the
        requested probes; rounds continue until ``probes_for_round``
        returns None.  The last round's ``select`` result is the
        trial's outcome.
        """
        if label is None:
            label = getattr(policy, "name", type(policy).__name__)
        begin = time.perf_counter()
        try:
            result = None
            probes_used = 0
            round_index = 0
            while True:
                probe_ids = policy.probes_for_round(round_index, pool, rng)
                if probe_ids is None:
                    break
                measurements = measure(list(probe_ids), rng)
                probes_used += len(probe_ids)
                result = policy.select(measurements)
                round_index += 1
            if result is None:
                raise ValueError(
                    f"policy '{label}' ran zero rounds — nothing to select from"
                )
            return PolicyOutcome(
                result=result,
                probes_used=probes_used,
                n_rounds=round_index,
                training_time_us=policy.training_time_us(probes_used, round_index),
            )
        finally:
            elapsed = time.perf_counter() - begin
            self._policy_timings[label] = self._policy_timings.get(label, 0.0) + elapsed
