#!/usr/bin/env python3
"""Adaptive beam tracking of a moving peer (paper §7, future work).

A client walks an arc around the access point: it holds still, moves,
then holds still again.  The tracker re-trains every interval; the §7
adaptive controller shrinks the probe budget while the scene is static
and re-opens it when the angle estimates start moving, saving airtime
without losing the peer.

Run:  python examples/mobile_tracking.py
"""

from typing import List

import numpy as np

from repro.channel import LinkBudget, MeasurementModel, lab_environment
from repro.channel.batch import sweep_snr_matrix
from repro.core import (
    AdaptiveProbeController,
    CompressiveSectorSelector,
    ProbeMeasurement,
    SectorTracker,
)
from repro.experiments import build_testbed
from repro.geometry import Orientation


def client_azimuth(step: int) -> float:
    """The peer's device-frame azimuth over time: hold, move, hold."""
    if step < 15:
        return -30.0
    if step < 35:
        return -30.0 + 3.0 * (step - 15)  # 3 deg per interval
    return 30.0


def main() -> None:
    rng = np.random.default_rng(7)
    testbed = build_testbed()
    environment = lab_environment(3.0)
    budget = LinkBudget()
    firmware = MeasurementModel()
    tx_ids = testbed.tx_sector_ids

    current_truth: List[np.ndarray] = [np.zeros(len(tx_ids))]

    def measure(sector_ids, generator):
        measurements = []
        for sector_id in sector_ids:
            column = tx_ids.index(sector_id)
            observation = firmware.observe(
                current_truth[0][column], budget.noise_floor_dbm, generator
            )
            if observation is not None:
                measurements.append(
                    ProbeMeasurement(sector_id, observation.snr_db, observation.rssi_dbm)
                )
        return measurements

    adaptive = AdaptiveProbeController()
    tracker = SectorTracker(
        CompressiveSectorSelector(testbed.pattern_table), adaptive=adaptive
    )
    # Baseline: the fixed budget you would need to track the moving
    # phase without adaptation (the controller's ceiling).
    fixed_budget_us = 0.0

    print("step | az truth | probes | sector | est az | training [us]")
    for step in range(50):
        azimuth = client_azimuth(step)
        orientation = Orientation(yaw_deg=-azimuth)
        current_truth[0] = sweep_snr_matrix(
            environment, testbed.dut_antenna, testbed.dut_codebook, tx_ids,
            [orientation], testbed.ref_antenna,
            testbed.ref_codebook.rx_sector.weights, budget=budget,
        )[0]
        outcome = tracker.step(measure, rng)
        fixed_budget_us += adaptive.max_probes * 2 * 18.0 + 49.1
        estimate = outcome.result.estimate
        estimated = f"{estimate.azimuth_deg:+6.1f}" if estimate else "  n/a "
        if step % 5 == 0 or 15 <= step < 35:
            print(f"{step:4d} | {azimuth:+8.1f} | {len(outcome.probe_ids):6d} | "
                  f"{outcome.result.sector_id:6d} | {estimated} | "
                  f"{outcome.training_time_us:8.1f}")

    adaptive_total = tracker.total_training_time_us
    print(f"\nadaptive training airtime: {adaptive_total / 1000:.2f} ms "
          f"vs fixed-{adaptive.max_probes} {fixed_budget_us / 1000:.2f} ms "
          f"({100 * (1 - adaptive_total / fixed_budget_us):.0f}% saved)")


if __name__ == "__main__":
    main()
