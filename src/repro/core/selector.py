"""Sector selector interface and the stock sector-sweep baseline.

A *selector* maps one sweep's probe measurements to a transmit sector.
:class:`SectorSweepSelector` is the IEEE 802.11ad baseline (paper
Eq. 1): the argmax of the reported SNR values over everything probed —
including any outliers, which is precisely why its selections
fluctuate (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

from .estimator import AngleEstimate
from .measurements import ProbeMeasurement

__all__ = ["SelectionResult", "SectorSelector", "SectorSweepSelector"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one selection.

    Attributes:
        sector_id: chosen transmit sector.
        estimate: angle estimate, for selectors that compute one.
        fallback: True when the selector could not run its primary
            logic (e.g. too few probes) and fell back.
    """

    sector_id: int
    estimate: Optional[AngleEstimate] = None
    fallback: bool = False


class SectorSelector(Protocol):
    """Anything that turns sweep measurements into a sector choice."""

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        """Choose a transmit sector from one sweep's measurements."""
        ...


class SectorSweepSelector:
    """The standard's exhaustive selection: ``argmax_n p_n`` (Eq. 1).

    Stateful like the firmware: when a sweep yields no usable report,
    the previous selection is kept.
    """

    def __init__(self, initial_sector_id: int = 1):
        self._last_selection = initial_sector_id

    @property
    def last_selection(self) -> int:
        return self._last_selection

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        if not measurements:
            return SelectionResult(sector_id=self._last_selection, fallback=True)
        best = max(measurements, key=lambda m: m.snr_db)
        self._last_selection = best.sector_id
        return SelectionResult(sector_id=best.sector_id)
