"""Host side: the wil6210-style driver over the binary WMI mailbox."""

from .driver import DriverCounters, Wil6210Driver

__all__ = ["DriverCounters", "Wil6210Driver"]
