"""Discrete angular grids for pattern tables and correlation search.

The compressive estimator (paper Eq. 3) maximizes a correlation map over
a discrete ``(azimuth, elevation)`` grid; :class:`AngularGrid` is that
grid.  It stores the azimuth and elevation sample axes and offers
flattened views used by the vectorized correlation kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

__all__ = ["AngularGrid"]


@dataclass(frozen=True)
class AngularGrid:
    """A rectangular grid over azimuth × elevation, in degrees.

    Attributes:
        azimuths_deg: strictly increasing azimuth samples.
        elevations_deg: strictly increasing elevation samples.
    """

    azimuths_deg: np.ndarray
    elevations_deg: np.ndarray

    def __post_init__(self) -> None:
        azimuths = np.atleast_1d(np.asarray(self.azimuths_deg, dtype=float))
        elevations = np.atleast_1d(np.asarray(self.elevations_deg, dtype=float))
        if azimuths.size == 0 or elevations.size == 0:
            raise ValueError("grid axes must be non-empty")
        if azimuths.size > 1 and np.any(np.diff(azimuths) <= 0):
            raise ValueError("azimuths must be strictly increasing")
        if elevations.size > 1 and np.any(np.diff(elevations) <= 0):
            raise ValueError("elevations must be strictly increasing")
        object.__setattr__(self, "azimuths_deg", azimuths)
        object.__setattr__(self, "elevations_deg", elevations)

    @classmethod
    def from_spacing(
        cls,
        azimuth_range_deg: Tuple[float, float],
        azimuth_step_deg: float,
        elevation_range_deg: Tuple[float, float] = (0.0, 0.0),
        elevation_step_deg: float = 1.0,
    ) -> "AngularGrid":
        """Build a grid from ranges and step sizes (ends inclusive)."""
        if azimuth_step_deg <= 0 or elevation_step_deg <= 0:
            raise ValueError("step sizes must be positive")
        az_lo, az_hi = azimuth_range_deg
        el_lo, el_hi = elevation_range_deg
        if az_hi < az_lo or el_hi < el_lo:
            raise ValueError("ranges must be non-decreasing")
        n_az = int(round((az_hi - az_lo) / azimuth_step_deg)) + 1
        n_el = int(round((el_hi - el_lo) / elevation_step_deg)) + 1
        azimuths = az_lo + azimuth_step_deg * np.arange(n_az)
        elevations = el_lo + elevation_step_deg * np.arange(n_el)
        return cls(azimuths, elevations)

    @property
    def n_azimuth(self) -> int:
        return self.azimuths_deg.size

    @property
    def n_elevation(self) -> int:
        return self.elevations_deg.size

    @property
    def n_points(self) -> int:
        """Total number of grid points."""
        return self.n_azimuth * self.n_elevation

    @property
    def shape(self) -> Tuple[int, int]:
        """Grid shape as ``(n_elevation, n_azimuth)``."""
        return (self.n_elevation, self.n_azimuth)

    def meshgrid(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(azimuth, elevation)`` arrays of shape :attr:`shape`."""
        return np.meshgrid(self.azimuths_deg, self.elevations_deg)

    def flat_angles(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flattened ``(azimuth, elevation)`` arrays of length :attr:`n_points`."""
        az_mesh, el_mesh = self.meshgrid()
        return az_mesh.ravel(), el_mesh.ravel()

    def index_to_angles(self, flat_index: int) -> Tuple[float, float]:
        """Map a flat index (C order over :attr:`shape`) to angles."""
        if not 0 <= flat_index < self.n_points:
            raise IndexError(f"flat index {flat_index} out of range for {self.n_points} points")
        el_index, az_index = divmod(flat_index, self.n_azimuth)
        return float(self.azimuths_deg[az_index]), float(self.elevations_deg[el_index])

    def nearest_index(self, azimuth_deg: float, elevation_deg: float) -> int:
        """Flat index of the grid point nearest to the given direction."""
        az_index = int(np.abs(self.azimuths_deg - azimuth_deg).argmin())
        el_index = int(np.abs(self.elevations_deg - elevation_deg).argmin())
        return el_index * self.n_azimuth + az_index
