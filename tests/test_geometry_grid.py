"""Unit tests for the angular search grid."""

import numpy as np
import pytest

from repro.geometry import AngularGrid


@pytest.fixture
def grid() -> AngularGrid:
    return AngularGrid(np.array([-10.0, 0.0, 10.0, 20.0]), np.array([0.0, 5.0]))


class TestConstruction:
    def test_shape_and_counts(self, grid):
        assert grid.n_azimuth == 4
        assert grid.n_elevation == 2
        assert grid.n_points == 8
        assert grid.shape == (2, 4)

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError):
            AngularGrid(np.array([]), np.array([0.0]))

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError):
            AngularGrid(np.array([0.0, 0.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            AngularGrid(np.array([0.0, -1.0]), np.array([0.0]))

    def test_from_spacing_inclusive_ends(self):
        grid = AngularGrid.from_spacing((-90.0, 90.0), 1.8, (0.0, 32.4), 3.6)
        assert grid.azimuths_deg[0] == -90.0
        assert grid.azimuths_deg[-1] == pytest.approx(90.0)
        assert grid.elevations_deg[-1] == pytest.approx(32.4)
        assert grid.n_azimuth == 101
        assert grid.n_elevation == 10

    def test_from_spacing_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            AngularGrid.from_spacing((0.0, 10.0), -1.0)


class TestIndexing:
    def test_flat_angles_c_order(self, grid):
        azimuths, elevations = grid.flat_angles()
        assert azimuths.shape == (8,)
        # First row is elevation 0, azimuths in order.
        np.testing.assert_allclose(azimuths[:4], [-10.0, 0.0, 10.0, 20.0])
        np.testing.assert_allclose(elevations[:4], 0.0)
        np.testing.assert_allclose(elevations[4:], 5.0)

    def test_index_to_angles_roundtrip(self, grid):
        azimuths, elevations = grid.flat_angles()
        for index in range(grid.n_points):
            azimuth, elevation = grid.index_to_angles(index)
            assert azimuth == pytest.approx(azimuths[index])
            assert elevation == pytest.approx(elevations[index])

    def test_index_out_of_range(self, grid):
        with pytest.raises(IndexError):
            grid.index_to_angles(8)
        with pytest.raises(IndexError):
            grid.index_to_angles(-1)

    def test_nearest_index(self, grid):
        index = grid.nearest_index(9.0, 4.0)
        azimuth, elevation = grid.index_to_angles(index)
        assert azimuth == 10.0
        assert elevation == 5.0

    def test_nearest_index_exact_point(self, grid):
        index = grid.nearest_index(0.0, 0.0)
        assert grid.index_to_angles(index) == (0.0, 0.0)

    def test_meshgrid_shapes(self, grid):
        az_mesh, el_mesh = grid.meshgrid()
        assert az_mesh.shape == grid.shape
        assert el_mesh.shape == grid.shape
