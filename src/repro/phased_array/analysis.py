"""Antenna pattern analysis: beamwidth, directivity, sidelobes, coverage.

The paper deliberately avoids quoting beamwidths for the Talon's
sectors ("due to these strong variations, we do not provide beamwidths
or sector steering angles") — precisely because real patterns need
robust numeric definitions.  This module provides them, for both
ground-truth gain cuts and measured SNR patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["PatternMetrics", "analyze_cut", "coverage_fraction", "codebook_coverage"]


@dataclass(frozen=True)
class PatternMetrics:
    """Summary metrics of one azimuth cut of a pattern."""

    peak_db: float
    peak_azimuth_deg: float
    beamwidth_3db_deg: Optional[float]
    sidelobe_level_db: Optional[float]
    n_lobes: int


def _lobe_runs(above: np.ndarray) -> List[np.ndarray]:
    """Index runs of True values, treating the axis as circular."""
    if not above.any():
        return []
    if above.all():
        return [np.arange(above.size)]
    # Rotate so the cut starts outside a lobe, then split runs.
    start = int(np.argmin(above))
    rotated = np.roll(above, -start)
    indices = (np.arange(above.size) + start) % above.size
    runs: List[np.ndarray] = []
    current: List[int] = []
    for position, flag in enumerate(rotated):
        if flag:
            current.append(indices[position])
        elif current:
            runs.append(np.asarray(current))
            current = []
    if current:
        runs.append(np.asarray(current))
    return runs


def analyze_cut(
    gains_db: Sequence[float],
    azimuths_deg: Sequence[float],
    lobe_threshold_db: float = 3.0,
) -> PatternMetrics:
    """Compute metrics for one circular azimuth cut.

    Args:
        gains_db: gain (or measured SNR) per azimuth sample.
        azimuths_deg: matching azimuth axis (uniformly spaced).
        lobe_threshold_db: lobes are regions within this of the peak.
    """
    gains = np.asarray(list(gains_db), dtype=float)
    azimuths = np.asarray(list(azimuths_deg), dtype=float)
    if gains.shape != azimuths.shape or gains.ndim != 1 or gains.size < 3:
        raise ValueError("need matching 1-D arrays of at least 3 samples")

    peak_index = int(np.argmax(gains))
    peak = float(gains[peak_index])
    step = float(np.median(np.diff(azimuths)))

    # Main-lobe 3 dB beamwidth: walk outward from the peak.
    above_3db = gains >= peak - 3.0
    runs = _lobe_runs(above_3db)
    beamwidth: Optional[float] = None
    for run in runs:
        if peak_index in run:
            beamwidth = float(len(run) * step)
            break

    # Sidelobe level: strongest sample outside the *null-to-null* main
    # lobe (walk from the peak in both directions until gains rise).
    n = gains.size
    left = peak_index
    while True:
        nxt = (left - 1) % n
        if nxt == peak_index or gains[nxt] > gains[left]:
            break
        left = nxt
    right = peak_index
    while True:
        nxt = (right + 1) % n
        if nxt == peak_index or gains[nxt] > gains[right]:
            break
        right = nxt
    main_extent = {peak_index}
    index = left
    while True:
        main_extent.add(index)
        if index == right:
            break
        index = (index + 1) % n
    sidelobe: Optional[float] = None
    if len(main_extent) < n:
        outside = np.ones(n, dtype=bool)
        outside[list(main_extent)] = False
        sidelobe = float(gains[outside].max() - peak)

    lobes = _lobe_runs(gains >= peak - lobe_threshold_db)
    return PatternMetrics(
        peak_db=peak,
        peak_azimuth_deg=float(azimuths[peak_index]),
        beamwidth_3db_deg=beamwidth,
        sidelobe_level_db=sidelobe,
        n_lobes=max(len(lobes), 1),
    )


def coverage_fraction(
    gains_db: np.ndarray, threshold_db: float
) -> float:
    """Fraction of sampled directions with gain above a threshold."""
    gains = np.asarray(gains_db, dtype=float)
    if gains.size == 0:
        raise ValueError("empty gain array")
    return float(np.mean(gains >= threshold_db))


def codebook_coverage(
    per_sector_gains_db: Sequence[np.ndarray], threshold_db: float
) -> float:
    """Fraction of directions served by *some* sector above a threshold.

    The composite coverage of a codebook: for each sampled direction
    take the best sector, then threshold.  A well-designed codebook
    covers its service region with no holes.
    """
    stacked = np.stack([np.asarray(g, dtype=float) for g in per_sector_gains_db])
    best = stacked.max(axis=0)
    return float(np.mean(best >= threshold_db))
