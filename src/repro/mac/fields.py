"""Bit-level field packing for DMG sector-sweep frames.

The IEEE 802.11ad SSW field is a 24-bit structure carrying the
direction flag, the CDOWN countdown, the sector ID, the DMG antenna ID
and the RXSS length.  We implement the exact bit layout so frames can
round-trip through bytes like real captures do.

Layout (LSB first, per IEEE 802.11-2012 §8.4a.1):

    bit  0      : Direction (0 = initiator, 1 = responder)
    bits 1..9   : CDOWN (9 bits)
    bits 10..15 : Sector ID (6 bits)
    bits 16..17 : DMG Antenna ID (2 bits)
    bits 18..23 : RXSS Length (6 bits)
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SSWField"]

_CDOWN_MAX = (1 << 9) - 1
_SECTOR_MAX = (1 << 6) - 1
_ANTENNA_MAX = (1 << 2) - 1
_RXSS_MAX = (1 << 6) - 1


@dataclass(frozen=True)
class SSWField:
    """The 24-bit SSW field of SSW and SSW-feedback frames."""

    direction: int
    cdown: int
    sector_id: int
    dmg_antenna_id: int = 0
    rxss_length: int = 0

    def __post_init__(self) -> None:
        if self.direction not in (0, 1):
            raise ValueError("direction must be 0 (initiator) or 1 (responder)")
        if not 0 <= self.cdown <= _CDOWN_MAX:
            raise ValueError(f"CDOWN out of 9-bit range: {self.cdown}")
        if not 0 <= self.sector_id <= _SECTOR_MAX:
            raise ValueError(f"sector ID out of 6-bit range: {self.sector_id}")
        if not 0 <= self.dmg_antenna_id <= _ANTENNA_MAX:
            raise ValueError(f"antenna ID out of 2-bit range: {self.dmg_antenna_id}")
        if not 0 <= self.rxss_length <= _RXSS_MAX:
            raise ValueError(f"RXSS length out of 6-bit range: {self.rxss_length}")

    def pack(self) -> bytes:
        """Serialize to 3 bytes, little-endian bit order."""
        value = (
            self.direction
            | (self.cdown << 1)
            | (self.sector_id << 10)
            | (self.dmg_antenna_id << 16)
            | (self.rxss_length << 18)
        )
        return value.to_bytes(3, "little")

    @classmethod
    def unpack(cls, data: bytes) -> "SSWField":
        """Parse 3 bytes produced by :meth:`pack`."""
        if len(data) != 3:
            raise ValueError(f"SSW field is 3 bytes, got {len(data)}")
        value = int.from_bytes(data, "little")
        return cls(
            direction=value & 0x1,
            cdown=(value >> 1) & _CDOWN_MAX,
            sector_id=(value >> 10) & _SECTOR_MAX,
            dmg_antenna_id=(value >> 16) & _ANTENNA_MAX,
            rxss_length=(value >> 18) & _RXSS_MAX,
        )
