"""wil6210-style host driver for the simulated QCA9500.

The paper's §3 platform stacks LEDE + a current wil6210 driver on the
router so user space can reach the chip.  This module is that layer:
it talks to the chip **only through the binary WMI mailbox** (the same
byte path the real driver uses), keeps driver counters, and exposes
the user-space-facing operations the paper's tools provide — reading
the sweep dump and pinning a transmit sector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..firmware.chip import QCA9500, SweepReport
from ..firmware.wmi import (
    WmiClearSectorOverride,
    WmiCommand,
    WmiDrainSweepReports,
    WmiError,
    WmiResetSweepState,
    WmiSetSectorOverride,
)
from ..firmware.wmi_codec import decode_wmi, encode_wmi

__all__ = ["DriverCounters", "Wil6210Driver"]


@dataclass
class DriverCounters:
    """Driver statistics, sysfs-style."""

    wmi_commands_sent: int = 0
    wmi_errors: int = 0
    sweep_reports_read: int = 0
    sector_overrides_set: int = 0


class Wil6210Driver:
    """Host-side driver bound to one chip."""

    def __init__(self, chip: QCA9500):
        self.chip = chip
        self.counters = DriverCounters()
        self._fixed_sector: Optional[int] = None

    # ------------------------------------------------------------------
    # Mailbox plumbing: every operation goes through bytes.
    # ------------------------------------------------------------------

    def _mailbox(self, command: WmiCommand):
        """Encode → (simulated DMA) → decode → dispatch."""
        buffer = encode_wmi(command)
        self.counters.wmi_commands_sent += 1
        try:
            decoded = decode_wmi(buffer)
            return self.chip.handle_wmi(decoded)
        except WmiError:
            self.counters.wmi_errors += 1
            raise

    # ------------------------------------------------------------------
    # User-space-facing operations (the paper's tools).
    # ------------------------------------------------------------------

    @property
    def fixed_sector(self) -> Optional[int]:
        """The pinned TX sector, or ``None`` for stock selection."""
        return self._fixed_sector

    def read_sweep_dump(self) -> List[SweepReport]:
        """Drain the sweep-report ring buffer (§3.3's `sweep dump`)."""
        reports = self._mailbox(WmiDrainSweepReports())
        self.counters.sweep_reports_read += len(reports)
        return reports

    def set_fixed_sector(self, sector_id: int) -> None:
        """Pin the sector carried in SSW feedback (§3.4)."""
        self._mailbox(WmiSetSectorOverride(sector_id))
        self._fixed_sector = sector_id
        self.counters.sector_overrides_set += 1

    def clear_fixed_sector(self) -> None:
        """Return to the firmware's own selection."""
        self._mailbox(WmiClearSectorOverride())
        self._fixed_sector = None

    def reset_sweep_state(self) -> None:
        """Clear the firmware's per-sweep accumulator."""
        self._mailbox(WmiResetSweepState())

    def sweep_dump_table(self) -> List[str]:
        """Human-readable dump, like the talon-tools CLI output."""
        reports = self.read_sweep_dump()
        rows = ["sweep | cdown | sector |   snr  |  rssi"]
        for report in reports:
            rows.append(
                f"{report.sweep_index:5d} | {report.cdown:5d} | "
                f"{report.sector_id:6d} | {report.snr_db:6.2f} | {report.rssi_dbm:6.1f}"
            )
        return rows
