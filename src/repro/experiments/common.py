"""Shared infrastructure for the evaluation experiments (§6).

The paper's methodology: record *full* sweeps (all 34 TX sectors) at
every rotation-head position, then evaluate the compressive algorithm
offline by considering only a random subset of each sweep's
measurements.  :func:`record_directions` produces those recordings;
the per-figure modules consume them.

A :func:`build_testbed` call assembles the simulated hardware —
device-under-test and reference routers, their measured 3D pattern
table from a chamber campaign — and is memoized because every
experiment shares it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..channel.batch import sweep_snr_matrix
from ..channel.environment import Environment
from ..channel.link import LinkBudget
from ..channel.observation import MeasurementModel
from ..core.measurements import ProbeMeasurement
from ..geometry.angles import wrap_azimuth
from ..measurement.campaign import CampaignConfig, PatternMeasurementCampaign
from ..measurement.patterns import PatternTable
from ..measurement.rotation_head import RotationHead
from ..phased_array.array import PhasedArray
from ..phased_array.codebook import Codebook
from ..phased_array.talon import talon_codebook

__all__ = [
    "Testbed",
    "build_testbed",
    "RecordedDirection",
    "record_directions",
    "random_subsweep",
    "BoxStats",
]


@dataclass(frozen=True)
class Testbed:
    """The simulated hardware every experiment shares."""

    dut_antenna: PhasedArray
    dut_codebook: Codebook
    ref_antenna: PhasedArray
    ref_codebook: Codebook
    pattern_table: PatternTable
    budget: LinkBudget
    measurement_model: MeasurementModel

    @property
    def tx_sector_ids(self) -> List[int]:
        return self.dut_codebook.tx_sector_ids


@lru_cache(maxsize=4)
def build_testbed(
    seed: int = 2017,
    azimuth_step_deg: float = 2.0,
    elevation_step_deg: float = 4.0,
    max_elevation_deg: float = 32.0,
    campaign_sweeps: int = 3,
) -> Testbed:
    """Create devices and run the chamber campaign once (memoized).

    The pattern table covers azimuth ±90° and elevation 0° up to
    ``max_elevation_deg`` — the same envelope as Figure 6.
    """
    rng = np.random.default_rng(seed)
    dut_antenna = PhasedArray.talon(np.random.default_rng(seed + 1))
    dut_codebook = talon_codebook(dut_antenna)
    ref_antenna = PhasedArray.talon(np.random.default_rng(seed + 2))
    ref_codebook = talon_codebook(ref_antenna)
    budget = LinkBudget()
    measurement_model = MeasurementModel()

    campaign = PatternMeasurementCampaign(
        dut_antenna,
        dut_codebook,
        reference_antenna=ref_antenna,
        reference_codebook=ref_codebook,
        budget=budget,
        measurement_model=measurement_model,
    )
    n_az = int(round(180.0 / azimuth_step_deg))
    azimuths = -90.0 + azimuth_step_deg * np.arange(n_az + 1)
    n_el = int(round(max_elevation_deg / elevation_step_deg))
    elevations = elevation_step_deg * np.arange(n_el + 1)
    config = CampaignConfig(
        azimuths_deg=azimuths, elevations_deg=elevations, n_sweeps=campaign_sweeps
    )
    table = campaign.run(config, rng)
    return Testbed(
        dut_antenna=dut_antenna,
        dut_codebook=dut_codebook,
        ref_antenna=ref_antenna,
        ref_codebook=ref_codebook,
        pattern_table=table,
        budget=budget,
        measurement_model=measurement_model,
    )


@dataclass
class RecordedDirection:
    """All sweep recordings for one physical path direction.

    Attributes:
        azimuth_deg / elevation_deg: nominal device-frame direction of
            the link (the ground truth for estimation errors).
        true_snr_db: ground-truth sweep SNR per TX sector.
        sweeps: one dict per recorded sweep, mapping sector ID to the
            firmware measurement (missing IDs were not reported).
    """

    azimuth_deg: float
    elevation_deg: float
    true_snr_db: np.ndarray
    sweeps: List[Dict[int, ProbeMeasurement]] = field(default_factory=list)

    def optimal_snr_db(self) -> float:
        return float(self.true_snr_db.max())


def record_directions(
    testbed: Testbed,
    environment: Environment,
    azimuths_deg: Sequence[float],
    elevations_deg: Sequence[float],
    n_sweeps: int,
    rng: np.random.Generator,
) -> List[RecordedDirection]:
    """Record full 34-sector sweeps over a grid of path directions.

    The DUT rides the rotation head (with its mechanical tilt errors),
    the reference device listens quasi-omni at the environment's far
    endpoint.  Per-sweep slow fading is modelled as a common SNR offset
    drawn from the environment's shadowing spread.
    """
    head = RotationHead(np.random.default_rng(rng.integers(2**31)))
    tx_ids = testbed.tx_sector_ids
    noise_floor = testbed.budget.noise_floor_dbm
    recordings: List[RecordedDirection] = []

    for elevation in elevations_deg:
        head.set_tilt(float(elevation))
        orientations = []
        for azimuth in azimuths_deg:
            head.set_azimuth(-float(azimuth))
            orientations.append(head.orientation())

        true_matrix = sweep_snr_matrix(
            environment,
            testbed.dut_antenna,
            testbed.dut_codebook,
            tx_ids,
            orientations,
            testbed.ref_antenna,
            testbed.ref_codebook.rx_sector.weights,
            budget=testbed.budget,
        )

        for az_index, azimuth in enumerate(azimuths_deg):
            recording = RecordedDirection(
                azimuth_deg=wrap_azimuth(float(azimuth)),
                elevation_deg=float(elevation),
                true_snr_db=true_matrix[az_index].copy(),
            )
            for _ in range(n_sweeps):
                fade_db = (
                    rng.normal(0.0, environment.shadowing_std_db)
                    if environment.shadowing_std_db > 0
                    else 0.0
                )
                sweep: Dict[int, ProbeMeasurement] = {}
                for column, sector_id in enumerate(tx_ids):
                    observation = testbed.measurement_model.observe(
                        recording.true_snr_db[column] + fade_db, noise_floor, rng
                    )
                    if observation is not None:
                        sweep[sector_id] = ProbeMeasurement(
                            sector_id=sector_id,
                            snr_db=observation.snr_db,
                            rssi_dbm=observation.rssi_dbm,
                        )
                recording.sweeps.append(sweep)
            recordings.append(recording)
    return recordings


def random_subsweep(
    sweep: Dict[int, ProbeMeasurement],
    all_sector_ids: Sequence[int],
    n_probes: int,
    rng: np.random.Generator,
) -> List[ProbeMeasurement]:
    """The paper's offline compressive emulation.

    Draw ``n_probes`` random sectors from the full training set, then
    keep the measurements that actually exist for them in the recorded
    sweep — probed-but-unreported sectors stay missing, as they would
    in a live reduced sweep.
    """
    if n_probes > len(all_sector_ids):
        raise ValueError("cannot probe more sectors than exist")
    chosen = rng.choice(len(all_sector_ids), size=n_probes, replace=False)
    probe_ids = [all_sector_ids[index] for index in chosen]
    return [sweep[sector_id] for sector_id in probe_ids if sector_id in sweep]


@dataclass(frozen=True)
class BoxStats:
    """Median / 50 % box / 99 % whiskers, as drawn in Figure 7."""

    median: float
    box_low: float
    box_high: float
    whisker_low: float
    whisker_high: float
    n_samples: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxStats":
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise ValueError("cannot summarize an empty sample set")
        return cls(
            median=float(np.median(values)),
            box_low=float(np.percentile(values, 25)),
            box_high=float(np.percentile(values, 75)),
            whisker_low=float(np.percentile(values, 0.5)),
            whisker_high=float(np.percentile(values, 99.5)),
            n_samples=int(values.size),
        )
