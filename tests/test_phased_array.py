"""Unit tests for layouts, steering vectors, weights, and gain."""

import numpy as np
import pytest

from repro.phased_array import (
    ChassisBlockage,
    ElementLayout,
    HardwareImpairments,
    PhasedArray,
    WeightVector,
    quantize_phase,
    steering_matrix,
    steering_vector,
    talon_layout,
    uniform_rectangular_layout,
    wavelength_m,
)


class TestLayouts:
    def test_wavelength_at_60ghz(self):
        assert wavelength_m(60.48e9) == pytest.approx(0.004957, rel=1e-3)

    def test_wavelength_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            wavelength_m(0.0)

    def test_talon_has_32_elements(self):
        assert talon_layout().n_elements == 32

    def test_talon_lies_in_yz_plane(self):
        layout = talon_layout()
        np.testing.assert_allclose(layout.positions_m[:, 0], 0.0)

    def test_uniform_grid_count_and_spacing(self):
        layout = uniform_rectangular_layout(2, 3, 0.5)
        assert layout.n_elements == 6
        spacing = 0.5 * layout.wavelength_m
        ys = np.unique(np.round(layout.positions_m[:, 1], 9))
        assert np.diff(ys) == pytest.approx(spacing)

    def test_aperture_positive(self):
        assert talon_layout().aperture_m > 0

    def test_rejects_bad_positions(self):
        with pytest.raises(ValueError):
            ElementLayout(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            ElementLayout(np.zeros((4, 2)))


class TestSteering:
    def test_boresight_steering_is_all_ones(self):
        layout = talon_layout()
        vector = steering_vector(layout, 0.0, 0.0)
        # Elements lie in the y-z plane, so boresight phases are zero.
        np.testing.assert_allclose(vector, np.ones(32), atol=1e-12)

    def test_unit_magnitude(self):
        vector = steering_vector(talon_layout(), 35.0, -10.0)
        np.testing.assert_allclose(np.abs(vector), 1.0, atol=1e-12)

    def test_matrix_matches_single_vectors(self):
        layout = talon_layout()
        azimuths = np.array([0.0, 30.0, -45.0])
        elevations = np.array([0.0, 10.0, 5.0])
        matrix = steering_matrix(layout, azimuths, elevations)
        for row, (azimuth, elevation) in enumerate(zip(azimuths, elevations)):
            np.testing.assert_allclose(
                matrix[row], steering_vector(layout, azimuth, elevation), atol=1e-12
            )

    def test_matrix_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            steering_matrix(talon_layout(), np.zeros(3), np.zeros(2))


class TestWeights:
    def test_quantize_phase_two_bits(self):
        phases = np.array([0.1, np.pi / 2 - 0.1, np.pi + 0.2, -0.8])
        quantized = quantize_phase(phases, 2)
        step = np.pi / 2
        np.testing.assert_allclose(quantized % step, 0.0, atol=1e-12)

    def test_quantize_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            quantize_phase(np.zeros(3), 0)

    def test_uniform_weights(self):
        weights = WeightVector.uniform(8)
        assert weights.n_elements == 8
        assert weights.active_elements.all()

    def test_conjugate_steering_aligns(self):
        layout = talon_layout()
        steering = steering_vector(layout, 20.0, 5.0)
        weights = WeightVector.conjugate_steering(steering)
        response = weights.weights @ steering
        assert np.imag(response) == pytest.approx(0.0, abs=1e-9)
        assert np.real(response) == pytest.approx(32.0)

    def test_quantized_snaps_amplitude_and_phase(self):
        raw = WeightVector(np.array([1.0 + 0j, 0.01 + 0j, np.exp(1j * 0.7)]))
        quantized = raw.quantized(phase_bits=2)
        amplitudes = np.abs(quantized.weights)
        assert set(np.round(amplitudes, 6)) <= {0.0, 1.0}
        assert amplitudes[1] == 0.0  # below the 10% threshold

    def test_normalized_unit_power(self):
        weights = WeightVector(np.array([3.0, 4.0], dtype=complex)).normalized()
        assert np.linalg.norm(weights.weights) == pytest.approx(1.0)

    def test_normalize_rejects_all_zero(self):
        with pytest.raises(ValueError):
            WeightVector(np.zeros(4, dtype=complex)).normalized()

    def test_element_mask(self):
        weights = WeightVector.uniform(4).with_element_mask(
            np.array([True, False, True, False])
        )
        assert weights.active_elements.sum() == 2

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            WeightVector.uniform(4).with_element_mask(np.array([True]))


class TestImpairments:
    def test_ideal_is_identity(self):
        impairments = HardwareImpairments.ideal(8)
        np.testing.assert_allclose(impairments.element_response(), 1.0)

    def test_sampled_shapes_and_failures(self, rng):
        impairments = HardwareImpairments.sample(32, rng, failure_probability=0.5)
        assert impairments.n_elements == 32
        response = impairments.element_response()
        assert np.count_nonzero(response == 0) == impairments.element_failed.sum()

    def test_sample_rejects_bad_probability(self, rng):
        with pytest.raises(ValueError):
            HardwareImpairments.sample(4, rng, failure_probability=1.5)

    def test_blockage_zero_in_front(self):
        blockage = ChassisBlockage()
        assert blockage.attenuation_db(np.array(0.0), np.array(0.0)) == pytest.approx(0.0)

    def test_blockage_grows_behind(self):
        blockage = ChassisBlockage()
        front = blockage.attenuation_db(np.array(90.0), np.array(0.0))
        back = blockage.attenuation_db(np.array(178.0), np.array(0.0))
        assert back > front
        assert back > 10.0

    def test_blockage_never_negative(self):
        blockage = ChassisBlockage(ripple_db=10.0)
        azimuths = np.linspace(-180, 180, 361)
        attenuation = blockage.attenuation_db(azimuths, np.zeros_like(azimuths))
        assert (attenuation >= 0).all()


class TestPhasedArrayGain:
    def test_steered_beam_peaks_near_target(self):
        array = PhasedArray.talon(ideal=True)
        steering = steering_vector(array.layout, 25.0, 0.0)
        weights = WeightVector.conjugate_steering(steering).normalized()
        azimuths = np.linspace(-90, 90, 181)
        gains = array.gain_db(weights, azimuths, 0.0)
        assert abs(azimuths[np.argmax(gains)] - 25.0) <= 3.0

    def test_boresight_gain_magnitude(self):
        array = PhasedArray.talon(ideal=True)
        weights = WeightVector.uniform(32).normalized()
        # 32 elements coherently: 10*log10(32) + element gain ~= 18 dBi.
        gain = array.gain_db(weights, 0.0, 0.0)
        assert gain == pytest.approx(10 * np.log10(32) + 3.0, abs=0.5)

    def test_scalar_input_returns_float(self, antenna, codebook):
        gain = antenna.gain_db(codebook[63].weights, 1.0, 2.0)
        assert isinstance(gain, float)

    def test_broadcast_shapes(self, antenna, codebook):
        gains = antenna.gain_db(codebook[63].weights, np.zeros((3, 4)), 0.0)
        assert gains.shape == (3, 4)

    def test_blockage_suppresses_back_lobes(self, antenna, codebook):
        weights = codebook[63].weights
        front = antenna.gain_db(weights, 0.0, 0.0)
        back = antenna.gain_db(weights, 180.0, 0.0)
        assert front - back > 15.0

    def test_mismatched_weights_rejected(self, antenna):
        with pytest.raises(ValueError):
            antenna.gain_db(WeightVector.uniform(8), 0.0, 0.0)

    def test_peak_gain_scan(self, antenna, codebook):
        peak = antenna.peak_gain_db(codebook[63].weights)
        assert 10.0 < peak < 25.0
