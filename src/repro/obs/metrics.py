"""Run-wide metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a process-local accumulator.  Metric
identity is ``name`` plus an optional sorted label set, rendered into a
Prometheus-style key (``runner_kernel_path_total{path="batched"}``), so
snapshots from different processes merge by plain string keys — the
cross-process aggregation path piggybacks worker snapshots on block
results and folds them into the run's registry in deterministic block
order.

Histograms use *fixed* buckets resolved from the metric name
(:data:`BUCKETS_BY_METRIC`, falling back to :data:`DEFAULT_BUCKETS`),
never from observed data: every process of a run therefore bins into
identical edges and snapshots merge by elementwise addition.

Two exports exist for every registry: :meth:`MetricsRegistry.snapshot`
(JSON, embedded in the run manifest's ``observability`` section) and
:meth:`MetricsRegistry.render_prometheus` (text exposition for the
future service front-end and for ``repro-bench report --metrics``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "BUCKETS_BY_METRIC",
    "MetricsRegistry",
    "buckets_for",
    "escape_label_value",
    "unescape_label_value",
]

#: Latency-shaped default bucket edges (seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Fixed bucket edges per histogram family.  Fixed (and resolved from
#: the name alone) so every process of a run bins identically and
#: cross-process merges stay an elementwise sum.
BUCKETS_BY_METRIC: Dict[str, Tuple[float, ...]] = {
    "runner_block_seconds": DEFAULT_BUCKETS,
    "runner_retry_wait_seconds": (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5),
    "planner_probes_requested": (2, 4, 8, 12, 16, 20, 24, 28, 34),
    # Whole-run service latency: runs span milliseconds (tiny smoke
    # specs) to minutes (fig7-scale campaigns).
    "service_run_seconds": (
        0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1200.0,
    ),
    # Estimation-quality exemplars (obs/quality.py).  Ratio-, dB- and
    # conditioning-shaped edges — NOT the latency defaults — fixed so
    # the jobs=N merge stays an elementwise bucket sum.
    # Correlation peak over runner-up: 1.0 = ambiguous, >2 = decisive.
    "quality_peak_ratio": (
        1.0, 1.01, 1.02, 1.05, 1.1, 1.2, 1.5, 2.0, 3.0, 5.0, 10.0,
    ),
    # Eq. 4 gain gap between the chosen sector and the runner-up (dB).
    "quality_selection_margin_db": (
        0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
    ),
    # Mutual coherence of a designed sensing matrix (unit-norm rows).
    "quality_design_coherence": (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0,
    ),
    # 2-norm condition number of the designed subset matrix.
    "quality_design_condition": (
        1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0, 10000.0,
    ),
}


def buckets_for(name: str) -> Tuple[float, ...]:
    """The fixed bucket edges of a histogram family."""
    return BUCKETS_BY_METRIC.get(name, DEFAULT_BUCKETS)


def escape_label_value(value: Any) -> str:
    """Escape a label value per the Prometheus text-format spec.

    Inside a label value, backslash, double-quote and newline must be
    written as ``\\\\``, ``\\"`` and ``\\n`` — an unescaped value like
    ``fig7"x`` would terminate the quoted string early and produce an
    exposition no scraper can parse.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value` (round-trip tests, parsers)."""
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            follower = value[index + 1]
            if follower == "n":
                out.append("\n")
                index += 2
                continue
            if follower in ('"', "\\"):
                out.append(follower)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Prometheus-style series key: ``name{a="x",b="y"}`` (sorted).

    Label values are escaped at key-construction time, so every export
    (snapshot keys included) carries the already-valid exposition form
    and cross-process merges keep matching on identical strings.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{escape_label_value(labels[key])}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def _family_of(key: str) -> str:
    """The metric name of a series key (labels stripped)."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


class MetricsRegistry:
    """Process-local counters, gauges and fixed-bucket histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        # key -> {"le": [...edges...], "counts": [per-bucket + overflow], "sum": x}
        self._histograms: Dict[str, Dict[str, Any]] = {}

    # -- recording ------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` to a (monotonic) counter series."""
        key = _metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge series to its latest value."""
        self._gauges[_metric_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into the family's fixed buckets."""
        key = _metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            edges = buckets_for(name)
            histogram = {
                "le": list(edges),
                "counts": [0] * (len(edges) + 1),
                "sum": 0.0,
            }
            self._histograms[key] = histogram
        slot = len(histogram["le"])
        for index, edge in enumerate(histogram["le"]):
            if value <= edge:
                slot = index
                break
        histogram["counts"][slot] += 1
        histogram["sum"] += float(value)

    # -- export / aggregation -------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able copy of every series (sorted, deterministic)."""
        return {
            "counters": {key: self._counters[key] for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key] for key in sorted(self._gauges)},
            "histograms": {
                key: {
                    "le": list(value["le"]),
                    "counts": list(value["counts"]),
                    "sum": value["sum"],
                    "count": int(sum(value["counts"])),
                }
                for key, value in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram buckets add; gauges take the incoming
        value (callers merge in deterministic order, so "last write
        wins" is reproducible).  A histogram whose edges disagree with
        this process's fixed edges is skipped rather than corrupted —
        that can only happen across code versions.
        """
        for key, value in snapshot.get("counters", {}).items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            self._gauges[key] = float(value)
        for key, incoming in snapshot.get("histograms", {}).items():
            mine = self._histograms.get(key)
            if mine is None:
                self._histograms[key] = {
                    "le": list(incoming["le"]),
                    "counts": list(incoming["counts"]),
                    "sum": float(incoming["sum"]),
                }
                continue
            if list(incoming["le"]) != list(mine["le"]):
                continue
            mine["counts"] = [
                a + b for a, b in zip(mine["counts"], incoming["counts"])
            ]
            mine["sum"] += float(incoming["sum"])

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every series."""
        lines: List[str] = []
        typed: set = set()

        def type_line(key: str, kind: str) -> None:
            family = _family_of(key)
            if family not in typed:
                typed.add(family)
                lines.append(f"# TYPE {family} {kind}")

        for key in sorted(self._counters):
            type_line(key, "counter")
            lines.append(f"{key} {_format_value(self._counters[key])}")
        for key in sorted(self._gauges):
            type_line(key, "gauge")
            lines.append(f"{key} {_format_value(self._gauges[key])}")
        for key in sorted(self._histograms):
            histogram = self._histograms[key]
            type_line(key, "histogram")
            family, labels = _split_key(key)
            cumulative = 0
            for edge, count in zip(histogram["le"], histogram["counts"]):
                cumulative += count
                lines.append(
                    f"{family}_bucket{_with_le(labels, _format_value(edge))} {cumulative}"
                )
            cumulative += histogram["counts"][-1]
            lines.append(f"{family}_bucket{_with_le(labels, '+Inf')} {cumulative}")
            lines.append(f"{family}_sum{labels} {_format_value(histogram['sum'])}")
            lines.append(f"{family}_count{labels} {cumulative}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


def _format_value(value: float) -> str:
    """Integers render bare (Prometheus accepts both; diffs stay clean)."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def _split_key(key: str) -> Tuple[str, str]:
    """Split a series key into (family, "{labels}" or "")."""
    brace = key.find("{")
    return (key, "") if brace < 0 else (key[:brace], key[brace:])


def _with_le(labels: str, le: str) -> str:
    """Insert the ``le`` label into an existing label block."""
    if not labels:
        return f'{{le="{le}"}}'
    return f'{labels[:-1]},le="{le}"}}'
