"""Declarative scenario runtime: specs, policies, registry, runner.

The package splits every experiment into three replaceable parts:

* a **spec** (:class:`ScenarioSpec`) — pure data naming the testbed,
  the policies and the knobs;
* a **policy** (:class:`SelectionPolicy`) — the strategy under test,
  resolved by name through the registry;
* a **runner** (:class:`ScenarioRunner`) — the one engine owning trial
  loops, batched fast paths, RNG discipline and process-pool sharding.

See DESIGN.md §8 for the architecture and the registration contract.
"""

from .checkpoint import CheckpointStore, default_checkpoint_path, journal_header
from .faults import (
    DeadlineExceededError,
    FaultInjectionError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryExhaustedError,
    RetryPolicy,
    RunAbortedError,
    RunCancelledError,
    RunHealth,
)
from .manifest import RunManifest, git_revision
from .policy import PolicyContext, PolicyOutcome, SelectionPolicy
from .registry import (
    ScenarioEntry,
    available_policies,
    available_scenarios,
    build_policy,
    get_scenario,
    load_builtin,
    register_policy,
    register_scenario,
    scenario_spec,
)
from .runner import RunOutcome, ScenarioRunner, TrialBlock, TrialRecord
from .spec import PolicySpec, ScenarioSpec, TestbedSpec

__all__ = [
    "CheckpointStore",
    "default_checkpoint_path",
    "journal_header",
    "DeadlineExceededError",
    "FaultInjectionError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryExhaustedError",
    "RetryPolicy",
    "RunAbortedError",
    "RunCancelledError",
    "RunHealth",
    "RunManifest",
    "git_revision",
    "PolicyContext",
    "PolicyOutcome",
    "SelectionPolicy",
    "ScenarioEntry",
    "available_policies",
    "available_scenarios",
    "build_policy",
    "get_scenario",
    "load_builtin",
    "register_policy",
    "register_scenario",
    "scenario_spec",
    "RunOutcome",
    "ScenarioRunner",
    "TrialBlock",
    "TrialRecord",
    "PolicySpec",
    "ScenarioSpec",
    "TestbedSpec",
]
