"""Tests for the §7 fine codebook and its scaling experiment."""

import numpy as np
import pytest

from repro.experiments.fine import FineCodebookConfig, run_fine_codebook
from repro.phased_array import PhasedArray, fine_codebook, probing_sector_ids


@pytest.fixture(scope="module")
def fine(antenna):
    return fine_codebook(antenna)


@pytest.fixture(scope="module")
def antenna():
    return PhasedArray.talon(np.random.default_rng(2018 + 1))


class TestFineCodebook:
    def test_fills_the_6bit_space(self, fine):
        assert fine.n_tx_sectors == 63
        assert fine.rx_sector_id == 0
        assert max(fine.tx_sector_ids) == 63

    def test_probing_sectors_lead_the_codebook(self, fine):
        probes = probing_sector_ids(fine)
        assert len(probes) == 12
        assert probes == sorted(probes)
        assert all(fine[s].kind == "probe" for s in probes)

    def test_data_sectors_are_narrow_probes_are_broad(self, antenna, fine):
        azimuths = np.linspace(-90, 90, 181)

        def beamwidth(sector_id):
            gains = antenna.gain_db(fine[sector_id].weights, azimuths, 0.0)
            return int(np.sum(gains > gains.max() - 6.0))

        probe_widths = [beamwidth(s) for s in probing_sector_ids(fine)]
        data_ids = [s.sector_id for s in fine if s.kind == "fine"][:12]
        data_widths = [beamwidth(s) for s in data_ids]
        assert np.mean(probe_widths) > 1.5 * np.mean(data_widths)

    def test_data_sectors_tile_the_frontal_range(self, antenna, fine):
        data_ids = [s.sector_id for s in fine if s.kind == "fine"]
        peaks = []
        azimuths = np.linspace(-90, 90, 181)
        for sector_id in data_ids:
            gains = antenna.gain_db(fine[sector_id].weights, azimuths, 0.0)
            peaks.append(azimuths[int(np.argmax(gains))])
        assert min(peaks) < -60.0
        assert max(peaks) > 60.0

    def test_validation(self, antenna):
        with pytest.raises(ValueError):
            fine_codebook(antenna, n_sectors=64)
        with pytest.raises(ValueError):
            fine_codebook(antenna, n_sectors=10, n_probing=10)

    def test_custom_sizes(self, antenna):
        small = fine_codebook(antenna, n_sectors=20, n_probing=4)
        assert small.n_tx_sectors == 20
        assert len(probing_sector_ids(small)) == 4


class TestFineExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fine_codebook(
            FineCodebookConfig(
                n_probes=12,
                azimuths_deg=tuple(np.arange(-45.0, 46.0, 15.0)),
                n_sweeps=4,
            )
        )

    def test_training_times_exact(self, result):
        assert result.training_time_ms["fine + SSW (63 probes)"] == pytest.approx(
            2.317, abs=0.01
        )
        assert result.training_time_ms["fine + CSS (12 probes)"] == pytest.approx(
            0.481, abs=0.01
        )

    def test_css_close_to_full_fine_sweep(self, result):
        gap = (
            result.mean_snr_db["fine + SSW (63 probes)"]
            - result.mean_snr_db["fine + CSS (12 probes)"]
        )
        assert gap < 2.0

    def test_oracles_comparable(self, result):
        assert abs(result.optimal_fine_db - result.optimal_stock_db) < 2.0
