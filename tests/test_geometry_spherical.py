"""Unit tests for direction-vector conversions."""

import numpy as np
import pytest

from repro.geometry import direction_vector, vector_to_angles


class TestDirectionVector:
    def test_boresight_is_x(self):
        np.testing.assert_allclose(direction_vector(0.0, 0.0), [1.0, 0.0, 0.0], atol=1e-12)

    def test_azimuth_90_is_y(self):
        np.testing.assert_allclose(direction_vector(90.0, 0.0), [0.0, 1.0, 0.0], atol=1e-12)

    def test_elevation_90_is_z(self):
        np.testing.assert_allclose(direction_vector(0.0, 90.0), [0.0, 0.0, 1.0], atol=1e-12)

    def test_unit_norm_everywhere(self):
        azimuths = np.linspace(-180, 180, 37)
        elevations = np.linspace(-90, 90, 19)
        az_mesh, el_mesh = np.meshgrid(azimuths, elevations)
        vectors = direction_vector(az_mesh, el_mesh)
        np.testing.assert_allclose(np.linalg.norm(vectors, axis=-1), 1.0, atol=1e-12)

    def test_broadcast_shape(self):
        vectors = direction_vector(np.zeros((4, 5)), 10.0)
        assert vectors.shape == (4, 5, 3)


class TestVectorToAngles:
    def test_roundtrip(self):
        for azimuth, elevation in [(0, 0), (45, 30), (-120, -60), (180, 10), (-179, 89)]:
            vector = direction_vector(float(azimuth), float(elevation))
            az_back, el_back = vector_to_angles(vector)
            assert az_back == pytest.approx(azimuth, abs=1e-9)
            assert el_back == pytest.approx(elevation, abs=1e-9)

    def test_normalizes_input(self):
        azimuth, elevation = vector_to_angles(np.array([10.0, 0.0, 0.0]))
        assert azimuth == pytest.approx(0.0)
        assert elevation == pytest.approx(0.0)

    def test_rejects_zero_vector(self):
        with pytest.raises(ValueError):
            vector_to_angles(np.zeros(3))

    def test_back_direction_maps_to_plus_180(self):
        azimuth, _ = vector_to_angles(np.array([-1.0, 0.0, 0.0]))
        assert azimuth == pytest.approx(180.0)

    def test_batch_input(self):
        vectors = direction_vector(np.array([10.0, -40.0]), np.array([5.0, 20.0]))
        azimuths, elevations = vector_to_angles(vectors)
        np.testing.assert_allclose(azimuths, [10.0, -40.0], atol=1e-9)
        np.testing.assert_allclose(elevations, [5.0, 20.0], atol=1e-9)
