"""Extension experiment: pattern aging (hardware drift over time).

The chamber campaign happens once; the device then lives for years.
Temperature, mechanical stress and component aging slowly shift the
per-element phases, so the table describes a device that no longer
quite exists.  This experiment ages the hardware by a growing phase
drift and measures how gracefully CSS degrades with the stale table —
and when a re-calibration pays off.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import List, Sequence

import numpy as np

from ..channel.environment import conference_room
from ..phased_array.array import PhasedArray
from ..phased_array.impairments import HardwareImpairments
from ..runtime.registry import register_scenario
from ..runtime.runner import ScenarioRunner
from ..runtime.spec import PolicySpec, ScenarioSpec
from .common import record_directions

__all__ = ["DriftConfig", "DriftResult", "run_pattern_drift", "drift_spec"]


@dataclass(frozen=True)
class DriftConfig:
    seed: int = 37
    n_probes: int = 14
    drift_levels_rad: Sequence[float] = (0.0, 0.1, 0.2, 0.4, 0.8)
    azimuth_step_deg: float = 12.0
    n_sweeps: int = 5


@dataclass
class DriftResult:
    drift_levels_rad: List[float]
    snr_loss_db: List[float]
    fallback_rate: List[float]

    def format_rows(self) -> List[str]:
        rows = [
            "pattern aging (extension): CSS with a stale chamber table",
            "phase drift [rad] | SNR loss [dB] | fallback rate",
        ]
        for level, loss, fallback in zip(
            self.drift_levels_rad, self.snr_loss_db, self.fallback_rate
        ):
            rows.append(f"{level:17.2f} | {loss:13.2f} | {fallback:13.2f}")
        return rows


def _aged_antenna(
    antenna: PhasedArray, drift_rad: float, rng: np.random.Generator
) -> PhasedArray:
    """The same device after its element phases drifted."""
    impairments = antenna.impairments
    aged = HardwareImpairments(
        phase_error_rad=impairments.phase_error_rad
        + rng.normal(0.0, drift_rad, size=impairments.n_elements),
        gain_error_db=impairments.gain_error_db,
        element_failed=impairments.element_failed,
        blockage=impairments.blockage,
    )
    return PhasedArray(
        layout=antenna.layout,
        impairments=aged,
        element_exponent=antenna.element_exponent,
        element_peak_gain_db=antenna.element_peak_gain_db,
    )


def drift_spec(config: DriftConfig = DriftConfig()) -> ScenarioSpec:
    """The declarative form of a pattern-aging run."""
    params = {key: value for key, value in asdict(config).items() if key != "seed"}
    return ScenarioSpec(scenario="drift", seed=config.seed, params=params)


def _config_from_spec(spec: ScenarioSpec) -> DriftConfig:
    return DriftConfig(seed=spec.seed, **spec.params)


@register_scenario("drift", default_spec=drift_spec)
def _run_drift_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> DriftResult:
    """Pattern aging: CSS quality as the hardware drifts off its table."""
    config = _config_from_spec(spec)
    testbed = spec.testbed.build()
    context = runner.context(testbed)
    rng = np.random.default_rng(config.seed)
    azimuths = np.arange(-60.0, 60.0 + 1e-9, config.azimuth_step_deg)
    tx_ids = testbed.tx_sector_ids
    column_of = {sector_id: column for column, sector_id in enumerate(tx_ids)}

    # One policy over the *original* table; `reset="plan"` inside each
    # level's execute reproduces the fresh-selector state per level
    # while the state threads through that level's trials in order.
    policy_spec = PolicySpec("css", {"n_probes": int(config.n_probes)})
    policy = runner.build_policy(policy_spec, context)

    losses: List[float] = []
    fallbacks: List[float] = []
    for drift in config.drift_levels_rad:
        aged = _aged_antenna(testbed.dut_antenna, float(drift), rng)
        aged_testbed = replace(testbed, dut_antenna=aged)
        recordings = record_directions(
            aged_testbed, conference_room(6.0), azimuths, [0.0], config.n_sweeps, rng
        )
        records = runner.execute(
            policy,
            runner.plan_trials(policy, recordings, tx_ids, rng),
            reset="plan",
        )
        level_losses: List[float] = []
        fallback_count = 0
        for record in records:
            recording = recordings[record.recording_index]
            if record.result.fallback:
                fallback_count += 1
            level_losses.append(
                recording.optimal_snr_db()
                - recording.true_snr_db[column_of[record.result.sector_id]]
            )
        losses.append(float(np.mean(level_losses)))
        fallbacks.append(fallback_count / max(len(records), 1))

    return DriftResult(
        drift_levels_rad=list(config.drift_levels_rad),
        snr_loss_db=losses,
        fallback_rate=fallbacks,
    )


def run_pattern_drift(config: DriftConfig = DriftConfig()) -> DriftResult:
    """Age the hardware and keep selecting with the original table."""
    return ScenarioRunner().run(drift_spec(config)).result
