"""Pattern measurement: rotation head, chamber campaign, processing, tables."""

from .artifacts import (
    ARTIFACTS,
    ArtifactSpec,
    ArtifactStatus,
    PUBLISHED_PATTERNS_SEED,
    cache_dir,
    rebuild_artifact,
    verify_all,
    verify_artifact,
)
from .campaign import (
    CampaignConfig,
    PatternMeasurementCampaign,
    measure_3d_patterns,
    measure_azimuth_patterns,
)
from .errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactMissingError,
    ArtifactSchemaError,
)
from .patterns import PatternTable
from .processing import interpolate_gaps, reject_outliers, robust_average
from .published import (
    PUBLISHED_PATTERNS_RESOURCE,
    load_published_patterns,
    regenerate_published_patterns,
)
from .rotation_head import RotationHead

__all__ = [
    "ARTIFACTS",
    "ArtifactSpec",
    "ArtifactStatus",
    "ArtifactCorruptError",
    "ArtifactError",
    "ArtifactMissingError",
    "ArtifactSchemaError",
    "CampaignConfig",
    "PatternMeasurementCampaign",
    "measure_3d_patterns",
    "measure_azimuth_patterns",
    "PatternTable",
    "interpolate_gaps",
    "reject_outliers",
    "robust_average",
    "PUBLISHED_PATTERNS_RESOURCE",
    "PUBLISHED_PATTERNS_SEED",
    "cache_dir",
    "load_published_patterns",
    "regenerate_published_patterns",
    "rebuild_artifact",
    "verify_all",
    "verify_artifact",
    "RotationHead",
]
