"""IEEE 802.11ad single-carrier MCS ladder.

PHY rates are the standard's SC MCS 1–12 values; the SNR thresholds
are calibrated for this simulator's *sweep-SNR* scale (the quantity the
firmware reports during sector sweeps) and include the bulk margin a
real low-cost device loses to implementation effects.  They are chosen
so that the paper's link budgets land where the paper lands: a 6 m
conference-room link on a good sector sustains roughly 1.5 Gbps of TCP
goodput (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Mcs", "MCS_TABLE", "CONTROL_MCS", "select_mcs", "highest_mcs"]


@dataclass(frozen=True)
class Mcs:
    """One modulation-and-coding scheme entry."""

    index: int
    modulation: str
    code_rate: str
    phy_rate_mbps: float
    min_sweep_snr_db: float

    def __post_init__(self) -> None:
        if self.phy_rate_mbps <= 0:
            raise ValueError("PHY rate must be positive")


#: Control PHY (MCS 0): heavily spread, decodable near the noise floor.
CONTROL_MCS = Mcs(0, "DBPSK-spread", "1/2", 27.5, -8.0)

#: SC PHY MCS 1–12 with sweep-SNR thresholds (see module docstring).
MCS_TABLE: List[Mcs] = [
    Mcs(1, "BPSK", "1/2 (2x)", 385.0, -4.0),
    Mcs(2, "BPSK", "1/2", 770.0, -2.0),
    Mcs(3, "BPSK", "5/8", 962.5, -1.0),
    Mcs(4, "BPSK", "3/4", 1155.0, 0.0),
    Mcs(5, "BPSK", "13/16", 1251.25, 1.0),
    Mcs(6, "QPSK", "1/2", 1540.0, 2.5),
    Mcs(7, "QPSK", "5/8", 1925.0, 4.5),
    Mcs(8, "QPSK", "3/4", 2310.0, 6.0),
    Mcs(9, "QPSK", "13/16", 2502.5, 7.5),
    Mcs(10, "16-QAM", "1/2", 3080.0, 10.0),
    Mcs(11, "16-QAM", "5/8", 3850.0, 12.5),
    Mcs(12, "16-QAM", "3/4", 4620.0, 15.0),
]


def select_mcs(sweep_snr_db: float) -> Optional[Mcs]:
    """Highest SC MCS whose threshold the SNR satisfies.

    Returns ``None`` when even MCS 1 is out of reach (the link can at
    best exchange control frames).
    """
    chosen: Optional[Mcs] = None
    for mcs in MCS_TABLE:
        if sweep_snr_db >= mcs.min_sweep_snr_db:
            chosen = mcs
        else:
            break
    return chosen


def highest_mcs() -> Mcs:
    """The top of the ladder (SC MCS 12)."""
    return MCS_TABLE[-1]
