"""Bench (extension): cross-device pattern transfer (§4.5 caveat).

Expected shape: the paper "confirmed that different devices exhibit
similar patterns with slight variations" — so CSS on device B should
work with device A's chamber table nearly as well as with its own
(each table's measurement noise dominates the device-to-device
variation).  One lab campaign can serve a fleet.
"""

from repro.experiments import TransferConfig, run_pattern_transfer


def test_pattern_transfer(benchmark, report_rows):
    result = benchmark.pedantic(
        lambda: run_pattern_transfer(TransferConfig()), rounds=1, iterations=1
    )
    report_rows(result.format_rows())

    own_error = result.azimuth_error_deg["own (device B)"]
    foreign_error = result.azimuth_error_deg["foreign (device A)"]
    own_loss = result.snr_loss_db["own (device B)"]
    foreign_loss = result.snr_loss_db["foreign (device A)"]

    # Both tables keep CSS functional on device B.
    assert own_error < 12.0 and foreign_error < 12.0
    assert own_loss < 4.0 and foreign_loss < 4.0

    # The transfer penalty is within the tables' own noise (the paper's
    # "similar patterns with slight variations").
    assert abs(own_error - foreign_error) < 4.0
    assert abs(own_loss - foreign_loss) < 1.5
