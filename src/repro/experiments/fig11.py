"""Figure 11: TCP goodput of CSS (14 probes) vs. the full sweep.

With the rotation head steered to −45°, 0° and +45° in the conference
room, each training interval selects a sector (CSS with 14 random
probes, or the exhaustive sweep) and the link then carries TCP traffic
on it.  The paper measures 1.48–1.51 Gbps for CSS, slightly above the
sweep — the stability gain showing up as goodput.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Sequence

import numpy as np

from ..channel.environment import conference_room
from ..link.throughput import ThroughputModel
from ..mac.timing import N_FULL_SWEEP_SECTORS
from ..runtime.registry import register_scenario
from ..runtime.runner import ScenarioRunner
from ..runtime.spec import PolicySpec, ScenarioSpec
from .common import record_directions

__all__ = ["Fig11Config", "Fig11Result", "run_fig11", "fig11_spec"]


@dataclass(frozen=True)
class Fig11Config:
    seed: int = 11
    directions_deg: Sequence[float] = (-45.0, 0.0, 45.0)
    n_probes: int = 14
    n_intervals: int = 40


@dataclass
class Fig11Result:
    directions_deg: List[float]
    css_gbps: List[float]
    ssw_gbps: List[float]
    n_probes: int

    def format_rows(self) -> List[str]:
        rows = [
            f"fig11: expected TCP goodput, CSS ({self.n_probes} probes) vs SSW",
            "direction | CSS [Gbps] | SSW [Gbps]",
        ]
        for direction, css, ssw in zip(self.directions_deg, self.css_gbps, self.ssw_gbps):
            rows.append(f"{direction:8.0f}° | {css:10.3f} | {ssw:10.3f}")
        return rows


def fig11_spec(config: Fig11Config = Fig11Config()) -> ScenarioSpec:
    """The declarative form of a Figure 11 run."""
    params = {key: value for key, value in asdict(config).items() if key != "seed"}
    return ScenarioSpec(scenario="fig11", seed=config.seed, params=params)


def _config_from_spec(spec: ScenarioSpec) -> Fig11Config:
    return Fig11Config(seed=spec.seed, **spec.params)


@register_scenario("fig11", default_spec=fig11_spec)
def _run_fig11_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> Fig11Result:
    """Figure 11: expected TCP goodput at three path directions."""
    config = _config_from_spec(spec)
    testbed = spec.testbed.build()
    context = runner.context(testbed)
    rng = np.random.default_rng(config.seed)
    recordings = record_directions(
        testbed,
        conference_room(6.0),
        list(config.directions_deg),
        [0.0],
        config.n_intervals,
        rng,
    )
    tx_ids = testbed.tx_sector_ids
    model = ThroughputModel()

    # The legacy loop interleaved the CSS draw and the SSW argmax per
    # sweep; only the CSS draw touches the rng, so planning CSS first
    # and replaying SSW afterwards consumes the identical stream.
    css_spec = PolicySpec("css", {"n_probes": int(config.n_probes)})
    css = runner.build_policy(css_spec, context)
    css_records = runner.execute(
        css,
        runner.plan_trials(css, recordings, tx_ids, rng),
        reset="recording",
        policy_spec=css_spec,
        testbed_spec=spec.testbed,
    )
    ssw_spec = PolicySpec("full-sweep", {})
    ssw = runner.build_policy(ssw_spec, context)
    ssw_records = runner.execute(
        ssw,
        runner.plan_trials(ssw, recordings, tx_ids, rng),
        reset="recording",
        policy_spec=ssw_spec,
        testbed_spec=spec.testbed,
    )

    css_gbps: List[float] = []
    ssw_gbps: List[float] = []
    for index, recording in enumerate(recordings):
        css_selections = [
            record.result.sector_id
            for record in css_records
            if record.recording_index == index
        ]
        ssw_selections = [
            record.result.sector_id
            for record in ssw_records
            if record.recording_index == index
        ]
        css_series = [
            recording.true_snr_db[tx_ids.index(sector_id)]
            for sector_id in css_selections
        ]
        ssw_series = [
            recording.true_snr_db[tx_ids.index(sector_id)]
            for sector_id in ssw_selections
        ]
        css_gbps.append(
            model.expected_goodput_gbps(css_series, config.n_probes, css_selections)
        )
        ssw_gbps.append(
            model.expected_goodput_gbps(ssw_series, N_FULL_SWEEP_SECTORS, ssw_selections)
        )

    return Fig11Result(
        directions_deg=list(config.directions_deg),
        css_gbps=css_gbps,
        ssw_gbps=ssw_gbps,
        n_probes=config.n_probes,
    )


def run_fig11(config: Fig11Config = Fig11Config(), jobs: int = 1) -> Fig11Result:
    """Run the throughput comparison at the three path directions."""
    with ScenarioRunner(jobs=jobs) as runner:
        return runner.run(fig11_spec(config)).result
