"""Unit tests for pattern tables and the rotation head."""

import numpy as np
import pytest

from repro.geometry import AngularGrid
from repro.measurement import PatternTable, RotationHead


@pytest.fixture
def small_table() -> PatternTable:
    grid = AngularGrid(np.array([-10.0, 0.0, 10.0]), np.array([0.0, 10.0]))
    patterns = {
        1: np.array([[0.0, 10.0, 0.0], [0.0, 5.0, 0.0]]),
        2: np.array([[8.0, 0.0, -4.0], [8.0, 0.0, -4.0]]),
    }
    return PatternTable(grid, patterns)


class TestPatternTable:
    def test_basic_lookup(self, small_table):
        assert small_table.sector_ids == [1, 2]
        assert small_table.n_sectors == 2
        assert small_table.gain(1, 0.0, 0.0) == 10.0

    def test_unknown_sector(self, small_table):
        with pytest.raises(KeyError):
            small_table.pattern(9)

    def test_shape_mismatch_rejected(self):
        grid = AngularGrid(np.array([0.0, 1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            PatternTable(grid, {1: np.zeros((2, 3))})

    def test_bilinear_interpolation_azimuth(self, small_table):
        assert small_table.gain(1, 5.0, 0.0) == pytest.approx(5.0)

    def test_bilinear_interpolation_elevation(self, small_table):
        assert small_table.gain(1, 0.0, 5.0) == pytest.approx(7.5)

    def test_clipping_outside_grid(self, small_table):
        assert small_table.gain(1, -50.0, 0.0) == small_table.gain(1, -10.0, 0.0)
        assert small_table.gain(1, 0.0, 99.0) == small_table.gain(1, 0.0, 10.0)

    def test_vector_across_sectors(self, small_table):
        vector = small_table.vector(0.0, 0.0)
        np.testing.assert_allclose(vector, [10.0, 0.0])

    def test_sample_matrix_layout(self, small_table):
        grid = AngularGrid(np.array([-10.0, 10.0]), np.array([0.0]))
        matrix = small_table.sample_matrix(grid)
        assert matrix.shape == (2, 2)
        np.testing.assert_allclose(matrix[0], [0.0, 0.0])
        np.testing.assert_allclose(matrix[1], [8.0, -4.0])

    def test_best_sector(self, small_table):
        assert small_table.best_sector(0.0, 0.0) == 1
        assert small_table.best_sector(-10.0, 0.0) == 2

    def test_has_gaps(self, small_table):
        assert not small_table.has_gaps()
        grid = AngularGrid(np.array([0.0]), np.array([0.0]))
        gappy = PatternTable(grid, {1: np.array([[np.nan]])})
        assert gappy.has_gaps()

    def test_save_load_roundtrip(self, small_table, tmp_path):
        path = str(tmp_path / "patterns.npz")
        small_table.save(path)
        loaded = PatternTable.load(path)
        assert loaded.sector_ids == small_table.sector_ids
        np.testing.assert_allclose(loaded.grid.azimuths_deg, small_table.grid.azimuths_deg)
        for sector_id in small_table.sector_ids:
            np.testing.assert_allclose(
                loaded.pattern(sector_id), small_table.pattern(sector_id)
            )

    def test_empty_table_rejected(self, small_table):
        with pytest.raises(ValueError):
            PatternTable(small_table.grid, {})

    def test_degenerate_single_point_grid(self):
        grid = AngularGrid(np.array([0.0]), np.array([0.0]))
        table = PatternTable(grid, {1: np.array([[3.0]])})
        assert table.gain(1, 45.0, 45.0) == 3.0


class TestRotationHead:
    def test_azimuth_snaps_to_microsteps(self):
        head = RotationHead(azimuth_jitter_deg=0.0, tilt_error_std_deg=0.0)
        head.set_azimuth(10.004)
        assert head.actual_azimuth_deg == pytest.approx(10.0)

    def test_azimuth_wraps(self):
        head = RotationHead(azimuth_jitter_deg=0.0, tilt_error_std_deg=0.0)
        head.set_azimuth(270.0)
        assert head.commanded_azimuth_deg == pytest.approx(-90.0)

    def test_tilt_error_redrawn_per_adjustment(self):
        head = RotationHead(np.random.default_rng(1), tilt_error_std_deg=1.0)
        head.set_tilt(10.0)
        first = head.actual_tilt_deg
        head.set_tilt(10.0)
        second = head.actual_tilt_deg
        assert first != second  # manual tilts never repeat exactly

    def test_tilt_error_held_across_azimuth_moves(self):
        head = RotationHead(np.random.default_rng(1), tilt_error_std_deg=1.0)
        head.set_tilt(10.0)
        error_before = head.actual_tilt_deg
        head.set_azimuth(30.0)
        assert head.actual_tilt_deg == error_before

    def test_orientation_sign_convention(self):
        head = RotationHead(azimuth_jitter_deg=0.0, tilt_error_std_deg=0.0)
        head.set_azimuth(-25.0)
        head.set_tilt(10.0)
        orientation = head.orientation()
        assert orientation.yaw_deg == pytest.approx(-25.0)
        assert orientation.pitch_deg == pytest.approx(-10.0)
        azimuth, elevation = head.nominal_device_direction()
        assert azimuth == pytest.approx(25.0)
        assert elevation == pytest.approx(10.0)

    def test_nominal_direction_matches_physics_without_errors(self):
        head = RotationHead(azimuth_jitter_deg=0.0, tilt_error_std_deg=0.0)
        head.set_tilt(12.0)
        head.set_azimuth(-30.0)
        nominal = head.nominal_device_direction()
        actual = head.orientation().world_direction_in_device_frame(0.0, 0.0)
        # Yaw-then-pitch cross-coupling: the nominal grid coordinate is
        # exact at zero yaw and drifts a couple of degrees at combined
        # yaw+tilt — the systematic part of the paper's elevation error.
        assert actual[0] == pytest.approx(nominal[0], abs=2.0)
        assert actual[1] == pytest.approx(nominal[1], abs=2.0)

    def test_mechanical_range_checked(self):
        head = RotationHead()
        with pytest.raises(ValueError):
            head.set_tilt(120.0)

    def test_bad_resolution_rejected(self):
        with pytest.raises(ValueError):
            RotationHead(azimuth_resolution_deg=0.0)
