"""Packet-error-rate link model: soft PHY edges instead of cliffs.

The MCS ladder in :mod:`repro.link.mcs` switches rates at hard SNR
thresholds; real receivers degrade smoothly — near a threshold some
packets fail and MAC retransmissions eat goodput.  This module models
that with a logistic PER curve per MCS and computes the *effective*
rate (PHY rate × (1 − PER) with up to ``max_retries`` retransmissions),
which rate adaptation then maximizes over the ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .mcs import MCS_TABLE, Mcs

__all__ = ["PacketErrorModel"]


@dataclass(frozen=True)
class PacketErrorModel:
    """Logistic PER curves anchored at the MCS thresholds.

    At an MCS's nominal threshold the PER is ``per_at_threshold``
    (10 % — the usual sensitivity definition); every dB of margin
    divides the error odds by ``steepness_db``'s logistic factor.

    Attributes:
        per_at_threshold: PER exactly at the MCS sensitivity point.
        steepness_db: logistic slope — smaller is steeper.
        max_retries: MAC retransmissions before a packet is dropped.
    """

    per_at_threshold: float = 0.10
    steepness_db: float = 0.8
    max_retries: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.per_at_threshold < 1.0:
            raise ValueError("PER at threshold must be in (0, 1)")
        if self.steepness_db <= 0:
            raise ValueError("steepness must be positive")
        if self.max_retries < 0:
            raise ValueError("retries cannot be negative")

    def packet_error_rate(self, mcs: Mcs, snr_db: float) -> float:
        """PER of one transmission attempt at the given SNR."""
        margin = snr_db - mcs.min_sweep_snr_db
        # Logistic in log-odds space, anchored at per_at_threshold.
        anchor_logit = np.log(self.per_at_threshold / (1.0 - self.per_at_threshold))
        logit = anchor_logit - margin / self.steepness_db
        return float(1.0 / (1.0 + np.exp(-logit)))

    def delivery_probability(self, mcs: Mcs, snr_db: float) -> float:
        """Probability a packet survives within the retry budget."""
        per = self.packet_error_rate(mcs, snr_db)
        return 1.0 - per ** (self.max_retries + 1)

    def effective_rate_mbps(self, mcs: Mcs, snr_db: float) -> float:
        """Goodput-relevant rate: PHY rate discounted by airtime waste.

        Each failed attempt burns the same airtime as a success, so the
        effective rate is the PHY rate divided by the expected number
        of attempts, times the delivery probability.
        """
        per = self.packet_error_rate(mcs, snr_db)
        attempts = sum(per**k for k in range(self.max_retries + 1))
        return mcs.phy_rate_mbps * self.delivery_probability(mcs, snr_db) / attempts

    def best_mcs(self, snr_db: float) -> Optional[Mcs]:
        """The MCS maximizing effective rate (None if all are dead)."""
        best: Optional[Mcs] = None
        best_rate = 0.0
        for mcs in MCS_TABLE:
            rate = self.effective_rate_mbps(mcs, snr_db)
            if rate > best_rate:
                best = mcs
                best_rate = rate
        return best

    def goodput_gbps(self, snr_db: float, mac_efficiency: float = 0.65) -> float:
        """Soft-edge counterpart of ``ThroughputModel.goodput_gbps``."""
        best = self.best_mcs(snr_db)
        if best is None:
            return 0.0
        return self.effective_rate_mbps(best, snr_db) * mac_efficiency / 1000.0
