"""Tests for the MCS ladder, rate adaptation, and throughput model."""

import pytest

from repro.link import (
    CONTROL_MCS,
    MCS_TABLE,
    RateAdapter,
    ThroughputModel,
    highest_mcs,
    select_mcs,
)


class TestMcsTable:
    def test_standard_phy_rates(self):
        rates = [mcs.phy_rate_mbps for mcs in MCS_TABLE]
        assert rates == [
            385.0, 770.0, 962.5, 1155.0, 1251.25, 1540.0,
            1925.0, 2310.0, 2502.5, 3080.0, 3850.0, 4620.0,
        ]

    def test_rates_and_thresholds_monotone(self):
        rates = [mcs.phy_rate_mbps for mcs in MCS_TABLE]
        thresholds = [mcs.min_sweep_snr_db for mcs in MCS_TABLE]
        assert rates == sorted(rates)
        assert thresholds == sorted(thresholds)

    def test_control_mcs_near_noise_floor(self):
        assert CONTROL_MCS.index == 0
        assert CONTROL_MCS.min_sweep_snr_db < MCS_TABLE[0].min_sweep_snr_db

    def test_highest(self):
        assert highest_mcs().index == 12


class TestSelectMcs:
    def test_none_below_ladder(self):
        assert select_mcs(-10.0) is None

    def test_exact_threshold_selects(self):
        mcs = select_mcs(MCS_TABLE[3].min_sweep_snr_db)
        assert mcs.index == MCS_TABLE[3].index

    def test_high_snr_selects_top(self):
        assert select_mcs(40.0).index == 12

    def test_monotone_in_snr(self):
        indices = []
        for snr in range(-8, 30):
            mcs = select_mcs(float(snr))
            indices.append(-1 if mcs is None else mcs.index)
        assert indices == sorted(indices)


class TestRateAdapter:
    def test_first_update_sets_rate(self):
        adapter = RateAdapter()
        assert adapter.current is None
        assert adapter.update(8.0).index == select_mcs(8.0).index

    def test_step_down_immediate(self):
        adapter = RateAdapter()
        adapter.update(15.0)
        assert adapter.update(0.0).index == select_mcs(0.0).index

    def test_step_up_requires_margin(self):
        adapter = RateAdapter(up_margin_db=1.0)
        adapter.update(5.9)  # some mid MCS
        held = adapter.current
        # Barely reaching the next threshold does not switch...
        next_threshold = MCS_TABLE[held.index].min_sweep_snr_db  # index i -> entry i+1? guard below
        target = select_mcs(held.min_sweep_snr_db + 2.0)
        adapter.update(target.min_sweep_snr_db + 0.2)
        assert adapter.current.index <= target.index

    def test_hysteresis_blocks_marginal_upgrade(self):
        adapter = RateAdapter(up_margin_db=1.0)
        adapter.update(MCS_TABLE[5].min_sweep_snr_db)
        before = adapter.current.index
        adapter.update(MCS_TABLE[6].min_sweep_snr_db + 0.1)  # within margin
        assert adapter.current.index == before

    def test_multi_step_jump_climbs_to_cleared_level(self):
        adapter = RateAdapter(up_margin_db=1.0)
        adapter.update(MCS_TABLE[0].min_sweep_snr_db)
        adapter.update(MCS_TABLE[8].min_sweep_snr_db + 1.5)  # clears 9's margin
        assert adapter.current.index == MCS_TABLE[8].index

    def test_loss_of_link(self):
        adapter = RateAdapter()
        adapter.update(10.0)
        assert adapter.update(-12.0) is None

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            RateAdapter(up_margin_db=-1.0)


class TestThroughputModel:
    def test_zero_below_ladder(self):
        assert ThroughputModel().goodput_gbps(-10.0) == 0.0

    def test_host_cap_applies(self):
        model = ThroughputModel(host_cap_gbps=1.8)
        assert model.goodput_gbps(40.0) == pytest.approx(1.8)

    def test_mid_snr_maps_through_efficiency(self):
        model = ThroughputModel(mac_efficiency=0.65, host_cap_gbps=99.0)
        snr = 8.0
        expected = select_mcs(snr).phy_rate_mbps * 0.65 / 1000.0
        assert model.goodput_gbps(snr) == pytest.approx(expected)

    def test_training_duty_cycle(self):
        model = ThroughputModel()
        # 14 probes: 0.553 ms out of 1 s.
        assert model.training_duty_cycle(14) == pytest.approx(5.53e-4, rel=1e-2)
        assert model.goodput_with_training_gbps(8.0, 14) < model.goodput_gbps(8.0)

    def test_expected_goodput_penalizes_switches(self):
        model = ThroughputModel(switch_penalty=0.10)
        series = [8.0, 8.0, 8.0, 8.0]
        stable = model.expected_goodput_gbps(series, 14, [1, 1, 1, 1])
        flappy = model.expected_goodput_gbps(series, 14, [1, 2, 1, 2])
        assert stable > flappy

    def test_selections_optional(self):
        model = ThroughputModel()
        assert model.expected_goodput_gbps([8.0, 8.0], 14) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputModel(mac_efficiency=0.0)
        with pytest.raises(ValueError):
            ThroughputModel(switch_penalty=1.0)
        model = ThroughputModel()
        with pytest.raises(ValueError):
            model.expected_goodput_gbps([], 14)
        with pytest.raises(ValueError):
            model.expected_goodput_gbps([1.0], 14, selections=[1, 2])
