"""Tests for DTI service-period scheduling."""

import pytest

from repro.mac.dti import DTIScheduler, ServicePeriod, StationDemand
from repro.mac.timing import BEACON_INTERVAL_US, mutual_training_time_us


def demands(*specs):
    return [StationDemand(name, snr, weight, probes) for name, snr, weight, probes in specs]


class TestValidation:
    def test_station_demand(self):
        with pytest.raises(ValueError):
            StationDemand("a", 8.0, demand_weight=0.0)
        with pytest.raises(ValueError):
            StationDemand("a", 8.0, n_probes=0)

    def test_service_period(self):
        with pytest.raises(ValueError):
            ServicePeriod("a", -1.0, 10.0)

    def test_scheduler_overhead(self):
        with pytest.raises(ValueError):
            DTIScheduler(bti_abft_overhead_us=BEACON_INTERVAL_US)

    def test_empty_and_duplicate_demands(self):
        scheduler = DTIScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule([])
        with pytest.raises(ValueError):
            scheduler.schedule(demands(("a", 8, 1, 34), ("a", 8, 1, 34)))


class TestScheduling:
    def test_full_interval_accounted(self):
        scheduler = DTIScheduler()
        schedule = scheduler.schedule(demands(("a", 8, 1, 34), ("b", 8, 1, 34)))
        total = schedule.overhead_us + schedule.training_us + schedule.allocated_us
        assert total == pytest.approx(BEACON_INTERVAL_US)

    def test_proportional_split(self):
        scheduler = DTIScheduler()
        schedule = scheduler.schedule(demands(("a", 8, 3, 34), ("b", 8, 1, 34)))
        assert schedule.station_airtime_us("a") == pytest.approx(
            3 * schedule.station_airtime_us("b")
        )

    def test_service_periods_disjoint(self):
        scheduler = DTIScheduler()
        schedule = scheduler.schedule(
            demands(("a", 8, 1, 34), ("b", 8, 2, 14), ("c", 8, 1, 14))
        )
        assert schedule.non_overlapping()

    def test_training_charge_matches_policies(self):
        scheduler = DTIScheduler()
        schedule = scheduler.schedule(demands(("a", 8, 1, 34), ("b", 8, 1, 14)))
        assert schedule.training_us == pytest.approx(
            mutual_training_time_us(34) + mutual_training_time_us(14)
        )

    def test_css_training_leaves_more_airtime(self):
        scheduler = DTIScheduler()
        ssw = scheduler.schedule(demands(*[(f"s{i}", 8, 1, 34) for i in range(8)]))
        css = scheduler.schedule(demands(*[(f"s{i}", 8, 1, 14) for i in range(8)]))
        assert css.allocated_us > ssw.allocated_us

    def test_training_can_eat_the_interval(self):
        scheduler = DTIScheduler(beacon_interval_us=5_000.0, bti_abft_overhead_us=1_000.0)
        schedule = scheduler.schedule(demands(*[(f"s{i}", 8, 1, 34) for i in range(4)]))
        assert schedule.service_periods == []
        assert schedule.allocated_us == 0.0

    def test_goodput_scales_with_share(self):
        scheduler = DTIScheduler()
        goodputs = scheduler.goodput_gbps(demands(("a", 8, 3, 14), ("b", 8, 1, 14)))
        assert goodputs["a"] == pytest.approx(3 * goodputs["b"], rel=1e-6)

    def test_goodput_zero_for_dead_link(self):
        scheduler = DTIScheduler()
        goodputs = scheduler.goodput_gbps(demands(("a", -20, 1, 14)))
        assert goodputs["a"] == 0.0
