"""Bench: regenerate Figure 6 (spherical patterns over az × el).

Runs the 3D chamber campaign and checks the elevation behaviour the
paper highlights: sector 5 strengthens off-plane, sector 26 loses gain
at high elevations, 25/62 stay weak everywhere measured.
"""

import numpy as np

from repro.experiments import Fig6Config, run_fig6


def test_fig6_spherical_patterns(benchmark, report_rows):
    config = Fig6Config(azimuth_step_deg=3.6, elevation_step_deg=3.6, n_sweeps=2)
    result = benchmark.pedantic(lambda: run_fig6(config), rounds=1, iterations=1)
    report_rows(result.format_rows())

    table = result.table
    assert table.n_sectors == 35
    assert table.grid.elevations_deg[-1] == 32.4
    assert not table.has_gaps()

    # Sector 5: low gain in the plane, stronger lobes at high elevation.
    assert result.off_plane_peak(5) > result.in_plane_peak(5) + 3.0

    # Sector 26: wide in azimuth but fading toward high elevations.
    profile_26 = result.elevation_profile(26)
    assert profile_26[0] > profile_26[-1] + 3.0

    # Sectors 25 and 62 stay weak across the measured sphere.
    strong_peak = float(np.max(result.table.pattern(63)))
    for weak_id in (25, 62):
        assert float(np.max(table.pattern(weak_id))) < strong_peak - 4.0

    # The quasi-omni RX pattern has no deep nulls in the frontal plane
    # (it rolls off gently at combined high tilt + azimuth, like a
    # single element does, but the in-plane cut stays flat).
    rx_in_plane = table.pattern(0)[0]
    frontal = np.abs(table.grid.azimuths_deg) <= 45.0
    assert rx_in_plane[frontal].min() > rx_in_plane[frontal].max() - 8.0
