"""Network-level substrate: shared-channel airtime accounting."""

from .airtime import AirtimeLedger, TrainingPolicy
from .interference import DirectionalLink, InterferenceGraph

__all__ = ["AirtimeLedger", "TrainingPolicy", "DirectionalLink", "InterferenceGraph"]
