#!/usr/bin/env python3
"""Reproduce the paper's measurement campaign and publish the data.

Runs the Figure 5 (azimuth circle) and Figure 6 (spherical) campaigns
in the simulated anechoic chamber, prints ASCII polar summaries of a
few characteristic sectors, and saves the tables as ``.npz`` files —
the equivalent of the measurement data the authors released with
talon-tools.

Run:  python examples/pattern_campaign.py [output-dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.measurement import (
    PatternMeasurementCampaign,
    PatternTable,
    measure_3d_patterns,
    measure_azimuth_patterns,
)
from repro.phased_array import PhasedArray, talon_codebook

#: Sectors the paper singles out in §4.4, and why.
SHOWCASE = {
    63: "strong single lobe (used for beacons)",
    26: "wide azimuth coverage, fades at high elevation",
    13: "multiple comparable lobes",
    5: "weak in plane, lobes at higher elevations",
    25: "low gain everywhere",
}


def ascii_polar(pattern_row: np.ndarray, azimuths: np.ndarray, width: int = 72) -> str:
    """A crude one-line polar plot: SNR rendered as characters."""
    resampled = np.interp(
        np.linspace(azimuths[0], azimuths[-1], width), azimuths, pattern_row
    )
    glyphs = " .:-=+*#%@"
    low, high = -7.0, 12.0
    indices = np.clip(
        ((resampled - low) / (high - low) * (len(glyphs) - 1)).astype(int),
        0,
        len(glyphs) - 1,
    )
    return "".join(glyphs[i] for i in indices)


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    output_dir.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(2017)

    antenna = PhasedArray.talon(np.random.default_rng(1))
    codebook = talon_codebook(antenna)
    campaign = PatternMeasurementCampaign(antenna, codebook)

    print("fig5 campaign: azimuth -180..180 at 1.8 deg, elevation 0 ...")
    azimuth_table = measure_azimuth_patterns(campaign, rng, azimuth_step_deg=1.8)
    print("fig6 campaign: azimuth +-90 at 3.6 deg, tilts 0..32.4 at 7.2 deg ...")
    spherical_table = measure_3d_patterns(
        campaign, rng, azimuth_step_deg=3.6, elevation_step_deg=7.2
    )

    print(f"\nazimuth patterns (-180 .. 180), floor '{'.'}' to peak '@':")
    for sector_id, description in SHOWCASE.items():
        row = azimuth_table.pattern(sector_id)[0]
        print(f"sector {sector_id:2d} | {ascii_polar(row, azimuth_table.grid.azimuths_deg)}")
        print(f"          {description}; peak "
              f"{row.max():.1f} dB @ {azimuth_table.grid.azimuths_deg[row.argmax()]:.0f} deg")

    azimuth_path = output_dir / "talon_sector_patterns_azimuth.npz"
    spherical_path = output_dir / "talon_sector_patterns_3d.npz"
    azimuth_table.save(str(azimuth_path))
    spherical_table.save(str(spherical_path))
    print(f"\nsaved {azimuth_path}")
    print(f"saved {spherical_path}")

    reloaded = PatternTable.load(str(spherical_path))
    assert reloaded.sector_ids == spherical_table.sector_ids
    print("reload check passed — tables round-trip through npz")


if __name__ == "__main__":
    main()
