"""Firmware measurement model: from true SNR to what the chip reports.

Section 5 of the paper documents the quirks of the QCA9500's signal
strength reporting, all of which are modelled here:

* SNR readings are quantized to quarter-dB steps and clipped to the
  range −7 … 12 dB;
* low-gain sectors show large fluctuations and severe outliers;
* sometimes the firmware reports nothing at all for a sector;
* RSSI is acquired separately from SNR — the two are correlated on
  average but their fluctuations are not simultaneous, which is what
  makes the paper's SNR×RSSI correlation fusion (Eq. 5) effective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "SignalObservation",
    "SignalObservationBatch",
    "MeasurementModel",
    "quantize_to_step",
]


def quantize_to_step(value: float, step: float) -> float:
    """Round ``value`` to the nearest multiple of ``step``."""
    if step <= 0:
        raise ValueError("quantization step must be positive")
    return round(value / step) * step


@dataclass(frozen=True)
class SignalObservation:
    """One reported measurement for one received SSW frame."""

    snr_db: float
    rssi_dbm: float


@dataclass(frozen=True)
class SignalObservationBatch:
    """Vectorized firmware reports for a block of frames.

    ``reported[i]`` is False when frame ``i`` failed to decode or its
    report was dropped; the corresponding ``snr_db[i]`` / ``rssi_dbm[i]``
    slots hold NaN.
    """

    reported: np.ndarray
    snr_db: np.ndarray
    rssi_dbm: np.ndarray

    def __len__(self) -> int:
        return int(self.reported.size)


@dataclass(frozen=True)
class MeasurementModel:
    """Stochastic model of the firmware's signal-strength reporting.

    Attributes:
        snr_min_db / snr_max_db: reporting range of the SNR field.
        snr_step_db: SNR quantization (quarter dB on the QCA9500).
        rssi_step_db: RSSI quantization.
        decode_threshold_db: SNR at which frame decoding succeeds 50 %
            of the time (soft threshold with ``decode_width_db`` slope).
        report_dropout_probability: chance that a decoded frame still
            yields no firmware report.
        base_noise_std_db: measurement noise at high SNR.
        low_snr_extra_noise_db: extra noise approached at low SNR.
        outlier_probability: chance of a severe outlier per value.
        outlier_magnitude_db: half-range of the outlier offset.
    """

    snr_min_db: float = -7.0
    snr_max_db: float = 12.0
    snr_step_db: float = 0.25
    rssi_step_db: float = 1.0
    # SSW frames ride the heavily spread control PHY, which decodes
    # below the SNR field's own -7 dB reporting floor.
    decode_threshold_db: float = -9.0
    decode_width_db: float = 1.5
    report_dropout_probability: float = 0.03
    base_noise_std_db: float = 0.4
    low_snr_extra_noise_db: float = 1.6
    outlier_probability: float = 0.08
    outlier_magnitude_db: float = 10.0
    rssi_offset_db: float = 0.0

    def __post_init__(self) -> None:
        if self.snr_max_db <= self.snr_min_db:
            raise ValueError("snr_max_db must exceed snr_min_db")
        if not 0.0 <= self.report_dropout_probability < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        if not 0.0 <= self.outlier_probability < 1.0:
            raise ValueError("outlier probability must be in [0, 1)")

    @classmethod
    def noiseless(cls) -> "MeasurementModel":
        """Quantization only — for ablations and deterministic tests."""
        return cls(
            report_dropout_probability=0.0,
            base_noise_std_db=0.0,
            low_snr_extra_noise_db=0.0,
            outlier_probability=0.0,
            decode_threshold_db=-1e9,
        )

    def decode_probability(self, true_snr_db: float) -> float:
        """Soft frame-decoding probability as a function of SNR."""
        argument = (true_snr_db - self.decode_threshold_db) / self.decode_width_db
        return float(1.0 / (1.0 + np.exp(-argument)))

    def _noise_std_db(self, true_snr_db: float) -> float:
        """Noise grows as the SNR approaches the sensitivity floor."""
        low_snr_weight = 1.0 / (1.0 + np.exp((true_snr_db - 2.0) / 2.0))
        return self.base_noise_std_db + self.low_snr_extra_noise_db * low_snr_weight

    def _maybe_outlier(self, rng: np.random.Generator) -> float:
        if rng.random() < self.outlier_probability:
            return float(rng.uniform(-self.outlier_magnitude_db, self.outlier_magnitude_db))
        return 0.0

    def observe(
        self,
        true_snr_db: float,
        noise_floor_dbm: float,
        rng: np.random.Generator,
    ) -> Optional[SignalObservation]:
        """Produce the firmware's report for one frame, or ``None``.

        ``None`` models either a frame that failed to decode or a
        decoded frame whose measurement the firmware dropped.
        """
        if rng.random() > self.decode_probability(true_snr_db):
            return None
        if rng.random() < self.report_dropout_probability:
            return None

        noise_std = self._noise_std_db(true_snr_db)
        snr_reading = true_snr_db + rng.normal(0.0, noise_std) + self._maybe_outlier(rng)
        snr_reading = float(
            np.clip(
                quantize_to_step(snr_reading, self.snr_step_db),
                self.snr_min_db,
                self.snr_max_db,
            )
        )
        # RSSI: independently acquired estimate of the received power.
        rssi_reading = (
            true_snr_db
            + noise_floor_dbm
            + self.rssi_offset_db
            + rng.normal(0.0, noise_std)
            + self._maybe_outlier(rng)
        )
        rssi_reading = float(quantize_to_step(rssi_reading, self.rssi_step_db))
        return SignalObservation(snr_db=snr_reading, rssi_dbm=rssi_reading)

    def observe_batch(
        self,
        true_snr_db: np.ndarray,
        noise_floor_dbm: float,
        rng: np.random.Generator,
    ) -> SignalObservationBatch:
        """Firmware reports for a whole block of frames in a few draws.

        The per-frame arithmetic matches :meth:`observe` exactly; the
        random stream follows a fixed **stage-major** convention so the
        result is deterministic given the injected generator:

        1. one decode uniform per frame,
        2. one dropout uniform per *decoded* frame,
        3. SNR noise normals for the reporting frames,
        4. SNR outlier uniforms, then offsets for the outliers,
        5. RSSI noise normals, 6. RSSI outlier uniforms + offsets.

        For a single frame this is the same draw order as the scalar
        path, so ``observe_batch(np.array([x]), ...)`` reproduces
        ``observe(x, ...)`` bit for bit from the same generator state
        (the pinned regression test asserts this).  For larger blocks
        the draws are regrouped, so the *stream* differs from a scalar
        loop even though the per-frame distribution is identical —
        which is why the recording reference path keeps the scalar
        model (see ``experiments.common.record_directions``).
        """
        true_snr = np.asarray(true_snr_db, dtype=float)
        if true_snr.ndim != 1:
            raise ValueError("true_snr_db must be a 1-D block of frames")
        n_frames = true_snr.size
        snr_out = np.full(n_frames, np.nan)
        rssi_out = np.full(n_frames, np.nan)
        reported = np.zeros(n_frames, dtype=bool)
        if n_frames == 0:
            return SignalObservationBatch(reported, snr_out, rssi_out)

        argument = (true_snr - self.decode_threshold_db) / self.decode_width_db
        decode_p = 1.0 / (1.0 + np.exp(-argument))
        decoded = np.flatnonzero(rng.random(n_frames) <= decode_p)
        if decoded.size:
            dropout = rng.random(decoded.size)
            decoded = decoded[dropout >= self.report_dropout_probability]
        if decoded.size == 0:
            return SignalObservationBatch(reported, snr_out, rssi_out)
        reported[decoded] = True

        truth = true_snr[decoded]
        low_snr_weight = 1.0 / (1.0 + np.exp((truth - 2.0) / 2.0))
        noise_std = self.base_noise_std_db + self.low_snr_extra_noise_db * low_snr_weight

        def outlier_offsets(count: int) -> np.ndarray:
            offsets = np.zeros(count)
            hits = np.flatnonzero(rng.random(count) < self.outlier_probability)
            if hits.size:
                offsets[hits] = rng.uniform(
                    -self.outlier_magnitude_db, self.outlier_magnitude_db, hits.size
                )
            return offsets

        snr_noise = rng.normal(0.0, noise_std)
        snr_reading = truth + snr_noise + outlier_offsets(decoded.size)
        snr_out[decoded] = np.clip(
            np.round(snr_reading / self.snr_step_db) * self.snr_step_db,
            self.snr_min_db,
            self.snr_max_db,
        )
        rssi_noise = rng.normal(0.0, noise_std)
        rssi_reading = (
            truth
            + noise_floor_dbm
            + self.rssi_offset_db
            + rssi_noise
            + outlier_offsets(decoded.size)
        )
        rssi_out[decoded] = np.round(rssi_reading / self.rssi_step_db) * self.rssi_step_db
        return SignalObservationBatch(reported, snr_out, rssi_out)
