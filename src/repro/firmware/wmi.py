"""Wireless Module Interface (WMI) commands.

The host driver talks to the QCA9500 firmware through WMI mailbox
commands.  The paper adds a custom command that arms a sector override
for the SSW feedback field; we also model the stock commands the
experiments rely on (draining the sweep ring buffer, resetting state).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "WmiCommand",
    "WmiSetSectorOverride",
    "WmiClearSectorOverride",
    "WmiDrainSweepReports",
    "WmiResetSweepState",
    "WmiError",
]


class WmiError(Exception):
    """Raised when the firmware rejects a WMI command."""


@dataclass(frozen=True)
class WmiCommand:
    """Base class for all WMI commands."""


@dataclass(frozen=True)
class WmiSetSectorOverride(WmiCommand):
    """Arm the custom-sector switch: feedback will carry ``sector_id``.

    This is the paper's §3.4 extension — the firmware keeps running its
    original selection, but the SSW feedback field (in SSW, feedback
    and ACK frames) is overwritten with the host-chosen sector.
    """

    sector_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.sector_id <= 63:
            raise ValueError("sector ID is a 6-bit field")


@dataclass(frozen=True)
class WmiClearSectorOverride(WmiCommand):
    """Disarm the override: feedback reverts to the stock selection."""


@dataclass(frozen=True)
class WmiDrainSweepReports(WmiCommand):
    """Read and clear the sweep-report ring buffer (§3.3 extension)."""


@dataclass(frozen=True)
class WmiResetSweepState(WmiCommand):
    """Clear the firmware's per-sweep measurement accumulator."""
