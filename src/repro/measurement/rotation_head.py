"""The custom rotation head used for pattern measurements (§4.2).

The head yaws the mounted router with a micro-stepping motor (high
azimuth precision) while elevation is set by manually tilting the head
— the paper reports that even with a digital level the tilt is not
sub-degree accurate.  :class:`RotationHead` models both, exposing the
*commanded* pose alongside the *actual* (error-afflicted) orientation.

Convention: a positive head tilt pitches the boresight **down**, so the
fixed link partner appears at positive device-frame elevations — this
matches the positive elevation axes of Figures 6 and 7.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry.angles import wrap_azimuth
from ..geometry.rotation import Orientation

__all__ = ["RotationHead"]


class RotationHead:
    """Stepper-driven azimuth stage with manual elevation tilt."""

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        azimuth_resolution_deg: float = 0.01,
        azimuth_jitter_deg: float = 0.02,
        tilt_error_std_deg: float = 0.8,
    ):
        """
        Args:
            rng: randomness for mechanical errors (fixed seed default).
            azimuth_resolution_deg: micro-step size of the motor.
            azimuth_jitter_deg: residual azimuth wobble per positioning.
            tilt_error_std_deg: error of one manual tilt adjustment;
                drawn once per tilt change and held until the next one.
        """
        if azimuth_resolution_deg <= 0:
            raise ValueError("azimuth resolution must be positive")
        self._rng = rng if rng is not None else np.random.default_rng(0x407)
        self._azimuth_resolution_deg = azimuth_resolution_deg
        self._azimuth_jitter_deg = azimuth_jitter_deg
        self._tilt_error_std_deg = tilt_error_std_deg

        self._commanded_azimuth_deg = 0.0
        self._commanded_tilt_deg = 0.0
        self._actual_azimuth_deg = 0.0
        self._tilt_error_deg = 0.0

    @property
    def commanded_azimuth_deg(self) -> float:
        return self._commanded_azimuth_deg

    @property
    def commanded_tilt_deg(self) -> float:
        return self._commanded_tilt_deg

    @property
    def actual_azimuth_deg(self) -> float:
        return self._actual_azimuth_deg

    @property
    def actual_tilt_deg(self) -> float:
        return self._commanded_tilt_deg + self._tilt_error_deg

    def set_azimuth(self, azimuth_deg: float) -> None:
        """Rotate to ``azimuth_deg`` (wrapped, snapped to micro-steps)."""
        commanded = wrap_azimuth(azimuth_deg)
        snapped = (
            round(commanded / self._azimuth_resolution_deg) * self._azimuth_resolution_deg
        )
        jitter = (
            self._rng.normal(0.0, self._azimuth_jitter_deg)
            if self._azimuth_jitter_deg > 0
            else 0.0
        )
        self._commanded_azimuth_deg = commanded
        self._actual_azimuth_deg = snapped + jitter

    def set_tilt(self, tilt_deg: float) -> None:
        """Manually tilt the head; draws a fresh tilt error.

        Positive tilts pitch the boresight down (see module docstring).
        """
        if not -90.0 <= tilt_deg <= 90.0:
            raise ValueError("tilt out of mechanical range")
        self._commanded_tilt_deg = tilt_deg
        self._tilt_error_deg = (
            self._rng.normal(0.0, self._tilt_error_std_deg)
            if self._tilt_error_std_deg > 0
            else 0.0
        )

    def orientation(self) -> Orientation:
        """Actual device orientation (head yaw + erroneous tilt).

        A head yaw of φ turns the boresight to world azimuth φ; a head
        tilt of θ (down) is a device pitch of −θ.
        """
        return Orientation(
            yaw_deg=self._actual_azimuth_deg, pitch_deg=-self.actual_tilt_deg
        )

    def nominal_device_direction(self) -> tuple:
        """Nominal device-frame direction of the fixed link partner.

        The partner sits at world azimuth 0, so after a commanded yaw
        of φ and tilt of θ it is nominally at device-frame
        ``(-φ, +θ)``.  This is the grid coordinate the campaign files
        samples under — mechanical errors make the *measured value*
        belong to a slightly different true direction, exactly like the
        paper's setup.
        """
        return (wrap_azimuth(-self._commanded_azimuth_deg), self._commanded_tilt_deg)
