"""The "published" pattern data set.

The authors released their measured Talon AD7200 sector patterns with
talon-tools; this module ships the simulator's equivalent — one full
Figure-6-resolution chamber campaign (azimuth ±90° at 1.8°, elevation
0–32.4° at 3.6°, 3 sweeps averaged) for the canonical default device
(`PhasedArray.talon()` with its fixed seed).  Users who just want to
run compressive selection can load this table instead of re-running a
campaign:

    from repro.measurement import load_published_patterns
    selector = CompressiveSectorSelector(load_published_patterns())
"""

from __future__ import annotations

import importlib.resources

from .patterns import PatternTable

__all__ = ["load_published_patterns", "PUBLISHED_PATTERNS_RESOURCE"]

#: Package-relative resource name of the shipped table.
PUBLISHED_PATTERNS_RESOURCE = "talon_sector_patterns_3d.npz"


def load_published_patterns() -> PatternTable:
    """Load the shipped canonical-device 3D pattern table.

    The table was produced by exactly the public campaign pipeline
    (``measure_3d_patterns`` at the paper's Figure-6 resolution, seed
    0x11AD2017) and regenerating it reproduces it bit for bit.
    """
    resource = importlib.resources.files("repro.data").joinpath(
        PUBLISHED_PATTERNS_RESOURCE
    )
    with importlib.resources.as_file(resource) as path:
        return PatternTable.load(str(path))
