"""Data Transfer Interval scheduling: service periods in a beacon interval.

After BTI and A-BFT, the rest of each 102.4 ms beacon interval is the
DTI, which a DMG AP carves into contention-free Service Periods (SPs)
assigned to station pairs.  The scheduler here allocates SPs
proportionally to per-station demand, charges each associated pair its
periodic beamforming-training time, and reports the per-station
airtime and goodput — the substrate for studying how training overhead
eats into a real BI, complementary to the epoch-level ledger in
:mod:`repro.net.airtime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..link.throughput import ThroughputModel
from .timing import BEACON_INTERVAL_US, mutual_training_time_us

__all__ = ["ServicePeriod", "DTISchedule", "DTIScheduler", "StationDemand"]


@dataclass(frozen=True)
class StationDemand:
    """One associated station's traffic demand and link state."""

    name: str
    sweep_snr_db: float
    demand_weight: float = 1.0
    n_probes: int = 34  # its training policy

    def __post_init__(self) -> None:
        if self.demand_weight <= 0:
            raise ValueError("demand weight must be positive")
        if self.n_probes < 1:
            raise ValueError("training needs at least one probe")


@dataclass(frozen=True)
class ServicePeriod:
    """One contention-free allocation inside the DTI."""

    station_name: str
    start_us: float
    duration_us: float

    def __post_init__(self) -> None:
        if self.duration_us < 0 or self.start_us < 0:
            raise ValueError("service periods cannot be negative")

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass
class DTISchedule:
    """The allocation result for one beacon interval."""

    service_periods: List[ServicePeriod] = field(default_factory=list)
    training_us: float = 0.0
    overhead_us: float = 0.0

    @property
    def allocated_us(self) -> float:
        return float(sum(sp.duration_us for sp in self.service_periods))

    def station_airtime_us(self, name: str) -> float:
        return float(
            sum(sp.duration_us for sp in self.service_periods if sp.station_name == name)
        )

    def non_overlapping(self) -> bool:
        """SPs must be disjoint (contention-free by construction)."""
        ordered = sorted(self.service_periods, key=lambda sp: sp.start_us)
        for first, second in zip(ordered, ordered[1:]):
            if second.start_us < first.end_us - 1e-9:
                return False
        return True


class DTIScheduler:
    """Weighted proportional SP allocation with training charges."""

    def __init__(
        self,
        bti_abft_overhead_us: float = 2500.0,
        beacon_interval_us: float = BEACON_INTERVAL_US,
        throughput_model: Optional[ThroughputModel] = None,
    ):
        """
        Args:
            bti_abft_overhead_us: BI time consumed before the DTI
                starts (beacon burst + A-BFT window).
        """
        if not 0 <= bti_abft_overhead_us < beacon_interval_us:
            raise ValueError("overhead must leave room for the DTI")
        self.bti_abft_overhead_us = bti_abft_overhead_us
        self.beacon_interval_us = beacon_interval_us
        self.throughput_model = (
            throughput_model if throughput_model is not None else ThroughputModel()
        )

    def schedule(self, demands: List[StationDemand]) -> DTISchedule:
        """Allocate one beacon interval across the stations.

        Each station first pays its mutual-training time (once per BI,
        charged on the shared medium), then the remaining DTI is split
        proportionally to the demand weights.
        """
        if not demands:
            raise ValueError("nothing to schedule")
        names = [demand.name for demand in demands]
        if len(set(names)) != len(names):
            raise ValueError("station names must be unique")

        schedule = DTISchedule(overhead_us=self.bti_abft_overhead_us)
        schedule.training_us = float(
            sum(mutual_training_time_us(demand.n_probes) for demand in demands)
        )
        available = (
            self.beacon_interval_us - self.bti_abft_overhead_us - schedule.training_us
        )
        if available <= 0:
            return schedule  # training ate the whole interval

        total_weight = sum(demand.demand_weight for demand in demands)
        cursor = self.bti_abft_overhead_us + schedule.training_us
        for demand in demands:
            duration = available * demand.demand_weight / total_weight
            schedule.service_periods.append(
                ServicePeriod(
                    station_name=demand.name, start_us=cursor, duration_us=duration
                )
            )
            cursor += duration
        return schedule

    def goodput_gbps(self, demands: List[StationDemand]) -> Dict[str, float]:
        """Per-station goodput over one BI, given its SP share."""
        schedule = self.schedule(demands)
        results: Dict[str, float] = {}
        for demand in demands:
            share = schedule.station_airtime_us(demand.name) / self.beacon_interval_us
            results[demand.name] = (
                self.throughput_model.goodput_gbps(demand.sweep_snr_db) * share
            )
        return results
