"""Figure 11: TCP goodput of CSS (14 probes) vs. the full sweep.

With the rotation head steered to −45°, 0° and +45° in the conference
room, each training interval selects a sector (CSS with 14 random
probes, or the exhaustive sweep) and the link then carries TCP traffic
on it.  The paper measures 1.48–1.51 Gbps for CSS, slightly above the
sweep — the stability gain showing up as goodput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..channel.environment import conference_room
from ..core.compressive import CompressiveSectorSelector
from ..core.selector import SectorSweepSelector
from ..link.throughput import ThroughputModel
from ..mac.timing import N_FULL_SWEEP_SECTORS
from .common import build_testbed, random_subsweep, record_directions

__all__ = ["Fig11Config", "Fig11Result", "run_fig11"]


@dataclass(frozen=True)
class Fig11Config:
    seed: int = 11
    directions_deg: Sequence[float] = (-45.0, 0.0, 45.0)
    n_probes: int = 14
    n_intervals: int = 40


@dataclass
class Fig11Result:
    directions_deg: List[float]
    css_gbps: List[float]
    ssw_gbps: List[float]
    n_probes: int

    def format_rows(self) -> List[str]:
        rows = [
            f"fig11: expected TCP goodput, CSS ({self.n_probes} probes) vs SSW",
            "direction | CSS [Gbps] | SSW [Gbps]",
        ]
        for direction, css, ssw in zip(self.directions_deg, self.css_gbps, self.ssw_gbps):
            rows.append(f"{direction:8.0f}° | {css:10.3f} | {ssw:10.3f}")
        return rows


def run_fig11(config: Fig11Config = Fig11Config()) -> Fig11Result:
    """Run the throughput comparison at the three path directions."""
    testbed = build_testbed()
    rng = np.random.default_rng(config.seed)
    recordings = record_directions(
        testbed,
        conference_room(6.0),
        list(config.directions_deg),
        [0.0],
        config.n_intervals,
        rng,
    )
    tx_ids = testbed.tx_sector_ids
    model = ThroughputModel()

    css_gbps: List[float] = []
    ssw_gbps: List[float] = []
    for recording in recordings:
        css_selector = CompressiveSectorSelector(testbed.pattern_table)
        ssw_selector = SectorSweepSelector()
        css_series: List[float] = []
        ssw_series: List[float] = []
        css_selections: List[int] = []
        ssw_selections: List[int] = []
        for sweep in recording.sweeps:
            measurements = random_subsweep(sweep, tx_ids, config.n_probes, rng)
            css_chosen = css_selector.select(measurements).sector_id
            ssw_chosen = ssw_selector.select(list(sweep.values())).sector_id
            css_selections.append(css_chosen)
            ssw_selections.append(ssw_chosen)
            css_series.append(recording.true_snr_db[tx_ids.index(css_chosen)])
            ssw_series.append(recording.true_snr_db[tx_ids.index(ssw_chosen)])
        css_gbps.append(
            model.expected_goodput_gbps(css_series, config.n_probes, css_selections)
        )
        ssw_gbps.append(
            model.expected_goodput_gbps(ssw_series, N_FULL_SWEEP_SECTORS, ssw_selections)
        )

    return Fig11Result(
        directions_deg=list(config.directions_deg),
        css_gbps=css_gbps,
        ssw_gbps=ssw_gbps,
        n_probes=config.n_probes,
    )
