"""Figure 7: angular estimation error vs. number of probing sectors.

For the lab (3 m, LOS, azimuth ±60°, tilts up to 30°) and the
conference room (6 m, multipath, azimuth only), the experiment records
full sweeps on a grid of physical directions, then estimates the path
direction from random probe subsets of each sweep and reports the
azimuth and elevation error distributions per probe count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..channel.environment import conference_room, lab_environment
from ..core.estimator import AngleEstimator
from ..geometry.angles import azimuth_difference
from .common import (
    BoxStats,
    Testbed,
    build_testbed,
    random_probe_columns,
    record_directions,
)

__all__ = ["Fig7Config", "Fig7Result", "run_fig7", "EstimationErrorSeries"]


@dataclass(frozen=True)
class Fig7Config:
    """Experiment resolution knobs (paper defaults are finer).

    The paper scans ±60° azimuth at 2.25° (lab) / 1.3° (conference) and
    tilts the lab head 0–30° in 2° steps; the defaults below keep the
    same coverage at a coarser pitch so the experiment runs in seconds.
    """

    seed: int = 7
    probe_counts: Sequence[int] = tuple(range(4, 35, 2))
    lab_azimuth_step_deg: float = 7.5
    lab_elevation_step_deg: float = 6.0
    lab_max_elevation_deg: float = 30.0
    conference_azimuth_step_deg: float = 4.0
    n_sweeps: int = 2
    subsamples_per_sweep: int = 2


@dataclass
class EstimationErrorSeries:
    """Error distributions per probe count for one environment."""

    environment_name: str
    probe_counts: List[int] = field(default_factory=list)
    azimuth_stats: List[BoxStats] = field(default_factory=list)
    elevation_stats: List[BoxStats] = field(default_factory=list)

    def azimuth_median(self, n_probes: int) -> float:
        return self.azimuth_stats[self.probe_counts.index(n_probes)].median

    def elevation_median(self, n_probes: int) -> float:
        return self.elevation_stats[self.probe_counts.index(n_probes)].median


@dataclass
class Fig7Result:
    lab: EstimationErrorSeries
    conference: EstimationErrorSeries

    def format_rows(self) -> List[str]:
        rows = ["fig7: angular estimation error (median [p99.5])"]
        for series in (self.lab, self.conference):
            rows.append(f"-- {series.environment_name} --")
            rows.append("probes | az err (deg)      | el err (deg)")
            for index, n_probes in enumerate(series.probe_counts):
                az = series.azimuth_stats[index]
                el = series.elevation_stats[index]
                rows.append(
                    f"{n_probes:6d} | {az.median:5.1f} [{az.whisker_high:5.1f}] | "
                    f"{el.median:5.1f} [{el.whisker_high:5.1f}]"
                )
        return rows


def _evaluate_environment(
    testbed: Testbed,
    estimator: AngleEstimator,
    recordings,
    config: Fig7Config,
    rng: np.random.Generator,
    name: str,
) -> EstimationErrorSeries:
    # Batched form of the paper's offline emulation: the probe draws
    # happen in exactly the scalar order (one `rng.choice` per trial),
    # every trial becomes one row of a padded batch, and
    # `estimate_batch` reproduces the scalar estimates bit for bit —
    # rows with fewer than two reported probes come back as None, the
    # trials the scalar loop skipped.
    series = EstimationErrorSeries(environment_name=name)
    tx_ids = testbed.tx_sector_ids
    id_row = np.asarray(tx_ids, dtype=np.intp)
    packed = [recording.packed_sweeps(tx_ids) for recording in recordings]
    for n_probes in config.probe_counts:
        trial_ids: List[np.ndarray] = []
        trial_snr: List[np.ndarray] = []
        trial_rssi: List[np.ndarray] = []
        trial_mask: List[np.ndarray] = []
        truths: List[tuple] = []
        for recording, (present, snr, rssi) in zip(recordings, packed):
            for sweep_index in range(len(recording.sweeps)):
                for _ in range(config.subsamples_per_sweep):
                    columns = random_probe_columns(len(tx_ids), n_probes, rng)
                    trial_ids.append(id_row[columns])
                    trial_snr.append(snr[sweep_index, columns])
                    trial_rssi.append(rssi[sweep_index, columns])
                    trial_mask.append(present[sweep_index, columns])
                    truths.append((recording.azimuth_deg, recording.elevation_deg))
        estimates = estimator.estimate_batch(
            np.stack(trial_ids),
            snr_db=np.stack(trial_snr),
            rssi_dbm=np.stack(trial_rssi),
            mask=np.stack(trial_mask),
        )
        azimuth_errors: List[float] = []
        elevation_errors: List[float] = []
        for estimate, (true_azimuth, true_elevation) in zip(estimates, truths):
            if estimate is None:
                continue
            azimuth_errors.append(
                abs(azimuth_difference(estimate.azimuth_deg, true_azimuth))
            )
            elevation_errors.append(abs(estimate.elevation_deg - true_elevation))
        series.probe_counts.append(n_probes)
        series.azimuth_stats.append(BoxStats.from_samples(azimuth_errors))
        series.elevation_stats.append(BoxStats.from_samples(elevation_errors))
    return series


def run_fig7(config: Fig7Config = Fig7Config()) -> Fig7Result:
    """Run the full Figure 7 experiment (both environments)."""
    testbed = build_testbed()
    estimator = AngleEstimator(testbed.pattern_table)
    rng = np.random.default_rng(config.seed)

    lab_azimuths = np.arange(-60.0, 60.0 + 1e-9, config.lab_azimuth_step_deg)
    lab_elevations = np.arange(
        0.0, config.lab_max_elevation_deg + 1e-9, config.lab_elevation_step_deg
    )
    lab_recordings = record_directions(
        testbed, lab_environment(3.0), lab_azimuths, lab_elevations, config.n_sweeps, rng
    )
    lab_series = _evaluate_environment(
        testbed, estimator, lab_recordings, config, rng, "lab"
    )

    conference_azimuths = np.arange(
        -60.0, 60.0 + 1e-9, config.conference_azimuth_step_deg
    )
    conference_recordings = record_directions(
        testbed, conference_room(6.0), conference_azimuths, [0.0], config.n_sweeps, rng
    )
    conference_series = _evaluate_environment(
        testbed, estimator, conference_recordings, config, rng, "conference-room"
    )
    return Fig7Result(lab=lab_series, conference=conference_series)
