"""Extension experiment: blockage recovery with fast re-training.

Not a paper figure — this quantifies the §7 argument that a 2.3×
shorter sweep lets nodes re-train more often.  A person walks through
the LOS of a 6 m conference-room link; during the outage the link must
fall back to a reflected path.  We compare how much SNR each strategy
delivers over the blockage timeline when re-training is only allowed
every ``k`` intervals (the training budget a dense network imposes):

* **SSW** re-trains every 2nd interval (its sweeps cost 1.27 ms);
* **CSS-14** re-trains every interval at the *same* airtime budget
  (0.55 ms per sweep — the speed-up converted into agility);
* **CSS adaptive + standby** re-trains every interval with the §7
  controller (10–34 probes: cheap while the link is healthy, full
  coverage while estimates fail under deep blockage) and additionally
  switches to a precomputed backup-path sector the moment the primary
  collapses, without waiting for the next training slot.

The deep-blockage phase is where exhaustive coverage genuinely helps —
with every frontal sector crushed by 22 dB only a handful of
reflection-pointing sectors remain decodable, and 14 random probes may
miss them all.  The adaptive variant turns that observation into the
recovery mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..channel.batch import sweep_snr_matrix
from ..channel.blockage import HumanBlocker
from ..channel.environment import conference_room
from ..core.adaptive import AdaptiveProbeController
from ..core.compressive import CompressiveSectorSelector
from ..core.measurements import ProbeMeasurement
from ..core.paths import MultipathSelector
from ..core.probes import RandomProbeStrategy
from ..core.selector import SectorSweepSelector
from ..geometry.rotation import Orientation
from ..mac.timing import mutual_training_time_us
from .common import Testbed, build_testbed

__all__ = ["BlockageConfig", "BlockageResult", "run_blockage_recovery"]


@dataclass(frozen=True)
class BlockageConfig:
    seed: int = 13
    n_intervals: int = 40
    blocked_from: int = 12
    blocked_until: int = 28
    blocker_y_m: float = 0.0
    n_probes: int = 14
    #: Below this best-probe SNR the sweep is "anomalous": the measured
    #: patterns cannot be trusted and the raw argmax takes over.
    anomaly_threshold_db: float = 3.0


@dataclass
class BlockageResult:
    timeline: Dict[str, List[float]]
    blocked_from: int
    blocked_until: int
    airtime_us: Dict[str, float]

    def mean_snr_during_blockage(self, strategy: str) -> float:
        series = self.timeline[strategy]
        return float(np.mean(series[self.blocked_from : self.blocked_until]))

    def mean_snr_clear(self, strategy: str) -> float:
        series = self.timeline[strategy]
        clear = series[: self.blocked_from] + series[self.blocked_until :]
        return float(np.mean(clear))

    def format_rows(self) -> List[str]:
        rows = [
            "blockage recovery (extension): mean sweep SNR [dB]",
            f"blockage spans intervals {self.blocked_from}..{self.blocked_until - 1}",
            "strategy                | clear  | blocked | train airtime [ms]",
        ]
        for strategy in self.timeline:
            rows.append(
                f"{strategy:23s} | {self.mean_snr_clear(strategy):6.2f} | "
                f"{self.mean_snr_during_blockage(strategy):7.2f} | "
                f"{self.airtime_us[strategy] / 1000.0:8.2f}"
            )
        return rows


def _observe_sweep(
    testbed: Testbed,
    truth: np.ndarray,
    sector_ids: List[int],
    rng: np.random.Generator,
) -> List[ProbeMeasurement]:
    tx_ids = testbed.tx_sector_ids
    measurements = []
    for sector_id in sector_ids:
        observation = testbed.measurement_model.observe(
            truth[tx_ids.index(sector_id)], testbed.budget.noise_floor_dbm, rng
        )
        if observation is not None:
            measurements.append(
                ProbeMeasurement(sector_id, observation.snr_db, observation.rssi_dbm)
            )
    return measurements


def run_blockage_recovery(config: BlockageConfig = BlockageConfig()) -> BlockageResult:
    """Run the blockage timeline for the three strategies."""
    testbed = build_testbed()
    rng = np.random.default_rng(config.seed)
    tx_ids = testbed.tx_sector_ids
    orientation = Orientation()

    clear_env = conference_room(6.0)
    blocker = HumanBlocker(position_m=np.array([3.0, config.blocker_y_m, 0.0]))
    blocked_env = clear_env.with_blockers([blocker])

    def truth_for(environment) -> np.ndarray:
        return sweep_snr_matrix(
            environment,
            testbed.dut_antenna,
            testbed.dut_codebook,
            tx_ids,
            [orientation],
            testbed.ref_antenna,
            testbed.ref_codebook.rx_sector.weights,
            budget=testbed.budget,
        )[0]

    truth_clear = truth_for(clear_env)
    truth_blocked = truth_for(blocked_env)

    strategy = RandomProbeStrategy()
    ssw = SectorSweepSelector()
    css = CompressiveSectorSelector(testbed.pattern_table)
    adaptive = AdaptiveProbeController(
        min_probes=10, max_probes=34, motion_threshold_deg=6.0
    )
    adaptive_css = CompressiveSectorSelector(testbed.pattern_table)
    multipath = MultipathSelector(testbed.pattern_table)

    timeline: Dict[str, List[float]] = {
        "SSW (every 2nd)": [],
        "CSS-14 (every)": [],
        "CSS adaptive + standby": [],
    }
    airtime_us: Dict[str, float] = {name: 0.0 for name in timeline}
    ssw_sector = tx_ids[0]
    css_sector = tx_ids[0]
    standby_backup: Optional[int] = None
    standby_active = tx_ids[0]

    for interval in range(config.n_intervals):
        blocked = config.blocked_from <= interval < config.blocked_until
        truth = truth_blocked if blocked else truth_clear

        # SSW: full sweep, but only every other interval (airtime).
        if interval % 2 == 0:
            measurements = _observe_sweep(testbed, truth, tx_ids, rng)
            ssw_sector = ssw.select(measurements).sector_id
            airtime_us["SSW (every 2nd)"] += mutual_training_time_us(len(tx_ids))
        timeline["SSW (every 2nd)"].append(float(truth[tx_ids.index(ssw_sector)]))

        # CSS: reduced sweep every interval at the same airtime budget.
        probe_ids = strategy.choose(config.n_probes, tx_ids, rng)
        measurements = _observe_sweep(testbed, truth, probe_ids, rng)
        css_sector = css.select(measurements).sector_id
        airtime_us["CSS-14 (every)"] += mutual_training_time_us(config.n_probes)
        timeline["CSS-14 (every)"].append(float(truth[tx_ids.index(css_sector)]))

        # CSS adaptive + standby: §7 budget control plus fast fallback.
        budget = min(adaptive.n_probes, len(tx_ids))
        probe_ids = strategy.choose(budget, tx_ids, rng)
        measurements = _observe_sweep(testbed, truth, probe_ids, rng)
        airtime_us["CSS adaptive + standby"] += mutual_training_time_us(budget)
        selection = adaptive_css.select(measurements)
        adaptive.update(selection.estimate)
        paths = multipath.select_paths(measurements, n_paths=2)
        anomalous = (
            not measurements
            or max(m.snr_db for m in measurements) < config.anomaly_threshold_db
        )
        if anomalous and measurements:
            # The whole sweep is crushed: the chamber patterns no longer
            # describe the channel, so trust the raw argmax (and keep
            # the probe budget wide via the failed-estimate signal).
            standby_active = max(measurements, key=lambda m: m.snr_db).sector_id
            standby_backup = None
            adaptive.update(None)
        elif selection.estimate is not None:
            standby_active = selection.sector_id
            standby_backup = paths[1][1] if len(paths) > 1 else None
        primary_snr = truth[tx_ids.index(standby_active)]
        if standby_backup is not None:
            backup_snr = truth[tx_ids.index(standby_backup)]
            # Mid-interval collapse detection: switch if the primary
            # dropped to the decode floor but the standby still works.
            if primary_snr < -5.0 and backup_snr > primary_snr + 3.0:
                standby_active = standby_backup
                primary_snr = backup_snr
        timeline["CSS adaptive + standby"].append(float(primary_snr))

    return BlockageResult(
        timeline=timeline,
        blocked_from=config.blocked_from,
        blocked_until=config.blocked_until,
        airtime_us=airtime_us,
    )
