"""Ray representation for the geometric 60 GHz channel.

At mm-wave frequencies the channel is sparse: a LOS ray plus a handful
of specular reflections carry essentially all the energy.  A
:class:`Ray` stores world-frame departure/arrival directions, the total
path length and any extra (reflection) loss; the link simulator turns
rays into complex amplitudes given the endpoint antenna patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..geometry.spherical import vector_to_angles

__all__ = ["Ray"]


@dataclass(frozen=True)
class Ray:
    """One propagation path between the transmitter and the receiver.

    Attributes:
        departure_azimuth_deg / departure_elevation_deg: direction the
            ray leaves the transmitter, in the **world** frame.
        arrival_azimuth_deg / arrival_elevation_deg: direction from the
            receiver toward the incoming ray, in the **world** frame.
        path_length_m: total geometric length of the path.
        extra_loss_db: losses beyond free space (reflection loss, ...).
        is_los: marks the direct line-of-sight path.
    """

    departure_azimuth_deg: float
    departure_elevation_deg: float
    arrival_azimuth_deg: float
    arrival_elevation_deg: float
    path_length_m: float
    extra_loss_db: float = 0.0
    is_los: bool = True

    def __post_init__(self) -> None:
        if self.path_length_m <= 0:
            raise ValueError("path length must be positive")
        if self.extra_loss_db < 0:
            raise ValueError("extra loss cannot be negative")

    @classmethod
    def from_points(
        cls,
        tx_position_m: np.ndarray,
        rx_position_m: np.ndarray,
        via_point_m: np.ndarray = None,
        extra_loss_db: float = 0.0,
    ) -> "Ray":
        """Build a ray from endpoint positions (optionally via a bounce).

        Args:
            tx_position_m / rx_position_m: endpoints in the world frame.
            via_point_m: single specular bounce point, or ``None`` for
                the direct path.
            extra_loss_db: reflection loss for bounced rays.
        """
        tx = np.asarray(tx_position_m, dtype=float)
        rx = np.asarray(rx_position_m, dtype=float)
        if via_point_m is None:
            departure = rx - tx
            arrival = tx - rx
            length = float(np.linalg.norm(departure))
            is_los = True
        else:
            via = np.asarray(via_point_m, dtype=float)
            departure = via - tx
            arrival = via - rx
            length = float(np.linalg.norm(departure) + np.linalg.norm(rx - via))
            is_los = False
        departure_az, departure_el = vector_to_angles(departure)
        arrival_az, arrival_el = vector_to_angles(arrival)
        return cls(
            departure_azimuth_deg=departure_az,
            departure_elevation_deg=departure_el,
            arrival_azimuth_deg=arrival_az,
            arrival_elevation_deg=arrival_el,
            path_length_m=length,
            extra_loss_db=extra_loss_db,
            is_los=is_los,
        )

    def departure_direction(self) -> Tuple[float, float]:
        return (self.departure_azimuth_deg, self.departure_elevation_deg)

    def arrival_direction(self) -> Tuple[float, float]:
        return (self.arrival_azimuth_deg, self.arrival_elevation_deg)
