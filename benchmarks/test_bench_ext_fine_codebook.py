"""Bench (extension): more sectors without more probes (§7).

Expected shape: sweeping a 63-sector codebook costs 2.32 ms per mutual
training (the §7 scaling problem); compressive selection probes only
the codebook's 12 broad probing sectors (0.48 ms) yet selects among
all 63 narrow beams, landing within ~1 dB of the full fine sweep —
"more precise beam patterns efficiently selected without additional
training time overhead".
"""

import pytest

from repro.experiments.fine import FineCodebookConfig, run_fine_codebook


def test_fine_codebook_scaling(benchmark, report_rows):
    config = FineCodebookConfig(n_probes=12)
    result = benchmark.pedantic(lambda: run_fine_codebook(config), rounds=1, iterations=1)
    report_rows(result.format_rows())

    css_label = "fine + CSS (12 probes)"
    fine_label = "fine + SSW (63 probes)"
    stock_label = "stock + SSW (34 probes)"

    # Timing arithmetic is exact.
    assert result.training_time_ms[fine_label] == pytest.approx(2.317, abs=0.01)
    assert result.training_time_ms[css_label] == pytest.approx(0.481, abs=0.01)

    # CSS keeps the selection quality of the much longer sweeps.
    assert (
        result.mean_snr_db[css_label] > result.mean_snr_db[fine_label] - 1.2
    )
    assert (
        result.mean_snr_db[css_label] > result.mean_snr_db[stock_label] - 1.2
    )

    # ... at >4x less training airtime than the fine sweep.
    speedup = result.training_time_ms[fine_label] / result.training_time_ms[css_label]
    assert speedup > 4.0
