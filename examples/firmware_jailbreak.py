#!/usr/bin/env python3
"""Turn a stock router into a research platform (paper §3).

Demonstrates the firmware work the paper had to do before any algorithm
could run on the Talon AD7200:

* the QCA9500's memory layout (Figure 1): code partitions are
  write-protected at low addresses but writable through the high remap;
* installing Nexmon-style patches into the patch areas;
* draining per-sector SNR/RSSI reports from the ring buffer (§3.3);
* overriding the sector carried in SSW feedback via WMI (§3.4).

Run:  python examples/firmware_jailbreak.py
"""

import numpy as np

from repro.channel import lab_environment
from repro.firmware import MemoryProtectionError, WmiError, WmiDrainSweepReports
from repro.geometry import Orientation
from repro.mac import Station, SweepSession
from repro.phased_array import PhasedArray


def main() -> None:
    rng = np.random.default_rng(3)
    environment = lab_environment(3.0)
    router = Station(
        "talon", 1, PhasedArray.talon(np.random.default_rng(1)),
        position_m=environment.tx_position_m,
    )
    peer = Station(
        "peer", 2, PhasedArray.talon(np.random.default_rng(2)),
        position_m=environment.rx_position_m,
        orientation=Orientation(yaw_deg=180.0),
    )

    # --- The chip is a black box before jailbreaking. ------------------
    chip = router.chip
    print(f"firmware version: {chip.firmware_version}")
    print("memory regions:")
    for region in chip.memory.regions:
        print(f"  {region.name:14s} low 0x{region.low_start:06x}-0x{region.low_end:06x} "
              f"-> high 0x{region.high_start:06x} "
              f"({'write-protected' if region.is_code else 'writable'} at low)")

    try:
        chip.memory.write(0x000100, b"\x90\x90")
    except MemoryProtectionError as error:
        print(f"low-address code write rejected: {error}")
    high = chip.memory.region_by_name("ucode-code").high_start + 0x100
    chip.memory.write(high, b"\x90\x90")
    print(f"same bytes written through the high remap at 0x{high:06x}: "
          f"{chip.memory.read(0x000100, 2).hex()} now visible at the low alias")

    try:
        chip.handle_wmi(WmiDrainSweepReports())
    except WmiError as error:
        print(f"stock firmware rejects the custom WMI command: {error}")

    # --- Jailbreak: install both patches. ------------------------------
    framework = router.jailbreak()
    print(f"\ninstalled patches: {framework.installed_patches}")
    for name in framework.installed_patches:
        print(f"  {name} at 0x{framework.patch_address(name):06x}")

    # --- Run a sweep; now the reports are host-visible. ----------------
    session = SweepSession(router, peer, environment)
    result = session.run(rng)
    reports = router.drain_sweep_reports()
    print(f"\nsweep finished in {result.duration_us / 1000:.2f} ms; "
          f"{len(reports)} reports drained from the ring buffer:")
    for report in reports[:6]:
        print(f"  sector {report.sector_id:2d} cdown {report.cdown:2d} "
              f"snr {report.snr_db:6.2f} dB rssi {report.rssi_dbm:6.1f} dBm")
    print("  ...")

    # --- Override the feedback sector from user space. -----------------
    router.arm_sector_override(7)
    override_result = session.run(rng)
    print(f"\nwith override armed, the peer was told to use sector "
          f"{override_result.responder_tx_sector} (host forced 7)")
    router.clear_sector_override()


if __name__ == "__main__":
    main()
