"""Rigid rotations for device orientation.

The measurement campaign mounts a router on a rotation head that yaws
in azimuth (micro-stepped) and is manually pitched in elevation.  An
:class:`Orientation` captures such a pose and converts directions
between the world frame and the rotated device frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .spherical import direction_vector, vector_to_angles

__all__ = ["rotation_matrix_z", "rotation_matrix_y", "Orientation"]


def rotation_matrix_z(angle_deg: float) -> np.ndarray:
    """Right-handed rotation about +z (yaw / azimuth) by ``angle_deg``."""
    angle = np.deg2rad(angle_deg)
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def rotation_matrix_y(angle_deg: float) -> np.ndarray:
    """Rotation about +y such that positive angles pitch boresight *up*.

    With the device-frame convention (+x boresight, +z up), pitching the
    boresight up by ``angle_deg`` maps ``+x`` to
    ``[cos(angle), 0, sin(angle)]``.
    """
    angle = np.deg2rad(angle_deg)
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, 0.0, -s], [0.0, 1.0, 0.0], [s, 0.0, c]])


@dataclass(frozen=True)
class Orientation:
    """Device pose given as yaw-then-pitch of the boresight.

    The device frame is obtained from the world frame by first yawing by
    :attr:`yaw_deg` about world +z, then pitching the boresight up by
    :attr:`pitch_deg` about the (rotated) +y axis.
    """

    yaw_deg: float = 0.0
    pitch_deg: float = 0.0

    @property
    def matrix(self) -> np.ndarray:
        """3×3 matrix mapping device-frame vectors to world-frame vectors."""
        return rotation_matrix_z(self.yaw_deg) @ rotation_matrix_y(self.pitch_deg)

    def device_to_world(self, vector: np.ndarray) -> np.ndarray:
        """Rotate device-frame vector(s) into the world frame."""
        return np.asarray(vector, dtype=float) @ self.matrix.T

    def world_to_device(self, vector: np.ndarray) -> np.ndarray:
        """Rotate world-frame vector(s) into the device frame."""
        return np.asarray(vector, dtype=float) @ self.matrix

    def world_direction_in_device_frame(
        self, azimuth_deg: float, elevation_deg: float
    ) -> Tuple[float, float]:
        """Express a world-frame direction as device-frame angles."""
        world_vec = direction_vector(azimuth_deg, elevation_deg)
        return vector_to_angles(self.world_to_device(world_vec))

    def device_direction_in_world_frame(
        self, azimuth_deg: float, elevation_deg: float
    ) -> Tuple[float, float]:
        """Express a device-frame direction as world-frame angles."""
        device_vec = direction_vector(azimuth_deg, elevation_deg)
        return vector_to_angles(self.device_to_world(device_vec))

    @property
    def boresight_world(self) -> np.ndarray:
        """World-frame unit vector of the antenna boresight."""
        return self.device_to_world(np.array([1.0, 0.0, 0.0]))
