"""Unit tests for the link simulator and the batch SNR kernel."""

import numpy as np
import pytest

from repro.channel import (
    LinkBudget,
    LinkSimulator,
    anechoic_chamber,
    conference_room,
    lab_environment,
)
from repro.channel.batch import sweep_snr_matrix
from repro.channel.pathloss import path_loss_db
from repro.geometry import Orientation


class TestLinkBudget:
    def test_noise_floor(self):
        budget = LinkBudget(noise_figure_db=10.0, bandwidth_hz=1.76e9)
        assert budget.noise_floor_dbm == pytest.approx(-71.5, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkBudget(bandwidth_hz=0.0)


class TestLinkSimulator:
    def test_chamber_matches_friis(self, antenna, codebook):
        """Single-ray chamber power must equal the Friis budget exactly."""
        budget = LinkBudget()
        chamber = anechoic_chamber(3.0)
        simulator = LinkSimulator(chamber, antenna, antenna, budget)
        weights = codebook[63].weights
        rx_weights = codebook.rx_sector.weights
        power = simulator.received_power_dbm(weights, rx_weights)
        expected = (
            budget.tx_power_dbm
            + antenna.gain_db(weights, 0.0, 0.0)
            + antenna.gain_db(rx_weights, 0.0, 0.0)
            - path_loss_db(3.0)
        )
        assert power == pytest.approx(expected, abs=1e-6)

    def test_true_snr_is_power_minus_noise(self, antenna, codebook):
        budget = LinkBudget()
        simulator = LinkSimulator(anechoic_chamber(3.0), antenna, antenna, budget)
        weights = codebook[63].weights
        rx = codebook.rx_sector.weights
        snr = simulator.true_snr_db(weights, rx)
        power = simulator.received_power_dbm(weights, rx)
        assert snr == pytest.approx(power - budget.noise_floor_dbm)

    def test_rotating_tx_changes_power(self, antenna, codebook):
        simulator = LinkSimulator(anechoic_chamber(3.0), antenna, antenna)
        weights = codebook[63].weights
        rx = codebook.rx_sector.weights
        aligned = simulator.received_power_dbm(weights, rx)
        rotated = simulator.received_power_dbm(
            weights, rx, tx_orientation=Orientation(yaw_deg=60.0)
        )
        assert aligned > rotated

    def test_multipath_differs_from_los_only(self, antenna, codebook):
        weights = codebook[63].weights
        rx = codebook.rx_sector.weights
        chamber = LinkSimulator(anechoic_chamber(6.0), antenna, antenna)
        room = LinkSimulator(conference_room(6.0), antenna, antenna)
        assert chamber.received_power_dbm(weights, rx) != pytest.approx(
            room.received_power_dbm(weights, rx), abs=1e-6
        )

    def test_shadowing_sampling(self, antenna, rng):
        simulator = LinkSimulator(conference_room(6.0), antenna, antenna)
        shadowing = simulator.sample_shadowing_db(rng)
        assert shadowing.shape == (len(simulator.rays),)
        assert simulator.sample_shadowing_db(None).sum() == 0.0

    def test_chamber_shadowing_is_zero(self, antenna, rng):
        simulator = LinkSimulator(anechoic_chamber(3.0), antenna, antenna)
        np.testing.assert_allclose(simulator.sample_shadowing_db(rng), 0.0)

    def test_shadowing_shape_checked(self, antenna, codebook):
        simulator = LinkSimulator(conference_room(6.0), antenna, antenna)
        with pytest.raises(ValueError):
            simulator.received_power_dbm(
                codebook[63].weights,
                codebook.rx_sector.weights,
                shadowing_db=np.zeros(99),
            )

    def test_custom_endpoints(self, antenna, codebook):
        room = conference_room(6.0)
        simulator = LinkSimulator(
            room,
            antenna,
            antenna,
            tx_position_m=room.rx_position_m,
            rx_position_m=room.tx_position_m,
        )
        # Reverse-direction link exists and produces finite power.
        power = simulator.received_power_dbm(
            codebook[63].weights,
            codebook.rx_sector.weights,
            tx_orientation=Orientation(yaw_deg=180.0),
            rx_orientation=Orientation(),
        )
        assert np.isfinite(power)


class TestBatchKernel:
    def test_matches_link_simulator(self, testbed):
        """The vectorized kernel must agree with the per-call simulator."""
        environment = conference_room(6.0)
        orientations = [Orientation(yaw_deg=-20.0), Orientation(yaw_deg=35.0, pitch_deg=-10.0)]
        sector_ids = [63, 2, 25]
        matrix = sweep_snr_matrix(
            environment,
            testbed.dut_antenna,
            testbed.dut_codebook,
            sector_ids,
            orientations,
            testbed.ref_antenna,
            testbed.ref_codebook.rx_sector.weights,
            budget=testbed.budget,
        )
        assert matrix.shape == (2, 3)
        simulator = LinkSimulator(
            environment, testbed.dut_antenna, testbed.ref_antenna, testbed.budget
        )
        for row, orientation in enumerate(orientations):
            for column, sector_id in enumerate(sector_ids):
                expected = simulator.true_snr_db(
                    testbed.dut_codebook[sector_id].weights,
                    testbed.ref_codebook.rx_sector.weights,
                    tx_orientation=orientation,
                )
                assert matrix[row, column] == pytest.approx(expected, abs=1e-6)

    def test_shadowing_shape_validated(self, testbed):
        with pytest.raises(ValueError):
            sweep_snr_matrix(
                anechoic_chamber(3.0),
                testbed.dut_antenna,
                testbed.dut_codebook,
                [63],
                [Orientation()],
                testbed.ref_antenna,
                testbed.ref_codebook.rx_sector.weights,
                shadowing_db=np.zeros((2, 5)),
            )

    def test_shadowing_shifts_snr(self, testbed):
        chamber = anechoic_chamber(3.0)
        args = (
            chamber,
            testbed.dut_antenna,
            testbed.dut_codebook,
            [63],
            [Orientation()],
            testbed.ref_antenna,
            testbed.ref_codebook.rx_sector.weights,
        )
        base = sweep_snr_matrix(*args, budget=testbed.budget)
        faded = sweep_snr_matrix(
            *args, budget=testbed.budget, shadowing_db=np.full((1, 1), 3.0)
        )
        assert base[0, 0] - faded[0, 0] == pytest.approx(3.0, abs=1e-9)
