"""Bench: regenerate Figure 8 (selection stability vs. probes).

Paper shape: the exhaustive sweep is stuck at ~0.74 stability (its
argmax keeps flipping between near-equal sectors under measurement
outliers); compressive selection rises with the probe count, crosses
the sweep in the mid-teens of probes, and clearly exceeds it at full
probing (paper: 0.947 vs 0.739).
"""

from repro.experiments import Fig8Config, run_fig8


def test_fig8_selection_stability(benchmark, report_rows):
    config = Fig8Config(
        probe_counts=tuple(range(4, 35, 2)), azimuth_step_deg=5.0, n_sweeps=30
    )
    result = benchmark.pedantic(lambda: run_fig8(config), rounds=1, iterations=1)
    report_rows(result.format_rows())

    # SSW stability sits well below 1 (the paper's 0.739 regime).
    assert 0.55 < result.ssw_stability < 0.92

    # CSS stability grows with the probe count.
    assert result.css_at(34) > result.css_at(14) > result.css_at(6)

    # CSS overtakes the sweep somewhere in the probe range and is
    # clearly more stable at full probing.
    crossover = result.crossover_probes()
    assert crossover < 34
    assert result.css_at(34) > result.ssw_stability + 0.02
