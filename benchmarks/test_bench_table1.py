"""Bench: regenerate Table 1 (beacon/sweep sector schedules).

Deploys an AP/client pair with a monitor-mode station and captures the
(CDOWN, sector ID) mapping of beacon and SSW bursts, which must match
the published schedule exactly.
"""

from repro.experiments import Table1Config, run_table1


def test_table1_schedule_capture(benchmark, report_rows):
    result = benchmark.pedantic(
        lambda: run_table1(Table1Config()), rounds=1, iterations=1
    )
    report_rows(result.format_rows())

    # Shape assertions: every captured slot agrees with Table 1, and
    # aggregation over poses confirms (nearly) every slot.
    assert result.beacon_consistent
    assert result.sweep_consistent
    assert result.beacon_coverage() == 1.0
    assert result.sweep_coverage() == 1.0
