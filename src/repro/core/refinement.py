"""Beam refinement (BRP-style) on top of sector selection.

IEEE 802.11ad follows the coarse sector-level sweep with a Beam
Refinement Phase that fine-tunes the antenna weight vector (AWV)
around the chosen sector.  The paper stops at sector granularity; this
module adds the next stage: a greedy hill-climb over hardware-feasible
AWVs (2-bit phase steps on random element subsets), driven purely by
the same noisy SNR feedback a receiver can report.  Typical yield on
the perturbed vendor sectors is an extra 1–2 dB for a few dozen
refinement frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..phased_array.weights import WeightVector, quantize_phase

__all__ = ["RefinementStep", "RefinementResult", "BeamRefiner"]

#: One BRP TRN subfield is on the order of a few microseconds on air.
TRN_UNIT_TIME_US = 4.0


@dataclass(frozen=True)
class RefinementStep:
    """One accepted improvement during the hill-climb."""

    iteration: int
    snr_db: float


@dataclass
class RefinementResult:
    """Outcome of a refinement run."""

    weights: WeightVector
    initial_snr_db: float
    final_snr_db: float
    frames_spent: int
    accepted_steps: List[RefinementStep] = field(default_factory=list)

    @property
    def improvement_db(self) -> float:
        return self.final_snr_db - self.initial_snr_db

    @property
    def airtime_us(self) -> float:
        return self.frames_spent * TRN_UNIT_TIME_US


class BeamRefiner:
    """Greedy 2-bit AWV hill-climbing from noisy SNR feedback."""

    def __init__(
        self,
        phase_bits: int = 2,
        candidates_per_iteration: int = 4,
        elements_per_candidate: int = 4,
        acceptance_margin_db: float = 0.3,
    ):
        """
        Args:
            phase_bits: phase-shifter resolution (2 on the QCA9500).
            candidates_per_iteration: perturbed AWVs tried per round.
            elements_per_candidate: elements whose phase each candidate
                tweaks by one quantization step.
            acceptance_margin_db: a candidate must beat the incumbent
                by this margin — noise rejection, without it the climb
                random-walks on measurement noise.
        """
        if phase_bits < 1:
            raise ValueError("phase_bits must be >= 1")
        if candidates_per_iteration < 1 or elements_per_candidate < 1:
            raise ValueError("need at least one candidate and one element")
        if acceptance_margin_db < 0:
            raise ValueError("acceptance margin cannot be negative")
        self.phase_bits = phase_bits
        self.candidates_per_iteration = candidates_per_iteration
        self.elements_per_candidate = elements_per_candidate
        self.acceptance_margin_db = acceptance_margin_db

    def _perturb(self, weights: WeightVector, rng: np.random.Generator) -> WeightVector:
        """Tweak a few active elements by one phase step (feasible AWV)."""
        step = 2.0 * np.pi / (2**self.phase_bits)
        values = weights.weights.copy()
        active = np.flatnonzero(weights.active_elements)
        if active.size == 0:
            raise ValueError("cannot refine an all-off weight vector")
        count = min(self.elements_per_candidate, active.size)
        chosen = rng.choice(active, size=count, replace=False)
        signs = rng.choice([-1.0, 1.0], size=count)
        values[chosen] = values[chosen] * np.exp(1j * signs * step)
        # Keep phases on the quantizer constellation.
        amplitudes = np.abs(values)
        phases = quantize_phase(np.angle(values), self.phase_bits)
        return WeightVector(amplitudes * np.exp(1j * phases))

    def refine(
        self,
        weights: WeightVector,
        measure_snr_db: Callable[[WeightVector], float],
        rng: np.random.Generator,
        n_iterations: int = 10,
    ) -> RefinementResult:
        """Hill-climb from ``weights`` using SNR feedback.

        Args:
            measure_snr_db: callable evaluating a candidate AWV on the
                live link (one BRP TRN exchange per call; may be noisy).
            n_iterations: refinement rounds.
        """
        if n_iterations < 1:
            raise ValueError("need at least one iteration")
        incumbent = weights
        incumbent_snr = float(measure_snr_db(incumbent))
        result = RefinementResult(
            weights=incumbent,
            initial_snr_db=incumbent_snr,
            final_snr_db=incumbent_snr,
            frames_spent=1,
        )
        for iteration in range(n_iterations):
            best_candidate: Optional[WeightVector] = None
            best_snr = incumbent_snr
            for _ in range(self.candidates_per_iteration):
                candidate = self._perturb(incumbent, rng)
                snr = float(measure_snr_db(candidate))
                result.frames_spent += 1
                if snr > best_snr + self.acceptance_margin_db:
                    best_candidate = candidate
                    best_snr = snr
            if best_candidate is not None:
                incumbent = best_candidate
                incumbent_snr = best_snr
                result.accepted_steps.append(
                    RefinementStep(iteration=iteration, snr_db=best_snr)
                )
        result.weights = incumbent
        result.final_snr_db = incumbent_snr
        return result
