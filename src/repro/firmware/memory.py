"""QCA9500 memory layout (paper Figure 1).

The Wi-Fi chip runs two ARC600 processors — the *ucode* core for
real-time operations and the *firmware* core for the rest of the MAC.
Each has a write-protected code partition and a writable data partition
at low addresses.  All four regions are additionally remapped into high
addresses where they are writable and host-accessible; this is the
quirk the paper exploits to install patches that merge code and data.

The concrete map modelled here::

    low (as seen by cores)           high (writable remap)
    0x000000..0x020000  ucode code   0x920000..0x940000
    0x020000..0x024000  ucode data   0x940000..0x944000
    0x040000..0x080000  fw    code   0x8c0000..0x900000
    0x080000..0x088000  fw    data   0x900000..0x908000

    patch areas (inside the high code remaps):
    ucode patch  0x936000..0x940000
    fw    patch  0x8f5000..0x900000
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["MemoryProtectionError", "MemoryRegion", "QCA9500MemoryMap"]


class MemoryProtectionError(Exception):
    """Raised when writing to a write-protected (low code) address."""


@dataclass(frozen=True)
class MemoryRegion:
    """One mapped window of chip memory.

    Attributes:
        name: descriptive region name.
        low_start: base address as seen by the owning processor.
        high_start: writable high-address remap base.
        size: region size in bytes.
        is_code: code partitions are write-protected at low addresses.
        processor: ``"ucode"`` or ``"firmware"``.
    """

    name: str
    low_start: int
    high_start: int
    size: int
    is_code: bool
    processor: str

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("region size must be positive")
        if self.processor not in ("ucode", "firmware"):
            raise ValueError("processor must be 'ucode' or 'firmware'")

    @property
    def low_end(self) -> int:
        return self.low_start + self.size

    @property
    def high_end(self) -> int:
        return self.high_start + self.size

    def contains_low(self, address: int) -> bool:
        return self.low_start <= address < self.low_end

    def contains_high(self, address: int) -> bool:
        return self.high_start <= address < self.high_end


#: Patch areas carved out of the top of each code region (high remap).
PATCH_AREAS = {
    "ucode": (0x936000, 0x940000),
    "firmware": (0x8F5000, 0x900000),
}


class QCA9500MemoryMap:
    """Byte-accurate model of the chip's four memory regions."""

    def __init__(self) -> None:
        self._regions: List[MemoryRegion] = [
            MemoryRegion("ucode-code", 0x000000, 0x920000, 0x20000, True, "ucode"),
            MemoryRegion("ucode-data", 0x020000, 0x940000, 0x4000, False, "ucode"),
            MemoryRegion("firmware-code", 0x040000, 0x8C0000, 0x40000, True, "firmware"),
            MemoryRegion("firmware-data", 0x080000, 0x900000, 0x8000, False, "firmware"),
        ]
        self._storage: Dict[str, bytearray] = {
            region.name: bytearray(region.size) for region in self._regions
        }

    @property
    def regions(self) -> List[MemoryRegion]:
        return list(self._regions)

    def region_by_name(self, name: str) -> MemoryRegion:
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(f"unknown region {name!r}")

    def _locate(self, address: int) -> Optional[tuple]:
        """Find ``(region, offset, via_high_alias)`` for an address."""
        for region in self._regions:
            if region.contains_low(address):
                return region, address - region.low_start, False
            if region.contains_high(address):
                return region, address - region.high_start, True
        return None

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes from any mapped address (low or high)."""
        located = self._locate(address)
        if located is None:
            raise ValueError(f"unmapped address 0x{address:06x}")
        region, offset, _ = located
        if offset + length > region.size:
            raise ValueError("read crosses a region boundary")
        return bytes(self._storage[region.name][offset : offset + length])

    def write(self, address: int, data: bytes) -> None:
        """Write bytes; low-address code regions are write-protected.

        Both aliases reach the *same* storage, so a write through the
        high remap is immediately visible through the low alias — this
        is exactly how firmware patches take effect.
        """
        located = self._locate(address)
        if located is None:
            raise ValueError(f"unmapped address 0x{address:06x}")
        region, offset, via_high = located
        if region.is_code and not via_high:
            raise MemoryProtectionError(
                f"low-address write to code region {region.name} at 0x{address:06x}"
            )
        if offset + len(data) > region.size:
            raise ValueError("write crosses a region boundary")
        self._storage[region.name][offset : offset + len(data)] = data

    def patch_area(self, processor: str) -> tuple:
        """``(start, end)`` high addresses of a core's patch area."""
        if processor not in PATCH_AREAS:
            raise ValueError("processor must be 'ucode' or 'firmware'")
        return PATCH_AREAS[processor]

    def patch_area_free_bytes(self, processor: str, used: int) -> int:
        start, end = self.patch_area(processor)
        return (end - start) - used
