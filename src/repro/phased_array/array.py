"""The phased array itself: weights × geometry × imperfections → gain.

:class:`PhasedArray` evaluates the far-field power gain of a weight
vector in arbitrary directions, including the per-element directivity,
the device-specific element errors and the chassis blockage.  This is
the ground-truth radiation model that both the simulated firmware and
the simulated measurement campaign observe through noisy channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from .elements import ElementLayout, talon_layout
from .impairments import HardwareImpairments
from .steering import steering_matrix
from .weights import WeightVector

ArrayLike = Union[float, np.ndarray]

__all__ = ["PhasedArray"]

#: Residual power that leaks behind the array plane, relative to an
#: isotropic element (linear).  Keeps rear-hemisphere gains finite.
_BACK_LEAKAGE_LINEAR = 10.0 ** (-18.0 / 10.0)


@dataclass(frozen=True)
class PhasedArray:
    """A planar phased array with low-cost-hardware imperfections.

    Attributes:
        layout: element geometry.
        impairments: static per-element and chassis imperfections.
        element_exponent: exponent ``q`` of the ``cos(ψ)**q`` element
            power pattern (ψ = angle off boresight).
        element_peak_gain_db: boresight gain of a single element.
    """

    layout: ElementLayout
    impairments: HardwareImpairments
    element_exponent: float = 1.5
    element_peak_gain_db: float = 3.0

    def __post_init__(self) -> None:
        if self.impairments.n_elements != self.layout.n_elements:
            raise ValueError(
                "impairments cover "
                f"{self.impairments.n_elements} elements but the layout has "
                f"{self.layout.n_elements}"
            )
        if self.element_exponent < 0:
            raise ValueError("element exponent must be non-negative")

    @classmethod
    def talon(
        cls,
        rng: np.random.Generator = None,
        ideal: bool = False,
    ) -> "PhasedArray":
        """A Talon-AD7200-like 32-element array.

        Args:
            rng: generator for the device-specific imperfections; a
                fixed default seed is used when omitted so that "the
                device on the rotation head" is reproducible.
            ideal: build a perfect front-end instead (for ablations).
        """
        layout = talon_layout()
        if ideal:
            impairments = HardwareImpairments.ideal(layout.n_elements)
        else:
            if rng is None:
                rng = np.random.default_rng(0xAD7200)
            impairments = HardwareImpairments.sample(layout.n_elements, rng)
        return cls(layout=layout, impairments=impairments)

    @property
    def n_elements(self) -> int:
        return self.layout.n_elements

    def element_power_pattern(
        self, azimuth_deg: ArrayLike, elevation_deg: ArrayLike
    ) -> np.ndarray:
        """Per-element power pattern (linear, relative to isotropic)."""
        azimuth = np.deg2rad(np.asarray(azimuth_deg, dtype=float))
        elevation = np.deg2rad(np.asarray(elevation_deg, dtype=float))
        azimuth, elevation = np.broadcast_arrays(azimuth, elevation)
        # cos of the angle between direction and boresight (+x).
        cos_psi = np.cos(elevation) * np.cos(azimuth)
        peak = 10.0 ** (self.element_peak_gain_db / 10.0)
        front = peak * np.clip(cos_psi, 0.0, 1.0) ** self.element_exponent
        return np.maximum(front, peak * _BACK_LEAKAGE_LINEAR)

    def gain_db(
        self,
        weights: WeightVector,
        azimuth_deg: ArrayLike,
        elevation_deg: ArrayLike,
    ) -> ArrayLike:
        """Realized power gain (dBi) of a weight vector.

        Broadcasts over directions; scalar inputs return a float.
        """
        if weights.n_elements != self.n_elements:
            raise ValueError("weight vector length must match the array")
        azimuths = np.asarray(azimuth_deg, dtype=float)
        elevations = np.asarray(elevation_deg, dtype=float)
        azimuths_b, elevations_b = np.broadcast_arrays(azimuths, elevations)
        shape = azimuths_b.shape

        steering = steering_matrix(self.layout, azimuths_b.ravel(), elevations_b.ravel())
        effective = weights.weights * self.impairments.element_response()
        array_factor = steering @ effective  # (k,)
        array_power = np.abs(array_factor) ** 2

        element_power = self.element_power_pattern(azimuths_b, elevations_b).ravel()
        power = np.maximum(array_power * element_power, 1e-12)
        gain = 10.0 * np.log10(power)
        gain = gain - self.impairments.blockage.attenuation_db(
            azimuths_b.ravel(), elevations_b.ravel()
        )
        gain = gain.reshape(shape)
        if gain.ndim == 0:
            return float(gain)
        return gain

    def peak_gain_db(self, weights: WeightVector, grid_step_deg: float = 2.0) -> float:
        """Maximum gain over a coarse hemisphere scan (diagnostic)."""
        azimuths = np.arange(-90.0, 90.0 + grid_step_deg, grid_step_deg)
        elevations = np.arange(-60.0, 60.0 + grid_step_deg, grid_step_deg)
        az_mesh, el_mesh = np.meshgrid(azimuths, elevations)
        return float(np.max(self.gain_db(weights, az_mesh, el_mesh)))
