"""Crash-safe service lifecycle (DESIGN.md §14): the durable run
registry, deadline/cancellation propagation through the runner, client
backoff, startup garbage collection, and SIGKILL-restart recovery.

The contracts under test:

* **Registry durability** — every transition is hash-verified JSONL; a
  torn tail is physically truncated on reopen; compaction folds the log
  to one snapshot per live run without changing the replayed answer.
* **Abort propagation** — ``ScenarioRunner.cancel()`` and
  ``deadline_s`` surface as :class:`RunAbortedError` subclasses that
  pierce supervision; finished blocks stay journaled.
* **Client backoff** — the retry schedule is pure and bounded, and
  never sleeps less than the service's ``Retry-After``.
* **GC** — ``repro-bench runs gc`` removes only orphaned checkpoint
  journals (valid header, unreferenced by the registry).
* **Recovery** — SIGKILL of a serving process mid-run, then a restart
  on the same state dir, resumes the run from its journal and produces
  a digest bit-identical to an uninterrupted run (driven through the
  chaos harness's serve-restart event).
"""

import json
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.runtime import (
    DeadlineExceededError,
    PolicySpec,
    RunCancelledError,
    ScenarioRunner,
    ScenarioSpec,
)
from repro.runtime.checkpoint import CheckpointStore, journal_header
from repro.service.client import (
    BACKOFF_BASE_S,
    BACKOFF_CAP_S,
    ServiceClient,
    backoff_delay,
)
from repro.service.registry import RunRegistry


def _spec(seed: int = 2017, n_sweeps: int = 2) -> ScenarioSpec:
    return ScenarioSpec(
        scenario="policy-eval",
        seed=seed,
        policies=(PolicySpec("css", {"n_probes": 14}),),
        params={
            "azimuth_step_deg": 30.0,
            "distance_m": 6.0,
            "n_sweeps": n_sweeps,
        },
    )


class TestRunRegistry:
    def test_transitions_replay_into_folded_state(self, tmp_path):
        registry = RunRegistry(tmp_path / "registry.jsonl", durable=False)
        registry.record(
            "r1", "queued", spec_digest="abc", checkpoint_path="/j/r1.jsonl"
        )
        registry.record("r1", "running", attempts=1)
        registry.record("r1", "done", finished="t1")
        registry.record("r2", "queued", spec_digest="def")
        runs = registry.replay()
        assert runs["r1"]["status"] == "done"
        assert runs["r1"]["spec_digest"] == "abc"  # first event's fields stick
        assert runs["r1"]["attempts"] == 1
        assert runs["r2"]["status"] == "queued"
        assert registry.replay() == runs, "replay must be idempotent"
        registry.close()

    def test_unknown_transition_is_refused(self, tmp_path):
        registry = RunRegistry(tmp_path / "registry.jsonl", durable=False)
        with pytest.raises(ValueError):
            registry.record("r1", "exploded")
        registry.close()

    def test_evicted_runs_vanish_from_replay(self, tmp_path):
        registry = RunRegistry(tmp_path / "registry.jsonl", durable=False)
        registry.record("r1", "queued")
        registry.record("r1", "done")
        registry.record("r1", "evicted")
        assert registry.replay() == {}
        registry.close()

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "registry.jsonl"
        registry = RunRegistry(path, durable=False)
        registry.record("r1", "queued", spec_digest="abc")
        registry.record("r1", "done")
        registry.close()
        intact = path.read_bytes()
        # A crash mid-append leaves a torn final line.
        path.write_bytes(intact + b'{"event": {"run": "r2", "to": "done"')
        reopened = RunRegistry(path, durable=False)
        assert reopened.tail_dropped
        assert path.read_bytes() == intact, "torn tail physically removed"
        assert reopened.replay()["r1"]["status"] == "done"
        # Appending after the repair produces a clean log again.
        reopened.record("r3", "queued")
        reopened.close()
        third = RunRegistry(path, durable=False)
        assert not third.tail_dropped
        assert set(third.replay()) == {"r1", "r3"}
        third.close()

    def test_tampered_entry_hash_drops_the_tail(self, tmp_path):
        path = tmp_path / "registry.jsonl"
        registry = RunRegistry(path, durable=False)
        registry.record("r1", "queued")
        registry.record("r1", "done")
        registry.close()
        lines = path.read_text().splitlines()
        entry = json.loads(lines[2])
        entry["event"]["to"] = "failed"  # flip the outcome, keep the hash
        lines[2] = json.dumps(entry, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        reopened = RunRegistry(path, durable=False)
        assert reopened.tail_dropped
        assert reopened.replay()["r1"]["status"] == "queued"
        reopened.close()

    def test_compaction_preserves_replay_and_shrinks_log(self, tmp_path):
        path = tmp_path / "registry.jsonl"
        registry = RunRegistry(path, durable=False)
        for index in range(20):
            run = f"r{index % 4}"
            registry.record(run, "queued", spec_digest=f"d{index % 4}")
            registry.record(run, "running")
            registry.record(run, "done")
        before = registry.replay()
        dropped = registry.compact()
        assert dropped == 60 - 4
        assert registry.events == 4
        assert registry.replay() == before
        registry.close()
        # The compacted file replays identically from disk.
        reopened = RunRegistry(path, durable=False)
        assert reopened.replay() == before
        reopened.close()


class TestClientBackoff:
    def test_schedule_doubles_and_caps(self):
        delays = [backoff_delay(attempt) for attempt in range(12)]
        assert delays[:4] == [
            BACKOFF_BASE_S,
            BACKOFF_BASE_S * 2,
            BACKOFF_BASE_S * 4,
            BACKOFF_BASE_S * 8,
        ]
        assert delays[-1] == BACKOFF_CAP_S
        assert all(a <= b for a, b in zip(delays, delays[1:]))

    def test_retry_after_is_a_floor_not_a_ceiling(self):
        assert backoff_delay(0, retry_after=5.0) == 5.0
        assert backoff_delay(10, retry_after=5.0) == BACKOFF_CAP_S
        assert backoff_delay(0, retry_after=10_000.0) == BACKOFF_CAP_S
        assert backoff_delay(3, retry_after=0.0) == BACKOFF_BASE_S * 8

    def test_request_retries_rejections_and_honours_retry_after(self):
        client = ServiceClient(port=1)
        answers = [
            (429, {"error": "full"}, 7.0),
            (503, {"error": "draining"}, None),
            (202, {"run": "r000001-abc"}, None),
        ]
        trips = []
        client._round_trip = lambda method, path, body=None: answers[
            min(len(trips), len(answers) - 1)
        ]
        original = client._round_trip

        def tracking(method, path, body=None):
            result = original(method, path, body)
            trips.append((method, path))
            return result

        client._round_trip = tracking
        sleeps = []
        client._sleep = sleeps.append
        code, payload = client.request("POST", "/runs", {"x": 1}, retries=5)
        assert code == 202 and payload["run"] == "r000001-abc"
        assert len(trips) == 3
        assert sleeps == [7.0, backoff_delay(1)]

    def test_exhausted_budget_returns_the_last_rejection(self):
        client = ServiceClient(port=1)
        client._round_trip = lambda method, path, body=None: (429, {"e": 1}, None)
        sleeps = []
        client._sleep = sleeps.append
        code, payload = client.request("POST", "/runs", {"x": 1}, retries=2)
        assert code == 429
        assert sleeps == [backoff_delay(0), backoff_delay(1)]

    def test_zero_retries_never_sleeps(self):
        client = ServiceClient(port=1)
        client._round_trip = lambda method, path, body=None: (503, {}, 9.0)
        client._sleep = lambda _s: pytest.fail("retries=0 must not sleep")
        code, _ = client.request("GET", "/healthz")
        assert code == 503


class TestRunnerAbort:
    def test_deadline_exceeded_pierces_supervision(self, tmp_path):
        with ScenarioRunner(checkpoint=tmp_path / "j.jsonl") as runner:
            with pytest.raises(DeadlineExceededError):
                runner.run(_spec(), deadline_s=1e-9)

    def test_cancel_lands_at_a_block_boundary(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        caught = []
        with ScenarioRunner(checkpoint=journal) as runner:

            def target():
                try:
                    runner.run(_spec(seed=77, n_sweeps=500))
                except BaseException as error:  # noqa: BLE001 - test probe
                    caught.append(error)

            thread = threading.Thread(target=target)
            thread.start()
            # Cancel as soon as the first block journals, so the run is
            # provably mid-flight with hundreds of blocks still to go.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if journal.is_file() and journal.read_text().count("\n") > 1:
                    break
                time.sleep(0.002)
            runner.cancel()
            thread.join(60)
            assert not thread.is_alive()
        assert caught and isinstance(caught[0], RunCancelledError)
        # Finished blocks stayed journaled for a later resume.
        assert journal_header(journal) is not None

    def test_deadline_survives_into_next_run_until_rebound(self, tmp_path):
        # deadline_s is per-call: the next run() without one is unbounded.
        with ScenarioRunner(checkpoint=tmp_path / "j.jsonl") as runner:
            with pytest.raises(DeadlineExceededError):
                runner.run(_spec(), deadline_s=1e-9)
            outcome = runner.run(_spec(), checkpoint=tmp_path / "j2.jsonl")
            assert outcome.manifest.result_sha256


class TestRunsGC:
    def _journal(self, path: Path, digest: str = "d0", seed: int = 1) -> None:
        CheckpointStore(path, spec_digest=digest, seed=seed).close()

    def test_gc_removes_only_orphaned_journals(self, tmp_path, capsys):
        state = tmp_path / "service"
        state.mkdir(parents=True)
        registry = RunRegistry(state / "registry.jsonl", durable=False)
        referenced = state / "r000001-aaaa.jsonl"
        self._journal(referenced)
        registry.record(
            "r000001-aaaa", "queued", checkpoint_path=str(referenced)
        )
        registry.close()
        orphan = state / "r000099-dead.jsonl"
        self._journal(orphan)
        stray = state / "notes.jsonl"
        stray.write_text("not a journal\n")
        assert main(["runs", "gc", "--state-dir", str(state)]) == 0
        out = capsys.readouterr().out
        assert not orphan.exists(), "orphaned journal must be swept"
        assert referenced.exists(), "journal referenced by the registry stays"
        assert stray.exists(), "non-journal files are not ours to delete"
        assert (state / "registry.jsonl").exists()
        assert "gc: reclaimed 1 journal(s)" in out

    def test_gc_of_missing_state_dir_is_an_error(self, tmp_path):
        assert main(["runs", "gc", "--state-dir", str(tmp_path / "nope")]) == 2

    def test_cli_parses_lifecycle_surfaces(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["serve", "--state-dir", "/s", "--drain-timeout", "5"])
        assert args.state_dir == "/s" and args.drain_timeout == 5.0
        args = parser.parse_args(["runs", "gc", "--sweep-shm"])
        assert args.action == "gc" and args.sweep_shm
        args = parser.parse_args(
            ["chaos", "--seed", "3", "--events", "torn-tail,shm-evict"]
        )
        assert args.seed == 3 and args.events == "torn-tail,shm-evict"
        assert main(["chaos", "--events", "nope"]) == 2
        args = parser.parse_args(["run", "--deadline", "1.5", "fig10"])
        assert args.deadline == 1.5


class TestCrashRecovery:
    def test_sigkill_restart_resumes_bit_identical(self, tmp_path):
        # Drive the chaos harness's serve-restart event: a subprocess
        # service is SIGKILLed mid-run (≥1 block journaled), restarted
        # on the same state dir, and must resume the run to the clean
        # local digest with checkpoint_hits > 0, then drain cleanly.
        from repro.runtime.chaos import ChaosConfig, _Campaign

        campaign = _Campaign(
            ChaosConfig(
                state_dir=str(tmp_path / "state"),
                seed=11,
                events=("serve-restart",),
            )
        )
        report = campaign.run()
        assert report.ok(), "\n".join(report.format_rows())
        assert report.metrics["service_recovery_s"] > 0.0
        detail = report.events[0]
        assert detail["caught"] == 1
        assert detail["checkpoint_hits"] >= 1
