"""Bench (extension): blockage recovery with fast re-training.

Quantifies the §7 agility argument on a blockage timeline: a person
crosses the 6 m conference-room LOS.  Expected shape: everyone loses
double-digit dB during the outage; the §7 adaptive CSS variant stays
within a couple of dB of the exhaustive sweep's recovery while beating
it in the clear phases; plain CSS-14 pays for its reduced coverage
under *deep* blockage — the honest limit of model-based selection.
"""

from repro.experiments import BlockageConfig, run_blockage_recovery


def test_blockage_recovery(benchmark, report_rows):
    result = benchmark.pedantic(
        lambda: run_blockage_recovery(BlockageConfig()), rounds=1, iterations=1
    )
    report_rows(result.format_rows())

    ssw_clear = result.mean_snr_clear("SSW (every 2nd)")
    ssw_blocked = result.mean_snr_during_blockage("SSW (every 2nd)")
    adaptive_clear = result.mean_snr_clear("CSS adaptive + standby")
    adaptive_blocked = result.mean_snr_during_blockage("CSS adaptive + standby")
    css14_blocked = result.mean_snr_during_blockage("CSS-14 (every)")

    # Blockage costs every strategy double-digit dB.
    assert ssw_clear - ssw_blocked > 10.0

    # Adaptive CSS: as good as SSW when clear, close to it when blocked.
    assert adaptive_clear >= ssw_clear - 0.5
    assert adaptive_blocked >= ssw_blocked - 3.0

    # The documented limitation: fixed 14 probes underperform under
    # deep blockage (they miss the few surviving reflection sectors).
    assert css14_blocked < ssw_blocked
