"""Generic scenarios that exercise policies head-to-head.

The figure-specific scenarios live next to their post-processing in
``experiments/``; this module hosts the policy-agnostic workloads.
``policy-eval`` is the extension point the registry contract promises:
register a policy, name it in a spec, and it runs against the built-in
strategies without touching a single ``experiments/`` module.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .registry import register_scenario
from .spec import PolicySpec, ScenarioSpec

__all__ = ["PolicyEvalRow", "PolicyEvalResult", "run_policy_eval"]


@dataclass(frozen=True)
class PolicyEvalRow:
    """One policy's aggregate scores over the evaluation arc."""

    policy: str
    mean_loss_db: float
    stability: float
    mean_training_time_us: float
    fallback_rate: float


@dataclass
class PolicyEvalResult:
    """Head-to-head comparison across every policy in the spec."""

    rows: List[PolicyEvalRow]

    def by_policy(self) -> Dict[str, PolicyEvalRow]:
        return {row.policy: row for row in self.rows}

    def format_rows(self) -> List[str]:
        out = [
            "policy-eval: mean SNR loss vs oracle / selection stability"
            " / training airtime"
        ]
        for row in self.rows:
            out.append(
                f"  {row.policy:16s} loss {row.mean_loss_db:6.2f} dB"
                f"  stability {row.stability:5.2f}"
                f"  training {row.mean_training_time_us:8.1f} us"
                f"  fallback {row.fallback_rate:5.2f}"
            )
        return out


def _modal_share(selections: Sequence[int]) -> float:
    """Share of trials that picked the most common sector."""
    if not selections:
        return 0.0
    (_, count), = Counter(selections).most_common(1)
    return count / len(selections)


def policy_eval_spec() -> ScenarioSpec:
    """The canonical head-to-head spec (`repro-bench run policy-eval`)."""
    return ScenarioSpec(
        scenario="policy-eval",
        seed=2017,
        policies=(
            PolicySpec("css", {"n_probes": 14}),
            PolicySpec("full-sweep", {}),
            PolicySpec("hierarchical", {}),
            PolicySpec("oracle", {}),
        ),
        params={"azimuth_step_deg": 15.0, "distance_m": 6.0, "n_sweeps": 3},
    )


def _block_eligible(policy) -> bool:
    """Can this policy take the planned (shardable, supervised) path?

    Single-round policies that draw probes up front, need no ground
    truth, probe the shared sweep codebook and expose the batched
    kernel consume randomness exactly like the interactive loop (one
    ``probes_for_round`` draw per recording × sweep) while evaluation
    stays pure — so routing them through ``plan_trials``/``execute``
    changes nothing in the records but makes them shardable,
    checkpointable and fault-injectable.
    """
    return (
        not getattr(policy, "multi_round", True)
        and not getattr(policy, "needs_truth", False)
        and getattr(policy, "probe_pool", None) is None
        and hasattr(policy, "select_batch")
    )


@register_scenario("policy-eval", default_spec=policy_eval_spec)
def run_policy_eval(spec: ScenarioSpec, runner) -> PolicyEvalResult:
    """Compare registered policies on one conference-room arc."""
    from ..channel.batch import sweep_snr_matrix
    from ..channel.environment import conference_room
    from ..core.measurements import ProbeMeasurement
    from ..experiments.common import record_directions
    from ..geometry.rotation import Orientation

    testbed = spec.testbed.build()
    context = runner.context(testbed)
    params = dict(spec.params)
    step = float(params.get("azimuth_step_deg", 15.0))
    distance = float(params.get("distance_m", 6.0))
    n_sweeps = int(params.get("n_sweeps", 3))

    environment = conference_room(distance)
    azimuths = np.arange(-60.0, 60.0 + 1e-9, step)
    recordings = record_directions(
        testbed,
        environment,
        azimuths,
        [0.0],
        n_sweeps,
        np.random.default_rng(spec.seed),
    )
    tx_ids = testbed.tx_sector_ids
    column_of = {sector_id: column for column, sector_id in enumerate(tx_ids)}
    noise_floor = testbed.budget.noise_floor_dbm

    rows: List[PolicyEvalRow] = []
    for policy_spec in spec.policies:
        policy = runner.build_policy(policy_spec, context)
        rng = np.random.default_rng(spec.seed + 1)

        if _block_eligible(policy):
            blocks = runner.plan_trials(policy, recordings, tx_ids, rng)
            records = runner.execute(
                policy,
                blocks,
                reset="recording",
                policy_spec=policy_spec,
                testbed_spec=spec.testbed,
                label=policy_spec.name,
            )
            losses = []
            trainings = []
            fallbacks = []
            per_recording: Dict[int, List[int]] = {}
            for record in records:
                recording = recordings[record.recording_index]
                sector_id = record.result.sector_id
                achieved = float(recording.true_snr_db[column_of[sector_id]])
                losses.append(recording.optimal_snr_db() - achieved)
                trainings.append(
                    policy.training_time_us(record.probes_requested, 1)
                )
                fallbacks.append(bool(record.result.fallback))
                per_recording.setdefault(record.recording_index, []).append(
                    sector_id
                )
            stabilities = [
                _modal_share(per_recording.get(index, []))
                for index in range(len(recordings))
            ]
            rows.append(
                PolicyEvalRow(
                    policy=policy_spec.name,
                    mean_loss_db=float(np.mean(losses)),
                    stability=float(np.mean(stabilities)),
                    mean_training_time_us=float(np.mean(trainings)),
                    fallback_rate=float(np.mean(fallbacks)),
                )
            )
            continue

        # Policies probing their own codebook (random beams) need truth
        # for those beams; the nominal orientations are close enough for
        # a comparison scenario (no pinned values ride on it).
        own_pool = getattr(policy, "probe_pool", None)
        own_truth = None
        if own_pool is not None:
            orientations = [
                Orientation(yaw_deg=-recording.azimuth_deg)
                for recording in recordings
            ]
            own_truth = sweep_snr_matrix(
                environment,
                testbed.dut_antenna,
                policy.codebook,
                own_pool,
                orientations,
                testbed.ref_antenna,
                testbed.ref_codebook.rx_sector.weights,
                budget=testbed.budget,
            )
            own_column = {sector_id: c for c, sector_id in enumerate(own_pool)}

        losses: List[float] = []
        trainings: List[float] = []
        fallbacks: List[bool] = []
        stabilities: List[float] = []
        for rec_index, recording in enumerate(recordings):
            policy.reset()
            if getattr(policy, "needs_truth", False):
                policy.set_truth(recording.true_snr_db)
            selections: List[int] = []
            for sweep in recording.sweeps:
                if own_pool is not None:

                    def measure(ids, generator, _row=rec_index):
                        out = []
                        for sector_id in ids:
                            observation = testbed.measurement_model.observe(
                                own_truth[_row, own_column[sector_id]],
                                noise_floor,
                                generator,
                            )
                            if observation is not None:
                                out.append(
                                    ProbeMeasurement(
                                        sector_id=sector_id,
                                        snr_db=observation.snr_db,
                                        rssi_dbm=observation.rssi_dbm,
                                    )
                                )
                        return out

                else:

                    def measure(ids, generator, _sweep=sweep):
                        return [
                            _sweep[sector_id]
                            for sector_id in ids
                            if sector_id in _sweep
                        ]

                outcome = runner.run_interactive(policy, tx_ids, measure, rng)
                sector_id = outcome.result.sector_id
                if own_pool is not None:
                    column = own_column.get(sector_id)
                    if column is None:
                        # Fallback landed outside the beam pool (nothing
                        # decoded on a fresh selector); score the worst
                        # beam rather than crash the comparison.
                        achieved = float(own_truth[rec_index].min())
                    else:
                        achieved = float(own_truth[rec_index, column])
                else:
                    achieved = float(recording.true_snr_db[column_of[sector_id]])
                losses.append(recording.optimal_snr_db() - achieved)
                trainings.append(outcome.training_time_us)
                fallbacks.append(bool(outcome.result.fallback))
                selections.append(sector_id)
            stabilities.append(_modal_share(selections))
        rows.append(
            PolicyEvalRow(
                policy=policy_spec.name,
                mean_loss_db=float(np.mean(losses)),
                stability=float(np.mean(stabilities)),
                mean_training_time_us=float(np.mean(trainings)),
                fallback_rate=float(np.mean(fallbacks)),
            )
        )
    return PolicyEvalResult(rows=rows)
