"""The probe-design stage (DESIGN.md §13): designer taxonomy, the
deterministic design cache, spec/registry plumbing, shared-memory
seeding, and the ``fig7_probe_design`` search scenario.

The contracts under test:

* **Designer invariants** — every designer returns a valid subset
  (⊆ pool, no duplicates, exactly M entries) deterministically in
  (table, M, params, seed), and a cache hit is bit-identical to the
  miss that populated it.
* **Pinned baseline** — the ``random`` designer reproduces the legacy
  ``experiments.common.random_probe_columns`` draw call-for-call, so a
  ``probe_design: {"designer": "random"}`` block changes no experiment
  digest.
* **Spec surface** — ``probe_design`` round-trips through canonical
  JSON, participates in keys/digests when present, and is absent from
  the JSON (digest-invariant) when unset.
* **Search scenario** — ``fig7_probe_design`` is pinned, jobs=4 ==
  jobs=1, and at least one designed matrix strictly beats random mean
  angular error at equal M on the conference-room (multipath) floor.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import CompressivePolicy
from repro.core.probes import (
    clear_design_cache,
    design_cache_key,
    design_cache_size,
    seed_designed_subsets,
)
from repro.experiments import ProbeDesignConfig, probe_design_spec, run_probe_design
from repro.experiments.common import random_probe_columns
from repro.runtime import registry
from repro.runtime.policy import PolicyContext
from repro.runtime.registry import (
    available_probe_designers,
    build_policy,
    build_probe_designer,
)
from repro.runtime.runner import ScenarioRunner
from repro.runtime.spec import PolicySpec, ScenarioSpec

DETERMINISTIC_DESIGNERS = ("coherence-min", "greedy-submodular", "in-sector")
ALL_DESIGNERS = DETERMINISTIC_DESIGNERS + ("random",)


@pytest.fixture(autouse=True)
def _fresh_design_cache():
    clear_design_cache()
    yield
    clear_design_cache()


@pytest.fixture(scope="module")
def context(testbed):
    return PolicyContext(testbed=testbed, cache={})


class TestRegistrySurface:
    def test_builtin_designers_registered(self):
        assert set(ALL_DESIGNERS) <= set(available_probe_designers())

    def test_unknown_designer_raises_with_inventory(self, pattern_table):
        with pytest.raises(KeyError, match="registered:"):
            build_probe_designer("nope", pattern_table)

    def test_block_without_designer_key_rejected(self, pattern_table):
        with pytest.raises(ValueError, match="'designer' name"):
            build_probe_designer({"params": {}}, pattern_table)

    def test_block_with_stray_keys_rejected(self, pattern_table):
        with pytest.raises(ValueError, match="unknown probe_design keys"):
            build_probe_designer({"designer": "random", "extra": 1}, pattern_table)

    def test_block_and_bare_name_build_the_same_designer(self, pattern_table):
        bare = build_probe_designer("coherence-min", pattern_table)
        block = build_probe_designer({"designer": "coherence-min"}, pattern_table)
        rng = np.random.default_rng(3)
        pool = list(range(8))
        assert bare.design(4, pool, rng) == block.design(4, pool, rng)

    def test_in_sector_rejects_nonpositive_width(self, pattern_table):
        with pytest.raises(ValueError, match="sector_width_deg"):
            build_probe_designer(
                {"designer": "in-sector", "params": {"sector_width_deg": 0.0}},
                pattern_table,
            )


class TestDesignerInvariants:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_subset_is_valid_and_deterministic(self, data, pattern_table, testbed):
        name = data.draw(st.sampled_from(ALL_DESIGNERS))
        all_ids = list(testbed.tx_sector_ids)
        pool_size = data.draw(st.integers(min_value=2, max_value=len(all_ids)))
        pool = all_ids[:pool_size]
        n_probes = data.draw(st.integers(min_value=1, max_value=pool_size))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))

        designer = build_probe_designer(name, pattern_table)
        first = designer.design(n_probes, pool, np.random.default_rng(seed))
        assert len(first) == n_probes
        assert len(set(first)) == n_probes
        assert set(first) <= set(pool)
        # Determinism in (table, M, params, seed): a fresh designer with
        # a fresh generator at the same seed reproduces the subset.
        rebuilt = build_probe_designer(name, pattern_table)
        second = rebuilt.design(n_probes, pool, np.random.default_rng(seed))
        assert first == second

    @pytest.mark.parametrize("name", DETERMINISTIC_DESIGNERS)
    def test_cache_hit_is_bit_identical_to_miss(self, name, pattern_table, testbed):
        pool = list(testbed.tx_sector_ids)
        designer = build_probe_designer(name, pattern_table)
        rng = np.random.default_rng(0)
        assert design_cache_size() == 0
        miss = designer.design(9, pool, rng)
        assert design_cache_size() == 1
        hit = designer.design(9, pool, rng)
        assert design_cache_size() == 1
        assert miss == hit
        # A different instance hits the shared module-level memo too —
        # and must not re-run the greedy search to do so.
        other = build_probe_designer(name, pattern_table)
        other._design = None  # would raise if the search re-ran
        assert other.design(9, pool, rng) == miss

    @pytest.mark.parametrize("name", DETERMINISTIC_DESIGNERS)
    def test_deterministic_designers_consume_no_randomness(
        self, name, pattern_table, testbed
    ):
        pool = list(testbed.tx_sector_ids)
        designer = build_probe_designer(name, pattern_table)
        rng = np.random.default_rng(42)
        before = rng.bit_generator.state
        designer.design(7, pool, rng)
        assert rng.bit_generator.state == before

    def test_cache_key_tracks_table_content_not_identity(self, pattern_table):
        key_one = design_cache_key(pattern_table, "x", {"a": 1}, 5, (1, 2, 3))
        key_two = design_cache_key(pattern_table, "x", {"a": 1}, 5, (1, 2, 3))
        assert key_one == key_two
        assert key_one != design_cache_key(pattern_table, "x", {"a": 2}, 5, (1, 2, 3))
        assert key_one != design_cache_key(pattern_table, "x", {"a": 1}, 6, (1, 2, 3))
        assert pattern_table.digest() in key_one


class TestRandomDesignerPin:
    def test_reproduces_legacy_random_probe_columns_draw(
        self, pattern_table, testbed
    ):
        pool = list(testbed.tx_sector_ids)
        designer = build_probe_designer("random", pattern_table)
        for seed in (0, 7, 2017):
            columns = random_probe_columns(
                len(pool), 14, np.random.default_rng(seed)
            )
            legacy = [pool[index] for index in columns]
            assert designer.design(14, pool, np.random.default_rng(seed)) == legacy

    def test_policy_with_random_designer_matches_undesigned_policy(self, context):
        undesigned = CompressivePolicy(context, n_probes=12)
        designed = build_policy(
            PolicySpec(
                "css", {"n_probes": 12}, probe_design={"designer": "random"}
            ),
            context,
        )
        pool = list(context.testbed.tx_sector_ids)
        assert undesigned.probes_for_round(
            0, pool, np.random.default_rng(5)
        ) == designed.probes_for_round(0, pool, np.random.default_rng(5))


class TestPolicyRouting:
    def test_probe_design_and_probe_strategy_are_mutually_exclusive(self, context):
        with pytest.raises(ValueError, match="mutually exclusive"):
            CompressivePolicy(
                context,
                probe_strategy="gain-diverse",
                probe_design={"designer": "random"},
            )

    @pytest.mark.parametrize("strategy", ["random", "gain-diverse"])
    def test_oversized_budget_raises_on_strategy_path(self, context, strategy):
        # Validation is hoisted above strategy dispatch: a too-small
        # pool is the same ValueError on every path, not a downstream
        # shape error from inside the strategy.
        policy = CompressivePolicy(context, n_probes=4, probe_strategy=strategy)
        with pytest.raises(ValueError, match="cannot probe more sectors"):
            policy.probes_for_round(0, [1, 2, 3], np.random.default_rng(0))

    def test_oversized_budget_raises_on_designer_path(self, context):
        policy = build_policy(
            PolicySpec(
                "css", {"n_probes": 4}, probe_design={"designer": "coherence-min"}
            ),
            context,
        )
        with pytest.raises(ValueError, match="cannot probe more sectors"):
            policy.probes_for_round(0, [1, 2, 3], np.random.default_rng(0))

    def test_designed_policy_round_trips_via_build_policy(self, context):
        spec = PolicySpec(
            "css",
            {"n_probes": 10},
            probe_design={
                "designer": "in-sector",
                "params": {"sector_center_deg": 10.0, "sector_width_deg": 90.0},
            },
        )
        rebuilt = build_policy(PolicySpec.from_json(spec.to_json()), context)
        pool = list(context.testbed.tx_sector_ids)
        direct = build_policy(spec, context)
        rng = np.random.default_rng(0)
        assert direct.probes_for_round(0, pool, rng) == rebuilt.probes_for_round(
            0, pool, rng
        )


class TestSpecSurface:
    def test_probe_design_round_trips_through_canonical_json(self):
        spec = PolicySpec(
            "css",
            {"n_probes": 8},
            probe_design={"designer": "coherence-min", "params": {}},
        )
        rebuilt = PolicySpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.key() == spec.key()

    def test_absent_block_is_absent_from_json_and_digest(self):
        plain = PolicySpec("css", {"n_probes": 8})
        assert "probe_design" not in plain.to_json()
        designed = PolicySpec(
            "css", {"n_probes": 8}, probe_design={"designer": "random"}
        )
        assert plain.key() != designed.key()
        scenario_plain = ScenarioSpec(
            scenario="policy-eval", seed=1, policies=(plain,)
        )
        scenario_designed = ScenarioSpec(
            scenario="policy-eval", seed=1, policies=(designed,)
        )
        assert scenario_plain.digest() != scenario_designed.digest()
        # And the designed block survives the scenario-level round trip.
        restored = ScenarioSpec.from_json(scenario_designed.to_json())
        assert restored.policies[0].probe_design == {"designer": "random"}
        assert restored.digest() == scenario_designed.digest()


class TestEntryPointDiscovery:
    class _Entry:
        def __init__(self, name, loaded):
            self.name = name
            self._loaded = loaded

        def load(self):
            if isinstance(self._loaded, Exception):
                raise self._loaded
            return self._loaded

    def _patch_entry_points(self, monkeypatch, mapping):
        from importlib import metadata

        def fake_entry_points(group=None):
            return list(mapping.get(group, ()))

        monkeypatch.setattr(metadata, "entry_points", fake_entry_points)

    def test_installed_factories_register_under_entry_name(self, monkeypatch):
        sentinel = object()

        def factory(pattern_table, **params):
            return sentinel

        self._patch_entry_points(
            monkeypatch,
            {
                "repro.probe_designers": (self._Entry("acme-designer", factory),),
                "repro.policies": (self._Entry("acme-policy", factory),),
            },
        )
        registry._scan_entry_points()
        try:
            assert "acme-designer" in available_probe_designers()
            assert "acme-policy" in registry.available_policies()
            assert build_probe_designer("acme-designer", None) is sentinel
        finally:
            registry._PROBE_DESIGNERS.pop("acme-designer", None)
            registry._POLICIES.pop("acme-policy", None)

    def test_broken_plugin_is_skipped_and_builtins_survive(
        self, monkeypatch, caplog
    ):
        self._patch_entry_points(
            monkeypatch,
            {
                "repro.probe_designers": (
                    self._Entry("broken", ImportError("boom")),
                    # A plugin may not shadow a built-in name.
                    self._Entry("random", lambda table, **params: None),
                ),
            },
        )
        import logging

        registry.load_builtin()
        with caplog.at_level(logging.WARNING, logger="repro.runtime.registry"):
            registry._scan_entry_points()
        assert any("broken" in record.message for record in caplog.records)
        from repro.core.probes import RandomProbeDesigner

        assert registry._PROBE_DESIGNERS["random"] is RandomProbeDesigner


class TestSharedMemorySeeding:
    def test_designed_subsets_ride_shared_kernels(self, context, testbed):
        policy = build_policy(
            PolicySpec(
                "css",
                {"n_probes": 8},
                probe_design={"designer": "greedy-submodular"},
            ),
            context,
        )
        pool = list(testbed.tx_sector_ids)
        subset = policy.probes_for_round(0, pool, np.random.default_rng(0))
        kernels = policy.shared_kernels()
        assert kernels is not None
        np.testing.assert_array_equal(kernels["design.0.pool"], pool)
        np.testing.assert_array_equal(kernels["design.0.subset"], subset)

    def test_seeding_fills_the_cache_without_redesigning(self, testbed):
        pattern_table = testbed.pattern_table
        design = {"designer": "coherence-min"}
        pool = list(testbed.tx_sector_ids)
        designer = build_probe_designer(design, pattern_table)
        subset = designer.design(8, pool, np.random.default_rng(0))
        views = {
            "pattern_matrix": np.zeros(1),  # unrelated keys are ignored
            "design.0.pool": np.asarray(pool, dtype=np.int64),
            "design.0.subset": np.asarray(subset, dtype=np.int64),
        }
        clear_design_cache()
        seeded = seed_designed_subsets(design, pattern_table, views)
        assert seeded == 1
        assert design_cache_size() == 1
        fresh = build_probe_designer(design, pattern_table)
        fresh._design = None  # would raise if the search re-ran
        assert fresh.design(8, pool, np.random.default_rng(0)) == subset

    def test_random_designer_has_nothing_to_seed(self, testbed):
        seeded = seed_designed_subsets(
            {"designer": "random"}, testbed.pattern_table, {}
        )
        assert seeded == 0
        assert design_cache_size() == 0


def _small_config() -> ProbeDesignConfig:
    return ProbeDesignConfig(
        probe_counts=(6, 10, 14),
        lab_azimuth_step_deg=15.0,
        lab_elevation_step_deg=15.0,
        conference_azimuth_step_deg=12.0,
    )


class TestProbeDesignScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_probe_design()

    def test_pinned_default_search(self, result):
        # Pinned floats from the first landed run of the default spec:
        # any engine, designer, or rng-order change that moves the
        # search shows up here first.
        random_conference = result.series("conference-room", "random")
        assert random_conference.probe_counts == list(range(6, 25, 2))
        assert random_conference.mean_az_error[0] == pytest.approx(
            18.934426229508198, abs=1e-12
        )
        assert random_conference.overall_mean == pytest.approx(
            7.204824736771957, abs=1e-12
        )
        coherence_lab = result.series("lab", "coherence-min")
        assert coherence_lab.mean_az_error[1] == pytest.approx(
            6.877450980392157, abs=1e-12
        )
        submodular_conference = result.series("conference-room", "greedy-submodular")
        assert submodular_conference.overall_mean == pytest.approx(
            5.1869892473118275, abs=1e-12
        )

    def test_designed_beats_random_on_conference_room(self, result):
        # The acceptance bar: at least one designed matrix strictly
        # beats random mean angular error at equal M on the multipath
        # floor — at most budgets, not a lucky single point.
        wins = result.wins_vs_random("conference-room")
        n_budgets = len(result.series("conference-room", "random").probe_counts)
        assert max(wins.values()) >= n_budgets // 2 + 1
        ranking = result.ranking("conference-room")
        assert ranking[0].designer != "random"

    def test_report_ranks_designers_against_random(self, result):
        rows = result.format_rows()
        assert any("conference-room" in row for row in rows)
        assert any("(baseline)" in row for row in rows)
        assert any("budgets" in row for row in rows)

    def test_jobs4_matches_jobs1_for_every_designer(self):
        spec = probe_design_spec(_small_config())
        with ScenarioRunner(jobs=1) as runner:
            serial = runner.run(spec)
        with ScenarioRunner(jobs=4) as runner:
            sharded = runner.run(spec)
        assert serial.manifest.result_sha256 == sharded.manifest.result_sha256

    def test_spec_round_trips_through_file(self, tmp_path):
        spec = probe_design_spec(_small_config())
        path = tmp_path / "probe_design.json"
        spec.save(path)
        assert ScenarioSpec.load(path).digest() == spec.digest()
