"""Probing-set strategies and designers: which ``M`` sectors to sweep.

The paper probes a *random* subset per sweep (§2.2) and discusses
smarter, context-specific choices in §7.  Two interfaces live here:

* :class:`ProbeStrategy` — the original half-pluggable hook: an
  in-process object with a ``choose`` method, constructed by hand.
* :class:`ProbeDesigner` — the spec-addressable pipeline stage
  (DESIGN.md §13): registered by name in
  :mod:`repro.runtime.registry`, declared in a ``probe_design`` block
  on a :class:`~repro.runtime.spec.PolicySpec`, and routed through
  ``CompressivePolicy.probes_for_round``.  The ``random`` designer is
  bit-identical to the legacy ``rng.choice`` draw; the deterministic
  designers (``coherence-min``, ``in-sector``, ``greedy-submodular``)
  compute a *structured sensing matrix* — a fixed M-of-N subset —
  once per (table, M, params, pool) and memoize it in a module-level
  cache keyed by the pattern-table digest, since design is expensive
  and tables are immutable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..measurement.patterns import PatternTable
from ..obs import quality as _quality
from .correlation import normalize_rows, to_linear_power

__all__ = [
    "ProbeStrategy",
    "RandomProbeStrategy",
    "FixedProbeStrategy",
    "GainDiverseProbeStrategy",
    "ProbeDesigner",
    "RandomProbeDesigner",
    "CoherenceMinDesigner",
    "InSectorDesigner",
    "GreedySubmodularDesigner",
    "design_cache_key",
    "design_cache_size",
    "clear_design_cache",
    "seed_designed_subsets",
    "register_builtin_designers",
]


class ProbeStrategy(Protocol):
    """Chooses the probing subset for one sweep."""

    def choose(
        self, n_probes: int, available_ids: Sequence[int], rng: np.random.Generator
    ) -> List[int]:
        """Return ``n_probes`` distinct sector IDs to probe."""
        ...


def _validate(n_probes: int, available_ids: Sequence[int]) -> None:
    if n_probes < 1:
        raise ValueError("must probe at least one sector")
    if n_probes > len(available_ids):
        raise ValueError(
            f"cannot probe {n_probes} sectors out of {len(available_ids)} available"
        )


class RandomProbeStrategy:
    """The paper's choice: a fresh uniform random subset per sweep."""

    def choose(
        self, n_probes: int, available_ids: Sequence[int], rng: np.random.Generator
    ) -> List[int]:
        _validate(n_probes, available_ids)
        chosen = rng.choice(len(available_ids), size=n_probes, replace=False)
        return [available_ids[index] for index in sorted(chosen)]


class FixedProbeStrategy:
    """Always probe the same pre-selected subset."""

    def __init__(self, sector_ids: Sequence[int]):
        if len(set(sector_ids)) != len(sector_ids):
            raise ValueError("fixed probe set must be unique")
        self._sector_ids = list(sector_ids)

    def choose(
        self, n_probes: int, available_ids: Sequence[int], rng: np.random.Generator
    ) -> List[int]:
        subset = [s for s in self._sector_ids if s in set(available_ids)]
        if n_probes > len(subset):
            raise ValueError(
                f"fixed set provides {len(subset)} usable sectors, {n_probes} requested"
            )
        return subset[:n_probes]


class GainDiverseProbeStrategy:
    """§7's idea: prefer probing sectors with *dissimilar* patterns.

    Greedy max-min selection on the measured patterns: start from the
    strongest sector, then repeatedly add the sector whose pattern has
    the lowest maximum correlation with everything already selected.
    A diverse probe set keeps the Eq. 2 correlation discriminative with
    fewer probes than a random draw.
    """

    def __init__(self, pattern_table: PatternTable):
        self._table = pattern_table
        self._order_cache: Optional[List[int]] = None
        self._cache_key: Optional[tuple] = None

    def _selection_order(self, available_ids: Sequence[int]) -> List[int]:
        key = tuple(available_ids)
        if self._cache_key == key and self._order_cache is not None:
            return self._order_cache

        rows = []
        for sector_id in available_ids:
            pattern = to_linear_power(self._table.pattern(sector_id).ravel())
            rows.append(pattern)
        matrix = normalize_rows(np.asarray(rows))
        similarity = matrix @ matrix.T  # cosine similarity of patterns

        total_gain = matrix.sum(axis=1)
        order = [int(np.argmax(total_gain))]
        remaining = set(range(len(available_ids))) - set(order)
        while remaining:
            candidates = sorted(remaining)
            # For each candidate: its worst-case similarity to the set.
            worst = np.array(
                [similarity[candidate, order].max() for candidate in candidates]
            )
            chosen = candidates[int(np.argmin(worst))]
            order.append(chosen)
            remaining.discard(chosen)

        self._order_cache = [available_ids[index] for index in order]
        self._cache_key = key
        return self._order_cache

    def choose(
        self, n_probes: int, available_ids: Sequence[int], rng: np.random.Generator
    ) -> List[int]:
        _validate(n_probes, available_ids)
        return self._selection_order(available_ids)[:n_probes]


# ----------------------------------------------------------------------
# Probe designers: the spec-addressable pipeline stage (DESIGN.md §13).
# ----------------------------------------------------------------------


class ProbeDesigner(Protocol):
    """Designs the probing subset — the sensing matrix — for a policy.

    Unlike :class:`ProbeStrategy`, a designer is *spec-addressable*: it
    is registered by name, constructed from JSON params via
    :func:`repro.runtime.registry.build_probe_designer`, and its output
    for deterministic designers is cached across policies and
    processes (see :func:`design_cache_key`).
    """

    name: str

    def design(
        self, n_probes: int, available_ids: Sequence[int], rng: np.random.Generator
    ) -> List[int]:
        """Return ``n_probes`` distinct sector IDs to probe."""
        ...

    def params(self) -> Dict[str, Any]:
        """The designer's resolved parameters (canonical JSON values)."""
        ...


#: Module-level memo of deterministic designs.  Keyed by
#: :func:`design_cache_key` — pattern-table digest + designer identity
#: + (M, params, pool) — so the cache survives policy rebuilds, is
#: shared between policies that differ only in unrelated kwargs, and
#: can be seeded in pool workers from a published shared-memory
#: segment (:func:`seed_designed_subsets`).
_DESIGN_CACHE: Dict[Tuple, Tuple[int, ...]] = {}

#: Memo of sensing-matrix diagnostics (mutual coherence, condition
#: number) per design cache key.  Computed lazily and only while a
#: quality-telemetry context is active, so untelemetered runs never
#: touch it; memoized because diagnostics are a pure function of the
#: designed subset and design() is called once per sweep.
_DIAGNOSTICS_CACHE: Dict[Tuple, Dict[str, float]] = {}


def design_cache_key(
    table: PatternTable,
    name: str,
    params: Dict[str, Any],
    n_probes: int,
    available_ids: Sequence[int],
) -> Tuple:
    """The memo key of one deterministic design.

    The table participates via its content :meth:`~PatternTable.digest`
    (not ``id()``), so supervisor and workers — separate processes with
    separate table objects — compute the same key for the same table.
    """
    return (
        table.digest(),
        str(name),
        tuple(sorted((str(k), v) for k, v in params.items())),
        int(n_probes),
        tuple(int(s) for s in available_ids),
    )


def design_cache_size() -> int:
    return len(_DESIGN_CACHE)


def clear_design_cache() -> None:
    _DESIGN_CACHE.clear()
    _DIAGNOSTICS_CACHE.clear()


class RandomProbeDesigner:
    """The paper's per-sweep uniform draw, as a designer.

    Pinned bit-identical to the legacy default path: exactly one
    ``rng.choice(len(pool), size=M, replace=False)`` call per design —
    the same call as :func:`repro.experiments.common.random_probe_columns`
    and ``CompressivePolicy``'s historical inline draw — and the chosen
    order is **not** sorted.  Every experiment digest pinned before the
    designer stage existed is therefore unchanged under
    ``probe_design: {"designer": "random"}``.
    """

    name = "random"

    def __init__(self, pattern_table: Optional[PatternTable] = None):
        # The table is accepted (uniform factory signature) but unused:
        # a random draw needs no measured patterns.
        self._table = pattern_table

    def params(self) -> Dict[str, Any]:
        return {}

    def design(
        self, n_probes: int, available_ids: Sequence[int], rng: np.random.Generator
    ) -> List[int]:
        _validate(n_probes, available_ids)
        chosen = rng.choice(len(available_ids), size=n_probes, replace=False)
        return [available_ids[index] for index in chosen]


class _DeterministicDesigner:
    """Shared machinery of the rng-free structured designers.

    Subclasses implement ``_design(n_probes, pool)`` over the measured
    pattern table; this base handles validation, the module-level memo
    and the per-instance record exported to the shared-memory publisher
    (``exported_designs``).  Deterministic designers consume **no**
    randomness, so a policy routed through one leaves the pinned rng
    stream untouched for everything around it.
    """

    name = "?"

    def __init__(self, pattern_table: PatternTable):
        if pattern_table is None:
            raise ValueError(f"designer '{self.name}' needs a pattern table")
        self._table = pattern_table
        self._designs: Dict[Tuple[int, Tuple[int, ...]], Tuple[int, ...]] = {}

    def params(self) -> Dict[str, Any]:
        return {}

    def _linear_rows(self, available_ids: Sequence[int]) -> np.ndarray:
        """Per-sector linear-power patterns, raveled over the grid."""
        return np.asarray(
            [
                to_linear_power(self._table.pattern(sector_id).ravel())
                for sector_id in available_ids
            ]
        )

    def design(
        self, n_probes: int, available_ids: Sequence[int], rng: np.random.Generator
    ) -> List[int]:
        _validate(n_probes, available_ids)
        key = design_cache_key(
            self._table, self.name, self.params(), n_probes, available_ids
        )
        subset = _DESIGN_CACHE.get(key)
        if subset is None:
            subset = tuple(
                int(s) for s in self._design(int(n_probes), list(available_ids))
            )
            _DESIGN_CACHE[key] = subset
        self._designs[
            (int(n_probes), tuple(int(s) for s in available_ids))
        ] = subset
        if _quality.quality_context() is not None:
            diagnostics = _DIAGNOSTICS_CACHE.get(key)
            if diagnostics is None:
                diagnostics = _quality.subset_diagnostics(
                    normalize_rows(self._linear_rows(subset))
                )
                _DIAGNOSTICS_CACHE[key] = diagnostics
            _quality.record_design_diagnostics(self.name, diagnostics, n_probes)
        return list(subset)

    def exported_designs(
        self,
    ) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """Every (pool, subset) this instance has designed, in a stable
        order — the arrays a supervisor publishes over shared memory so
        pool workers seed their cache instead of re-designing."""
        return sorted(
            (pool, subset) for (_m, pool), subset in self._designs.items()
        )

    def _design(self, n_probes: int, pool: List[int]) -> List[int]:
        raise NotImplementedError


class CoherenceMinDesigner(_DeterministicDesigner):
    """Greedy column-coherence minimization (arXiv:2205.11154 idea).

    The normalized measured-pattern matrix has one unit-norm column per
    sector (its linear-power pattern over the grid); the mutual
    coherence of the row-subsampled sensing matrix is the largest
    absolute inner product between two selected columns.  Greedy
    selection: seed with the least-coherent column pair, then
    repeatedly add the column whose worst-case coherence against the
    selected set is smallest.  Ties break on the lowest column index,
    so the design is fully deterministic.
    """

    name = "coherence-min"

    def _design(self, n_probes: int, pool: List[int]) -> List[int]:
        matrix = normalize_rows(self._linear_rows(pool))
        coherence = np.abs(matrix @ matrix.T)
        if n_probes == 1:
            # Degenerate budget: the column least correlated with the
            # rest of the dictionary on average.
            off_diagonal = coherence - np.diag(np.diag(coherence))
            selected = [int(np.argmin(off_diagonal.sum(axis=1)))]
        else:
            masked = coherence.copy()
            np.fill_diagonal(masked, np.inf)
            flat = int(np.argmin(masked))
            first, second = divmod(flat, masked.shape[1])
            selected = sorted((int(first), int(second)))
            while len(selected) < n_probes:
                candidates = [
                    index for index in range(len(pool)) if index not in selected
                ]
                worst = np.array(
                    [coherence[candidate, selected].max() for candidate in candidates]
                )
                selected.append(candidates[int(np.argmin(worst))])
        return sorted(pool[index] for index in selected)


class InSectorDesigner(_DeterministicDesigner):
    """Structured in-sector selection (arXiv:2308.13268 idea).

    Concentrates the probing budget on sectors whose main lobes cover
    an angular sector-of-interest: sectors whose peak-gain direction
    falls inside the azimuth window rank first (by their peak in-window
    gain), the remainder rank by the fraction of their radiated energy
    that lands in the window.  With the default ±60° window this matches
    the evaluation arcs of the figure experiments.
    """

    name = "in-sector"

    def __init__(
        self,
        pattern_table: PatternTable,
        sector_center_deg: float = 0.0,
        sector_width_deg: float = 120.0,
    ):
        super().__init__(pattern_table)
        if not sector_width_deg > 0.0:
            raise ValueError("sector_width_deg must be positive")
        self._center = float(sector_center_deg)
        self._width = float(sector_width_deg)

    def params(self) -> Dict[str, Any]:
        return {
            "sector_center_deg": self._center,
            "sector_width_deg": self._width,
        }

    def _design(self, n_probes: int, pool: List[int]) -> List[int]:
        from ..geometry.angles import azimuth_difference

        azimuths, _elevations = self._table.grid.flat_angles()
        offsets = np.array(
            [azimuth_difference(azimuth, self._center) for azimuth in azimuths]
        )
        in_window = np.abs(offsets) <= self._width / 2.0
        rows = self._linear_rows(pool)
        scores = []
        for index in range(len(pool)):
            pattern = rows[index]
            peak = int(np.argmax(pattern))
            window_energy = float(pattern[in_window].sum()) if in_window.any() else 0.0
            energy_fraction = window_energy / float(pattern.sum())
            if in_window[peak]:
                # Main lobe inside the sector-of-interest: rank ahead of
                # every outsider, strongest in-window peak first.
                rank = (0, -float(pattern[in_window].max()))
            else:
                rank = (1, -energy_fraction)
            scores.append((rank, pool[index]))
        scores.sort()
        return sorted(sector_id for _rank, sector_id in scores[:n_probes])


class GreedySubmodularDesigner(_DeterministicDesigner):
    """Grid-coverage gain maximization (facility-location objective).

    Coverage of a subset ``S`` is ``sum over grid points of the best
    linear gain any selected sector offers there`` — monotone
    submodular, so the greedy sweep that repeatedly adds the sector
    with the largest marginal coverage gain carries the classic
    (1 - 1/e) guarantee.  Ties break on the lowest pool index.
    """

    name = "greedy-submodular"

    def _design(self, n_probes: int, pool: List[int]) -> List[int]:
        rows = self._linear_rows(pool)
        covered = np.zeros(rows.shape[1])
        remaining = list(range(len(pool)))
        selected: List[int] = []
        for _ in range(n_probes):
            gains = (np.maximum(rows[remaining], covered) - covered).sum(axis=1)
            best = remaining[int(np.argmax(gains))]
            selected.append(best)
            covered = np.maximum(covered, rows[best])
            remaining.remove(best)
        return sorted(pool[index] for index in selected)


def seed_designed_subsets(design, table: PatternTable, views) -> int:
    """Seed the design cache from published shared-memory views.

    ``views`` is the array mapping a pool worker attached from the
    supervisor's kernel segment; designed subsets ride in it as
    ``design.<k>.pool`` / ``design.<k>.subset`` pairs (see
    ``CompressivePolicy.shared_kernels``).  The worker re-derives the
    cache key from its own table + the spec's ``probe_design`` block —
    the designer is *constructed* (cheap) but never *runs* — so the
    seeded entries are exactly what local design would compute.
    Returns the number of seeded subsets.
    """
    from ..runtime.registry import build_probe_designer

    designer = build_probe_designer(design, table)
    exporter = getattr(designer, "exported_designs", None)
    if exporter is None:
        return 0  # rng-backed designers have nothing to seed
    count = 0
    index = 0
    while f"design.{index}.subset" in views:
        pool = views[f"design.{index}.pool"]
        subset = views[f"design.{index}.subset"]
        key = design_cache_key(
            table, designer.name, designer.params(), len(subset), pool
        )
        _DESIGN_CACHE.setdefault(key, tuple(int(s) for s in subset))
        count += 1
        index += 1
    return count


def register_builtin_designers() -> None:
    """Register the built-in designers with the runtime registry.

    Called from :mod:`repro.core.policy` (itself imported by
    ``registry.load_builtin``), *not* at import time here: ``repro.core``
    imports this module eagerly, and a module-level registry import
    would cycle through the partially-initialized runtime package.
    """
    from ..runtime.registry import register_probe_designer

    for factory in (
        RandomProbeDesigner,
        CoherenceMinDesigner,
        InSectorDesigner,
        GreedySubmodularDesigner,
    ):
        register_probe_designer(factory.name)(factory)
