"""Codebook design: synthesize sector sets for arbitrary arrays.

The Talon ships a fixed vendor codebook; anyone building on a
different array needs to *design* one.  This module provides a greedy
coverage-driven designer: candidate steered beams tile the service
region, and sectors are picked one by one to maximize the composite
coverage (the direction-wise best-sector gain), under the hardware's
phase-quantization constraints.  The §7 discussion — how many sectors
a region "needs" — becomes a measurable curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..geometry.grid import AngularGrid
from .array import PhasedArray
from .codebook import Codebook, RX_SECTOR_ID, Sector
from .steering import steering_vector
from .weights import WeightVector

__all__ = ["DesignReport", "design_codebook", "coverage_curve"]


@dataclass(frozen=True)
class DesignReport:
    """What the designer achieved.

    Attributes:
        codebook: the designed sector set (RX quasi-omni included).
        coverage_db: composite gain (best sector per grid point).
        mean_coverage_db: its mean over the service region.
        worst_coverage_db: its minimum (the deepest hole).
    """

    codebook: Codebook
    coverage_db: np.ndarray
    mean_coverage_db: float
    worst_coverage_db: float


def _candidate_directions(grid: AngularGrid, spacing_deg: float) -> List[Tuple[float, float]]:
    azimuths = np.arange(
        grid.azimuths_deg[0], grid.azimuths_deg[-1] + 1e-9, spacing_deg
    )
    elevations = np.arange(
        grid.elevations_deg[0], grid.elevations_deg[-1] + 1e-9, spacing_deg
    )
    return [(float(az), float(el)) for el in elevations for az in azimuths]


def _quasi_omni(layout) -> WeightVector:
    distances = np.linalg.norm(layout.positions_m, axis=1)
    active = np.zeros(layout.n_elements, dtype=bool)
    active[int(np.argmin(distances))] = True
    return WeightVector.uniform(layout.n_elements).with_element_mask(active).normalized()


def design_codebook(
    antenna: PhasedArray,
    n_sectors: int,
    service_region: Optional[AngularGrid] = None,
    candidate_spacing_deg: float = 7.5,
    phase_bits: int = 2,
) -> DesignReport:
    """Greedily pick steered sectors that maximize composite coverage.

    Args:
        antenna: the target array (its impairments are part of the
            optimization — the designer sees the real hardware).
        n_sectors: TX sectors to produce (1..63, the SSW field limit).
        service_region: grid of directions to cover; defaults to the
            frontal range azimuth ±80°, elevation 0–30°.
        candidate_spacing_deg: spacing of the candidate steering grid.
        phase_bits: phase-shifter resolution of the hardware.

    Returns:
        A :class:`DesignReport` with the codebook and coverage stats.
    """
    if not 1 <= n_sectors <= 63:
        raise ValueError("the SSW sector field allows 1..63 TX sectors")
    if service_region is None:
        service_region = AngularGrid.from_spacing((-80.0, 80.0), 5.0, (0.0, 30.0), 7.5)

    azimuths, elevations = service_region.flat_angles()
    candidates = _candidate_directions(service_region, candidate_spacing_deg)
    if len(candidates) < n_sectors:
        raise ValueError("candidate grid is coarser than the requested codebook")

    # Precompute each candidate's gain over the service region.
    candidate_weights: List[WeightVector] = []
    candidate_gains: List[np.ndarray] = []
    for azimuth, elevation in candidates:
        weights = (
            WeightVector.conjugate_steering(
                steering_vector(antenna.layout, azimuth, elevation)
            )
            .quantized(phase_bits=phase_bits)
            .normalized()
        )
        candidate_weights.append(weights)
        candidate_gains.append(antenna.gain_db(weights, azimuths, elevations))

    gains_matrix = np.stack(candidate_gains)  # (n_candidates, n_points)
    chosen: List[int] = []
    composite = np.full(service_region.n_points, -np.inf)
    for _ in range(n_sectors):
        # Pick the candidate that lifts the worst-covered points most.
        best_index = -1
        best_score = -np.inf
        for index in range(gains_matrix.shape[0]):
            if index in chosen:
                continue
            improved = np.maximum(composite, gains_matrix[index])
            score = float(improved.mean() + 0.25 * improved.min())
            if score > best_score:
                best_score = score
                best_index = index
        chosen.append(best_index)
        composite = np.maximum(composite, gains_matrix[best_index])

    sectors = [Sector(RX_SECTOR_ID, _quasi_omni(antenna.layout), kind="quasi-omni")]
    for slot, candidate_index in enumerate(chosen, start=1):
        sectors.append(Sector(slot, candidate_weights[candidate_index], kind="designed"))
    codebook = Codebook(sectors, rx_sector_id=RX_SECTOR_ID)
    return DesignReport(
        codebook=codebook,
        coverage_db=composite,
        mean_coverage_db=float(composite.mean()),
        worst_coverage_db=float(composite.min()),
    )


def coverage_curve(
    antenna: PhasedArray,
    sector_counts: List[int],
    service_region: Optional[AngularGrid] = None,
    candidate_spacing_deg: float = 10.0,
) -> List[Tuple[int, float, float]]:
    """Composite coverage vs. codebook size (§7's scaling question).

    Returns ``(n_sectors, mean_coverage_db, worst_coverage_db)`` per
    requested size.  Coverage saturates once beams tile the region —
    the point where extra sectors only add precision, which is exactly
    where compressive selection (fixed probes, growing N) pays off.
    """
    results = []
    for n_sectors in sector_counts:
        report = design_codebook(
            antenna,
            n_sectors,
            service_region=service_region,
            candidate_spacing_deg=candidate_spacing_deg,
        )
        results.append((n_sectors, report.mean_coverage_db, report.worst_coverage_db))
    return results
