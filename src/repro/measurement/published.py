"""The "published" pattern data set.

The authors released their measured Talon AD7200 sector patterns with
talon-tools; this module ships the simulator's equivalent — one full
Figure-6-resolution chamber campaign (azimuth ±90° at 1.8°, elevation
0–32.4° at 3.6°, 3 sweeps averaged) for the canonical default device
(`PhasedArray.talon()` with its fixed seed).  Users who just want to
run compressive selection can load this table instead of re-running a
campaign:

    from repro.measurement import load_published_patterns
    selector = CompressiveSectorSelector(load_published_patterns())

Loading is self-healing: the shipped ``.npz`` is digest-pinned in
``repro/data/MANIFEST.json``, and if its bytes are damaged the loader
warns, re-runs the deterministic campaign that produced it, verifies
the rebuilt bytes against the manifest, and caches them in the user
cache directory (see :func:`repro.measurement.artifacts.cache_dir`)
for subsequent loads.
"""

from __future__ import annotations

import logging
import pathlib
from typing import Optional

from .artifacts import (
    PUBLISHED_PATTERNS_SEED,
    artifact_path,
    cached_artifact_path,
    rebuild_artifact,
    verify_artifact,
)
from .errors import ArtifactError
from .patterns import PatternTable

__all__ = [
    "load_published_patterns",
    "regenerate_published_patterns",
    "PUBLISHED_PATTERNS_RESOURCE",
    "PUBLISHED_PATTERNS_SEED",
]

_LOGGER = logging.getLogger(__name__)

#: Package-relative resource name of the shipped table.
PUBLISHED_PATTERNS_RESOURCE = "talon_sector_patterns_3d.npz"


def regenerate_published_patterns(path: str) -> None:
    """Write a fresh copy of the canonical table to ``path``.

    Re-runs exactly the public campaign pipeline
    (``measure_3d_patterns`` at the paper's Figure-6 resolution, seed
    ``PUBLISHED_PATTERNS_SEED``); the output reproduces the shipped
    file bit for bit.
    """
    from .artifacts import ARTIFACTS

    ARTIFACTS[PUBLISHED_PATTERNS_RESOURCE].build(path)


def load_published_patterns(allow_rebuild: bool = True) -> PatternTable:
    """Load the shipped canonical-device 3D pattern table.

    The table was produced by exactly the public campaign pipeline
    (``measure_3d_patterns`` at the paper's Figure-6 resolution, seed
    0x11AD2017) and regenerating it reproduces it bit for bit.

    Args:
        allow_rebuild: on a damaged shipped file, fall back to a
            cached or freshly regenerated copy instead of raising.

    Raises:
        ArtifactError: the shipped table is unusable and
            ``allow_rebuild`` is False (or the rebuild itself failed).
    """
    return _load_with_fallback(
        shipped_path=str(artifact_path(PUBLISHED_PATTERNS_RESOURCE)),
        cache_path=cached_artifact_path(PUBLISHED_PATTERNS_RESOURCE),
        allow_rebuild=allow_rebuild,
    )


def _load_with_fallback(
    shipped_path: str,
    cache_path: pathlib.Path,
    allow_rebuild: bool = True,
) -> PatternTable:
    """Load ``shipped_path``, degrading gracefully on damage.

    Fallback order: a previously cached rebuild whose digest matches
    the manifest, then a fresh deterministic regeneration (verified
    against the manifest and cached at ``cache_path``).
    """
    try:
        return PatternTable.load(shipped_path)
    except ArtifactError as error:
        if not allow_rebuild:
            raise
        _LOGGER.warning(
            "shipped pattern table is unusable (%s); falling back to a "
            "deterministic rebuild — run 'repro-bench artifacts rebuild' "
            "to repair the install in place",
            error,
        )

    cached = verify_artifact(PUBLISHED_PATTERNS_RESOURCE, path=str(cache_path))
    if cached.ok:
        try:
            return PatternTable.load(str(cache_path))
        except ArtifactError as error:  # pragma: no cover - digest matched
            _LOGGER.warning("cached pattern table unreadable (%s); rebuilding", error)

    _LOGGER.warning(
        "regenerating the pattern table from the campaign pipeline "
        "(seed 0x%X) into cache at %s",
        PUBLISHED_PATTERNS_SEED,
        cache_path,
    )
    rebuild_artifact(PUBLISHED_PATTERNS_RESOURCE, dest=str(cache_path), check=True)
    return PatternTable.load(str(cache_path))
