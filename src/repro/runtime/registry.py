"""Name → factory registries for policies and scenarios.

The registry is what makes specs *resolvable*: a
:class:`~.spec.PolicySpec` names a policy factory, a
:class:`~.spec.ScenarioSpec` names a scenario executor, and both sides
are plain dict lookups so a new policy or workload is one
``@register_policy`` / ``@register_scenario`` away — no edits to any
``experiments/`` module (the acceptance test registers a toy policy
exactly this way).

Registration contract:

* A **policy factory** has signature ``factory(context, **kwargs)``
  where ``context`` is a :class:`~.policy.PolicyContext` and
  ``kwargs`` are the spec's JSON kwargs.  It returns an object
  satisfying :class:`~.policy.SelectionPolicy`.
* A **scenario executor** has signature ``executor(spec, runner)`` and
  returns the experiment's result object.  ``default_spec`` (optional)
  builds the canonical spec for ``repro-bench run <name>``.

Built-in registrations live next to the code they adapt
(``core/policy.py``, ``baselines/policy.py``, the experiment modules)
and are imported lazily by :func:`load_builtin` to keep import cycles
out of the package graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .policy import PolicyContext
from .spec import PolicySpec, ScenarioSpec

__all__ = [
    "ScenarioEntry",
    "register_policy",
    "register_scenario",
    "build_policy",
    "get_scenario",
    "scenario_spec",
    "available_policies",
    "available_scenarios",
    "load_builtin",
]

PolicyFactory = Callable[..., Any]

_POLICIES: Dict[str, PolicyFactory] = {}
_SCENARIOS: Dict[str, "ScenarioEntry"] = {}
_BUILTIN_LOADED = False


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario."""

    name: str
    executor: Callable[[ScenarioSpec, Any], Any]
    default_spec: Optional[Callable[[], ScenarioSpec]] = None
    description: str = ""


def register_policy(name: str) -> Callable[[PolicyFactory], PolicyFactory]:
    """Register a policy factory under ``name`` (decorator)."""

    def decorator(factory: PolicyFactory) -> PolicyFactory:
        _POLICIES[name] = factory
        return factory

    return decorator


def register_scenario(
    name: str,
    default_spec: Optional[Callable[[], ScenarioSpec]] = None,
    description: str = "",
) -> Callable[[Callable], Callable]:
    """Register a scenario executor under ``name`` (decorator)."""

    def decorator(executor: Callable) -> Callable:
        summary = description
        if not summary and executor.__doc__:
            summary = executor.__doc__.strip().splitlines()[0]
        _SCENARIOS[name] = ScenarioEntry(
            name=name,
            executor=executor,
            default_spec=default_spec,
            description=summary,
        )
        return executor

    return decorator


def build_policy(spec: PolicySpec, context: PolicyContext):
    """Resolve a policy spec to a live policy instance."""
    load_builtin()
    factory = _POLICIES.get(spec.name)
    if factory is None:
        raise KeyError(
            f"unknown policy '{spec.name}'; registered: {available_policies()}"
        )
    return factory(context, **dict(spec.kwargs))


def get_scenario(name: str) -> ScenarioEntry:
    """Look up a registered scenario by name."""
    load_builtin()
    entry = _SCENARIOS.get(name)
    if entry is None:
        raise KeyError(
            f"unknown scenario '{name}'; registered: {available_scenarios()}"
        )
    return entry


def scenario_spec(name: str) -> ScenarioSpec:
    """The canonical (default-config) spec of a named scenario."""
    entry = get_scenario(name)
    if entry.default_spec is None:
        raise KeyError(f"scenario '{name}' has no default spec; provide a JSON file")
    return entry.default_spec()


def available_policies() -> List[str]:
    load_builtin()
    return sorted(_POLICIES)


def available_scenarios() -> List[str]:
    load_builtin()
    return sorted(_SCENARIOS)


def load_builtin() -> None:
    """Import the modules that carry built-in registrations (idempotent)."""
    global _BUILTIN_LOADED
    if _BUILTIN_LOADED:
        return
    _BUILTIN_LOADED = True
    # Policies adapt code in core/ and baselines/; scenarios live in the
    # experiment modules and runtime/scenarios.py.  Imported here (not at
    # module top) so runtime <-> experiments never cycle at import time.
    from ..core import policy as _core_policy  # noqa: F401
    from ..baselines import policy as _baseline_policy  # noqa: F401
    from .. import experiments as _experiments  # noqa: F401
    from . import scenarios as _scenarios  # noqa: F401
