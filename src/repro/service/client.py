"""Small synchronous HTTP client for the selection service.

Used by the CLI (``repro-bench load`` result checks), the CI smoke job
and the tests.  Pure stdlib (:mod:`http.client`), one connection per
call — the *asynchronous* many-connection path lives in :mod:`.load`.

Backpressure handling: the service answers 429 (queue full) and 503
(draining) with a computed ``Retry-After`` header.  Pass ``retries=``
to :meth:`ServiceClient.request` or :meth:`ServiceClient.submit` to
retry those answers with bounded exponential backoff that never sleeps
*less* than the service asked for — :func:`backoff_delay` is pure so
the schedule is unit-testable without a server.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional, Tuple

__all__ = ["ServiceClient", "ServiceError", "backoff_delay"]

#: First backoff step (seconds); doubles each retry.
BACKOFF_BASE_S = 0.1
#: Ceiling on any single backoff sleep (seconds).
BACKOFF_CAP_S = 30.0

#: Statuses worth retrying: queue full and draining are both transient.
_RETRYABLE = (429, 503)

#: States the service will never leave — ``wait`` stops on any of them.
TERMINAL_STATES = ("done", "failed", "cancelled", "deadline")


def backoff_delay(
    attempt: int,
    retry_after: Optional[float] = None,
    base: float = BACKOFF_BASE_S,
    cap: float = BACKOFF_CAP_S,
) -> float:
    """Sleep before retry number ``attempt`` (0-based), in seconds.

    Exponential (``base * 2**attempt``) clamped to ``cap``, but never
    below the service's ``Retry-After`` hint — backing off *less* than
    the server asked for just converts one rejection into two.
    """
    delay = min(cap, base * (2.0 ** attempt))
    if retry_after is not None and retry_after > 0:
        delay = max(delay, min(cap, float(retry_after)))
    return delay


class ServiceError(RuntimeError):
    """The service answered with an unexpected status code."""

    def __init__(self, code: int, payload: Any):
        super().__init__(f"service returned {code}: {payload}")
        self.code = code
        self.payload = payload


class ServiceClient:
    """Talk to a running :class:`~repro.service.SelectionService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8780, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        # Injection seam for the backoff tests; production uses time.sleep.
        self._sleep = time.sleep

    # -- raw ------------------------------------------------------------

    def _round_trip(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Any, Optional[float]]:
        """One HTTP exchange: (status, parsed payload, Retry-After or None)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            retry_after: Optional[float] = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                return response.status, json.loads(raw.decode() or "null"), retry_after
            return response.status, raw.decode(), retry_after
        finally:
            connection.close()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        retries: int = 0,
    ) -> Tuple[int, Any]:
        """One logical call; JSON bodies in, parsed JSON (or text) out.

        With ``retries > 0``, a 429/503 answer is retried up to that
        many times with :func:`backoff_delay` sleeps (honouring the
        service's ``Retry-After``).  The *last* answer is returned
        either way — callers still see the rejection if the budget runs
        out, so existing error handling is untouched.
        """
        attempt = 0
        while True:
            status, payload, retry_after = self._round_trip(method, path, body)
            if status not in _RETRYABLE or attempt >= retries:
                return status, payload
            self._sleep(backoff_delay(attempt, retry_after))
            attempt += 1

    # -- typed helpers --------------------------------------------------

    def submit(
        self,
        spec_json: Dict[str, Any],
        deadline_s: Optional[float] = None,
        retries: int = 0,
    ) -> Dict[str, Any]:
        """POST a spec; returns the acceptance payload (raises on != 202).

        ``deadline_s`` bounds the run's *total* wall-clock (queue wait
        included): the service refuses to schedule block attempts past
        it and settles the run in the terminal ``deadline`` state.
        """
        body: Dict[str, Any] = spec_json
        if deadline_s is not None:
            body = {"spec": spec_json, "deadline_s": deadline_s}
        code, payload = self.request("POST", "/runs", body, retries=retries)
        if code != 202:
            raise ServiceError(code, payload)
        return payload

    def status(self, run_id: str) -> Dict[str, Any]:
        code, payload = self.request("GET", f"/runs/{run_id}")
        if code != 200:
            raise ServiceError(code, payload)
        return payload

    def result(self, run_id: str) -> Dict[str, Any]:
        code, payload = self.request("GET", f"/runs/{run_id}/result")
        if code != 200:
            raise ServiceError(code, payload)
        return payload

    def retry(self, run_id: str, keep_faults: bool = False) -> Dict[str, Any]:
        code, payload = self.request(
            "POST", f"/runs/{run_id}/retry", {"keep_faults": keep_faults}
        )
        if code != 202:
            raise ServiceError(code, payload)
        return payload

    def cancel(self, run_id: str) -> Dict[str, Any]:
        """DELETE a run: 200 = cancelled while queued, 202 = cancelling."""
        code, payload = self.request("DELETE", f"/runs/{run_id}")
        if code not in (200, 202):
            raise ServiceError(code, payload)
        return payload

    def metrics(self) -> str:
        code, payload = self.request("GET", "/metrics")
        if code != 200:
            raise ServiceError(code, payload)
        return payload

    def healthz(self) -> Dict[str, Any]:
        code, payload = self.request("GET", "/healthz")
        if code != 200:
            raise ServiceError(code, payload)
        return payload

    def wait(
        self, run_id: str, timeout: float = 120.0, poll_s: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the run reaches a terminal state.

        Returns the final status payload; raises TimeoutError if the
        run is still in flight when the budget expires.
        """
        deadline = time.monotonic() + timeout
        while True:
            payload = self.status(run_id)
            if payload.get("status") in TERMINAL_STATES:
                return payload
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"run {run_id} still {payload.get('status')} after {timeout}s"
                )
            time.sleep(poll_s)
