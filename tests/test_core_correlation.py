"""Unit tests for the Eq. 2 correlation kernel."""

import numpy as np
import pytest

from repro.core import correlation_map, normalize_rows, to_linear_power


class TestHelpers:
    def test_to_linear_power(self):
        np.testing.assert_allclose(to_linear_power(np.array([0.0, 10.0, -10.0])),
                                   [1.0, 10.0, 0.1])

    def test_normalize_rows(self):
        matrix = normalize_rows(np.array([[3.0, 4.0], [1.0, 0.0]]))
        np.testing.assert_allclose(np.linalg.norm(matrix, axis=1), 1.0)

    def test_normalize_rows_zero_safe(self):
        matrix = normalize_rows(np.zeros((2, 3)))
        assert np.isfinite(matrix).all()


class TestCorrelationMap:
    def test_perfect_match_scores_one(self):
        probes = np.array([10.0, 2.0, -3.0])
        patterns = probes[:, np.newaxis]  # single grid point, identical
        assert correlation_map(probes, patterns)[0] == pytest.approx(1.0)

    def test_bounded_zero_one(self, rng):
        probes = rng.uniform(-7, 12, size=8)
        patterns = rng.uniform(-7, 12, size=(8, 50))
        surface = correlation_map(probes, patterns)
        assert (surface >= 0.0).all()
        assert (surface <= 1.0 + 1e-12).all()

    def test_true_direction_wins_on_clean_data(self, rng):
        """The grid column equal to the probe vector must maximize W."""
        patterns = rng.uniform(-7, 12, size=(10, 40))
        true_column = 17
        probes = patterns[:, true_column].copy()
        surface = correlation_map(probes, patterns)
        assert int(np.argmax(surface)) == true_column

    def test_offset_invariance_in_linear_domain(self, rng):
        """A constant dB offset (longer link) must not move the argmax."""
        patterns = rng.uniform(-7, 12, size=(10, 40))
        probes = patterns[:, 5].copy()
        shifted = probes - 6.0  # the conference room is 6 dB farther
        original = correlation_map(probes, patterns)
        moved = correlation_map(shifted, patterns)
        assert int(np.argmax(original)) == int(np.argmax(moved))
        np.testing.assert_allclose(original, moved, atol=1e-9)

    def test_db_domain_not_offset_invariant(self, rng):
        patterns = rng.uniform(-7, 12, size=(10, 40))
        probes = patterns[:, 5].copy()
        original = correlation_map(probes, patterns, domain="db")
        shifted = correlation_map(probes - 6.0, patterns, domain="db")
        assert not np.allclose(original, shifted)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            correlation_map(np.zeros((2, 2)), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            correlation_map(np.zeros(3), np.zeros((4, 10)))

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            correlation_map(np.zeros(3), np.zeros((3, 4)), domain="bogus")

    def test_more_probes_sharpen_the_peak(self, rng):
        """With more probes, wrong grid points correlate less."""
        n_grid = 60
        patterns_full = rng.uniform(-7, 12, size=(30, n_grid))
        true_column = 30

        def peak_margin(n_probes: int) -> float:
            rows = rng.choice(30, size=n_probes, replace=False)
            probes = patterns_full[rows, true_column]
            surface = correlation_map(probes, patterns_full[rows])
            sorted_surface = np.sort(surface)[::-1]
            return sorted_surface[0] - sorted_surface[1]

        few = np.mean([peak_margin(4) for _ in range(30)])
        many = np.mean([peak_margin(20) for _ in range(30)])
        assert many > few
