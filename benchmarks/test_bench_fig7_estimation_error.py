"""Bench: regenerate Figure 7 (angular estimation error vs. probes).

Paper shape: the azimuth error falls to a few degrees with 10-20
probes (median ~1.3° in the lab, ~2.1° in the conference room at 10);
elevation errors are larger (coarser measurement axis); errors keep
shrinking as probes are added; "with at least 12 probing sectors a
suitable approximation of the signal path becomes possible".
"""

from repro.experiments import Fig7Config, run_fig7


def test_fig7_estimation_error(benchmark, report_rows):
    config = Fig7Config(
        probe_counts=tuple(range(4, 35, 2)),
        lab_azimuth_step_deg=6.0,
        lab_elevation_step_deg=6.0,
        conference_azimuth_step_deg=3.0,
        n_sweeps=2,
        subsamples_per_sweep=2,
    )
    result = benchmark.pedantic(lambda: run_fig7(config), rounds=1, iterations=1)
    report_rows(result.format_rows())

    for series in (result.lab, result.conference):
        # Monotone-ish improvement: late medians below early medians.
        assert series.azimuth_median(30) <= series.azimuth_median(6)
        # A few degrees of median error by mid probe counts.
        assert series.azimuth_median(14) < 8.0
        assert series.azimuth_median(20) < 5.0
        # Elevation errors below ~15 deg by 10+ probes (paper bound).
        assert series.elevation_median(14) < 15.0

    # Lab at 20 probes approaches the paper's ~1 degree regime.
    assert result.lab.azimuth_median(20) <= 3.0

    # Whiskers tighten with more probes (lab p99.5, paper Figure 7a).
    lab = result.lab
    early = lab.azimuth_stats[lab.probe_counts.index(8)].whisker_high
    late = lab.azimuth_stats[lab.probe_counts.index(30)].whisker_high
    assert late < early
