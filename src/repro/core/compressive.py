"""Compressive sector selection (the paper's core contribution, §2.2).

Two steps per sweep:

1. Probe ``M`` of the ``N`` available sectors and estimate the signal's
   path direction by correlating the received signal-strength vector
   against the measured 3D patterns (Eqs. 2, 3, 5).
2. Pick, among **all** ``N`` sectors, the one whose measured pattern
   has the highest gain at the estimated direction (Eq. 4).

``N`` can therefore be much larger than ``M`` — the selection quality
is bounded by the pattern knowledge, not the probe count.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..geometry.grid import AngularGrid
from ..measurement.patterns import PatternTable
from .estimator import AngleEstimator
from .measurements import ProbeMeasurement
from .selector import SelectionResult

__all__ = ["CompressiveSectorSelector"]


class CompressiveSectorSelector:
    """Selects sectors from compressive probes and measured patterns."""

    def __init__(
        self,
        pattern_table: PatternTable,
        candidate_sector_ids: Optional[Sequence[int]] = None,
        search_grid: Optional[AngularGrid] = None,
        fusion: str = "product",
        domain: str = "linear",
        initial_sector_id: int = 1,
        min_probes: int = 2,
        fallback_correlation: float = 0.0,
    ):
        """
        Args:
            pattern_table: measured patterns of every available sector.
            candidate_sector_ids: the ``N`` sectors eligible for the
                final selection (default: every table sector except the
                quasi-omni RX sector 0, i.e. all TX sectors).
            search_grid: angular grid for the Eq. 3 argmax.
            fusion: correlation fusion mode — ``"product"`` applies the
                Eq. 5 SNR×RSSI robustification (§5); ``"snr"`` and
                ``"rssi"`` use a single map (for the ablation study).
            domain: correlation domain, ``"linear"`` or ``"db"``.
            initial_sector_id: selection before any sweep succeeds.
            min_probes: below this many usable reports the selector
                falls back (argmax of what it has, else last choice).
            fallback_correlation: when the Eq. 3/5 peak correlation
                drops below this value the measured patterns clearly no
                longer describe the channel (e.g. a blocked LOS), and
                the selector falls back to the plain argmax of the
                probes.  0 (default) disables the fallback — the
                paper's protocol always trusts the patterns.
        """
        if candidate_sector_ids is None:
            candidate_sector_ids = [
                sector_id for sector_id in pattern_table.sector_ids if sector_id != 0
            ]
        unknown = [s for s in candidate_sector_ids if s not in pattern_table.sector_ids]
        if unknown:
            raise ValueError(f"candidate sectors without measured patterns: {unknown}")
        if min_probes < 2:
            raise ValueError("correlation needs at least two probes")

        self.pattern_table = pattern_table
        self.candidate_sector_ids = list(candidate_sector_ids)
        self.estimator = AngleEstimator(
            pattern_table, search_grid=search_grid, domain=domain, fusion=fusion
        )
        if not 0.0 <= fallback_correlation <= 1.0:
            raise ValueError("fallback correlation must be in [0, 1]")
        self.min_probes = min_probes
        self.fallback_correlation = fallback_correlation
        self._last_selection = initial_sector_id
        # Candidate gains on the search grid, for the Eq. 4 lookup.
        self._candidate_matrix = pattern_table.sample_matrix(
            self.estimator.search_grid, self.candidate_sector_ids
        )

    @property
    def last_selection(self) -> int:
        return self._last_selection

    @property
    def n_candidates(self) -> int:
        return len(self.candidate_sector_ids)

    def best_sector_at(self, azimuth_deg: float, elevation_deg: float) -> int:
        """Eq. 4: the candidate with maximum measured gain there."""
        gains = self.pattern_table.vector(
            azimuth_deg, elevation_deg, self.candidate_sector_ids
        )
        return int(self.candidate_sector_ids[int(np.argmax(gains))])

    def _fallback(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        if measurements:
            best = max(measurements, key=lambda m: m.snr_db)
            self._last_selection = best.sector_id
            return SelectionResult(sector_id=best.sector_id, fallback=True)
        return SelectionResult(sector_id=self._last_selection, fallback=True)

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        """Run both steps on one sweep's measurements."""
        usable = [
            m for m in measurements if m.sector_id in self.estimator.known_sector_ids()
        ]
        if len(usable) < self.min_probes:
            return self._fallback(usable)
        estimate = self.estimator.estimate(usable)
        if estimate.correlation < self.fallback_correlation:
            return self._fallback(usable)
        # Eq. 4 via the precomputed grid matrix: column at the argmax
        # grid point, maximized over candidates.
        grid_index = self.estimator.search_grid.nearest_index(
            estimate.azimuth_deg, estimate.elevation_deg
        )
        candidate_gains = self._candidate_matrix[:, grid_index]
        sector_id = int(self.candidate_sector_ids[int(np.argmax(candidate_gains))])
        self._last_selection = sector_id
        return SelectionResult(sector_id=sector_id, estimate=estimate)
