"""Post-processing of raw campaign samples (§4.3).

The paper turns raw per-position SNR samples into clean patterns by
(1) omitting obvious outliers, (2) averaging over the repeated
measurements and (3) interpolating over gaps where no frames were
captured (directions with too little gain to decode anything).  The
same three steps live here, each independently testable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["reject_outliers", "robust_average", "interpolate_gaps"]


def reject_outliers(samples: Sequence[float], max_deviation_db: float = 4.0) -> np.ndarray:
    """Drop samples farther than ``max_deviation_db`` from the median.

    With fewer than three samples nothing can be judged an outlier and
    the input is returned unchanged.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size < 3:
        return values
    median = np.median(values)
    keep = np.abs(values - median) <= max_deviation_db
    # Never discard everything: the median sample always survives.
    if not keep.any():
        keep = np.abs(values - median) == np.min(np.abs(values - median))
    return values[keep]


def robust_average(samples: Sequence[float], max_deviation_db: float = 4.0) -> float:
    """Outlier-rejected mean of one grid position's samples.

    Returns ``NaN`` for an empty sample set (a gap to interpolate).
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        return float("nan")
    return float(np.mean(reject_outliers(values, max_deviation_db)))


def interpolate_gaps(
    values: np.ndarray, floor_db: Optional[float] = None
) -> np.ndarray:
    """Fill NaN gaps along the azimuth axis by linear interpolation.

    Works on a 1-D azimuth cut or a 2-D ``(elevation, azimuth)``
    pattern (each elevation row is treated independently, matching how
    the campaign scans).  Rows that contain no samples at all are
    filled with ``floor_db`` (default: the global minimum of the
    pattern, i.e. "as weak as anything we ever measured").
    """
    array = np.array(values, dtype=float)
    single_row = array.ndim == 1
    if single_row:
        array = array[np.newaxis, :]
    if array.ndim != 2:
        raise ValueError("expected a 1-D or 2-D pattern")

    if floor_db is None:
        finite = array[np.isfinite(array)]
        floor_db = float(finite.min()) if finite.size else 0.0

    for row in array:
        known = np.isfinite(row)
        if not known.any():
            row[:] = floor_db
            continue
        if known.all():
            continue
        positions = np.arange(row.size)
        row[~known] = np.interp(positions[~known], positions[known], row[known])
    return array[0] if single_row else array
