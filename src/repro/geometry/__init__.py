"""Geometry primitives: angles, spherical directions, grids, rotations."""

from .angles import (
    angular_distance,
    azimuth_difference,
    deg2rad,
    rad2deg,
    validate_elevation,
    wrap_azimuth,
)
from .grid import AngularGrid
from .rotation import Orientation, rotation_matrix_y, rotation_matrix_z
from .spherical import direction_vector, vector_to_angles

__all__ = [
    "angular_distance",
    "azimuth_difference",
    "deg2rad",
    "rad2deg",
    "validate_elevation",
    "wrap_azimuth",
    "AngularGrid",
    "Orientation",
    "rotation_matrix_y",
    "rotation_matrix_z",
    "direction_vector",
    "vector_to_angles",
]
