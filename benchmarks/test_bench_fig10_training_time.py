"""Bench: regenerate Figure 10 (mutual training time vs. probes).

This one reproduces the paper's numbers *exactly* (same measured
constants): 1.27 ms for the 34-sector sweep, 0.55 ms for 14 probes, a
2.3× speed-up, and a training time linear in the probe count.
"""

import pytest

from repro.experiments import Fig10Config, run_fig10


def test_fig10_training_time(benchmark, report_rows):
    result = benchmark.pedantic(
        lambda: run_fig10(Fig10Config()), rounds=1, iterations=1
    )
    report_rows(result.format_rows())

    assert result.ssw_time_ms == pytest.approx(1.27, abs=0.005)
    assert result.reference_time_ms == pytest.approx(0.55, abs=0.005)
    assert result.speedup == pytest.approx(2.3, abs=0.05)

    # Linearity: constant increment of 2 * 18 us per extra probe pair.
    increments = [
        second - first for first, second in zip(result.css_time_ms, result.css_time_ms[1:])
    ]
    for increment in increments:
        assert increment == pytest.approx(2 * 2 * 18.0 / 1000.0, abs=1e-9)
