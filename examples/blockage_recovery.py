#!/usr/bin/env python3
"""Surviving a human crossing the link (extension of paper §7).

A person walks through the LOS of a 6 m conference-room link.  The
timeline compares three re-training strategies and prints the SNR the
link actually rides each second — watch the outage and the recovery.

Run:  python examples/blockage_recovery.py
"""

from repro.experiments import BlockageConfig, run_blockage_recovery


def sparkline(series, lo=-25.0, hi=18.0):
    glyphs = " .:-=+*#%@"
    cells = []
    for value in series:
        index = int((min(max(value, lo), hi) - lo) / (hi - lo) * (len(glyphs) - 1))
        cells.append(glyphs[index])
    return "".join(cells)


def main() -> None:
    config = BlockageConfig(n_intervals=40, blocked_from=12, blocked_until=28)
    print("running the blockage timeline (this builds the testbed once) ...")
    result = run_blockage_recovery(config)

    print()
    for row in result.format_rows():
        print(row)

    print("\nper-interval SNR (one glyph per second, blockage marked):")
    marker = (
        " " * config.blocked_from
        + "v" * (config.blocked_until - config.blocked_from)
    )
    print(f"{'':24s} {marker}")
    for strategy, series in result.timeline.items():
        print(f"{strategy:24s} {sparkline(series)}")
    print(f"{'':24s} (scale: ' '={-25} dB ... '@'={18} dB)")


if __name__ == "__main__":
    main()
