"""Integration-grade tests for stations and the SLS protocol engine."""

import numpy as np
import pytest

from repro.channel import MeasurementModel, lab_environment
from repro.geometry import Orientation
from repro.mac import (
    SSWFrame,
    Station,
    SweepSession,
    sweep_burst,
    transmit_beacon_burst,
)
from repro.phased_array import PhasedArray


@pytest.fixture
def stations():
    environment = lab_environment(3.0)
    initiator = Station(
        "ap", 1, PhasedArray.talon(np.random.default_rng(11)),
        position_m=environment.tx_position_m,
    )
    responder = Station(
        "sta", 2, PhasedArray.talon(np.random.default_rng(12)),
        position_m=environment.rx_position_m,
        orientation=Orientation(yaw_deg=180.0),
    )
    return environment, initiator, responder


class TestStation:
    def test_stock_station_blocks_research_apis(self, stations):
        _, initiator, _ = stations
        assert not initiator.is_jailbroken
        with pytest.raises(RuntimeError):
            initiator.drain_sweep_reports()
        with pytest.raises(RuntimeError):
            initiator.arm_sector_override(5)

    def test_jailbreak_is_idempotent(self, stations):
        _, initiator, _ = stations
        first = initiator.jailbreak()
        second = initiator.jailbreak()
        assert first is second
        assert set(first.installed_patches) == {
            "signal-strength-extraction",
            "sector-override",
        }

    def test_tx_weights_lookup(self, stations):
        _, initiator, _ = stations
        assert initiator.tx_weights(63) is initiator.codebook[63].weights


class TestSweepSession:
    def test_full_sweep_timing_and_framecount(self, stations, rng):
        environment, initiator, responder = stations
        session = SweepSession(initiator, responder, environment)
        result = session.run(rng)
        # 34 ISS + 34 RSS + feedback + ack frames on air.
        assert len(result.transmitted_frames) == 70
        assert result.duration_us == pytest.approx(1273.1, abs=0.2)

    def test_reduced_sweep_duration_scales(self, stations, rng):
        environment, initiator, responder = stations
        session = SweepSession(initiator, responder, environment)
        probes = [sector for _, sector in sweep_burst()][:14]
        result = session.run(
            rng, initiator_probe_ids=probes, responder_probe_ids=probes
        )
        assert len(result.transmitted_frames) == 30
        assert result.duration_us == pytest.approx(553.1, abs=0.2)

    def test_training_improves_over_default_sector(self, stations, rng):
        environment, initiator, responder = stations
        session = SweepSession(initiator, responder, environment)
        result = session.run(rng)
        # Facing stations should train onto strong frontal sectors and
        # both ends must adopt what the feedback carried.
        assert result.feedback_delivered
        assert initiator.tx_sector_id == result.initiator_tx_sector
        assert responder.tx_sector_id == result.responder_tx_sector

    def test_override_at_responder_steers_initiator(self, stations, rng):
        environment, initiator, responder = stations
        responder.jailbreak()
        responder.arm_sector_override(7)
        session = SweepSession(initiator, responder, environment)
        result = session.run(rng)
        assert result.initiator_tx_sector == 7

    def test_override_at_initiator_steers_responder(self, stations, rng):
        environment, initiator, responder = stations
        initiator.jailbreak()
        initiator.arm_sector_override(9)
        session = SweepSession(initiator, responder, environment)
        result = session.run(rng)
        assert result.responder_tx_sector == 9

    def test_drained_reports_match_sweep(self, stations, rng):
        environment, initiator, responder = stations
        responder.jailbreak()
        session = SweepSession(initiator, responder, environment)
        session.run(rng)
        reports = responder.drain_sweep_reports()
        assert reports, "close-range sweep must produce reports"
        sweep_sectors = {sector for _, sector in sweep_burst()}
        assert {report.sector_id for report in reports} <= sweep_sectors
        assert all(-7.0 <= report.snr_db <= 12.0 for report in reports)

    def test_frames_carry_schedule(self, stations, rng):
        environment, initiator, responder = stations
        session = SweepSession(initiator, responder, environment)
        result = session.run(rng)
        ssw_frames = [
            capture.frame
            for capture in result.transmitted_frames
            if isinstance(capture.frame, SSWFrame)
        ]
        initiator_frames = [f for f in ssw_frames if f.src == initiator.mac]
        observed = [(frame.cdown, frame.sector_id) for frame in initiator_frames]
        assert observed == sweep_burst()

    def test_monitor_capture(self, stations, rng):
        environment, initiator, responder = stations
        monitor = Station(
            "mon", 3, PhasedArray.talon(np.random.default_rng(13)),
            position_m=np.array([1.0, 1.0, 0.0]),
            orientation=Orientation(yaw_deg=-135.0),
        )
        session = SweepSession(initiator, responder, environment, monitor=monitor)
        result = session.run(rng)
        assert result.monitor_frames, "nearby monitor should capture frames"
        assert all(capture.snr_db is not None for capture in result.monitor_frames)


class TestBeaconBurst:
    def test_captures_subset_of_beacon_schedule(self, stations, rng):
        environment, initiator, _ = stations
        monitor = Station(
            "mon", 3, PhasedArray.talon(np.random.default_rng(13)),
            position_m=np.array([1.0, 1.0, 0.0]),
            orientation=Orientation(yaw_deg=-135.0),
        )
        captures = transmit_beacon_burst(initiator, environment, monitor, rng)
        assert captures
        from repro.mac import BEACON_SCHEDULE

        for capture in captures:
            assert BEACON_SCHEDULE[capture.frame.cdown] == capture.frame.sector_id
