"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only
enables ``pip install -e . --no-use-pep517`` on offline machines where
PEP 517 editable builds are unavailable.
"""

from setuptools import setup

setup()
