"""Unit tests for angle arithmetic."""

import numpy as np
import pytest

from repro.geometry import (
    angular_distance,
    azimuth_difference,
    validate_elevation,
    wrap_azimuth,
)


class TestWrapAzimuth:
    def test_identity_inside_range(self):
        assert wrap_azimuth(45.0) == 45.0
        assert wrap_azimuth(-179.0) == -179.0

    def test_wraps_past_180(self):
        assert wrap_azimuth(190.0) == pytest.approx(-170.0)
        assert wrap_azimuth(360.0) == pytest.approx(0.0)
        assert wrap_azimuth(540.0) == pytest.approx(180.0)

    def test_wraps_negative(self):
        assert wrap_azimuth(-190.0) == pytest.approx(170.0)
        assert wrap_azimuth(-360.0) == pytest.approx(0.0)

    def test_boundary_convention_half_open(self):
        # (-180, 180]: +180 stays, -180 maps to +180.
        assert wrap_azimuth(180.0) == pytest.approx(180.0)
        assert wrap_azimuth(-180.0) == pytest.approx(180.0)

    def test_array_input_returns_array(self):
        result = wrap_azimuth(np.array([0.0, 270.0, -270.0]))
        assert isinstance(result, np.ndarray)
        np.testing.assert_allclose(result, [0.0, -90.0, 90.0])

    def test_scalar_input_returns_python_float(self):
        assert isinstance(wrap_azimuth(12.0), float)


class TestAzimuthDifference:
    def test_simple_difference(self):
        assert azimuth_difference(30.0, 10.0) == pytest.approx(20.0)

    def test_wraps_across_circle_seam(self):
        assert azimuth_difference(170.0, -170.0) == pytest.approx(-20.0)
        assert azimuth_difference(-170.0, 170.0) == pytest.approx(20.0)

    def test_antisymmetric_magnitude(self):
        assert abs(azimuth_difference(50.0, -40.0)) == abs(azimuth_difference(-40.0, 50.0))


class TestValidateElevation:
    def test_accepts_valid_range(self):
        assert validate_elevation(0.0) == 0.0
        assert validate_elevation(-90.0) == -90.0
        assert validate_elevation(90.0) == 90.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_elevation(91.0)
        with pytest.raises(ValueError):
            validate_elevation(np.array([0.0, -95.0]))


class TestAngularDistance:
    def test_zero_for_same_direction(self):
        assert angular_distance(30.0, 10.0, 30.0, 10.0) == pytest.approx(0.0)

    def test_pure_azimuth_at_equator(self):
        assert angular_distance(0.0, 0.0, 40.0, 0.0) == pytest.approx(40.0)

    def test_pure_elevation(self):
        assert angular_distance(25.0, 0.0, 25.0, 30.0) == pytest.approx(30.0)

    def test_symmetric(self):
        forward = angular_distance(10.0, 5.0, -30.0, 20.0)
        backward = angular_distance(-30.0, 20.0, 10.0, 5.0)
        assert forward == pytest.approx(backward)

    def test_azimuth_shrinks_at_high_elevation(self):
        # 40 deg of azimuth is a much shorter arc near the pole.
        at_pole = angular_distance(0.0, 80.0, 40.0, 80.0)
        at_equator = angular_distance(0.0, 0.0, 40.0, 0.0)
        assert at_pole < at_equator / 3.0

    def test_antipodal_points(self):
        assert angular_distance(0.0, 0.0, 180.0, 0.0) == pytest.approx(180.0)
