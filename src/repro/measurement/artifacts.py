"""Validated data-artifact registry with integrity checks.

Compressive selection only works because the selector *knows* the
measured patterns (PAPER.md §2.2) — which makes the shipped pattern
table a single point of failure: if its bytes rot, every downstream
consumer dies.  This module makes that failure observable and
recoverable:

* ``src/repro/data/MANIFEST.json`` pins the SHA-256 of every shipped
  artifact; :func:`verify_artifact` recomputes and compares digests.
* Every artifact registers the deterministic pipeline that produced it
  (:data:`ARTIFACTS`), so :func:`rebuild_artifact` can regenerate a
  manifest-matching copy from scratch — the shipped table is just one
  full Figure-6 chamber campaign at seed ``0x11AD2017``.
* Rebuilt copies land in a user cache directory
  (:func:`cache_dir`; override with ``$REPRO_CACHE_DIR``) so a damaged
  install heals once and loads fast afterwards.

The CLI front-end is ``repro-bench artifacts verify|rebuild|info``.
"""

from __future__ import annotations

import hashlib
import importlib.resources
import json
import logging
import os
import pathlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactMissingError,
    ArtifactSchemaError,
)

__all__ = [
    "ARTIFACTS",
    "ArtifactSpec",
    "ArtifactStatus",
    "MANIFEST_RESOURCE",
    "MEMO_CACHE_VERSION",
    "PUBLISHED_PATTERNS_SEED",
    "artifact_path",
    "cache_dir",
    "cached_artifact_path",
    "load_manifest",
    "manifest_entry",
    "memo_key_digest",
    "memoized_table_path",
    "load_or_build_table",
    "rebuild_artifact",
    "sha256_of_file",
    "verify_all",
    "verify_artifact",
]

_LOGGER = logging.getLogger(__name__)

#: Package holding the shipped data files and their manifest.
_DATA_PACKAGE = "repro.data"

#: Package-relative name of the integrity manifest.
MANIFEST_RESOURCE = "MANIFEST.json"

#: Campaign seed that produced the shipped pattern table (the year the
#: paper appeared, spelled in 802.11ad).
PUBLISHED_PATTERNS_SEED = 0x11AD2017


def artifact_path(resource: str) -> pathlib.Path:
    """Filesystem path of a shipped data resource."""
    return pathlib.Path(
        str(importlib.resources.files(_DATA_PACKAGE).joinpath(resource))
    )


def sha256_of_file(path) -> str:
    """Hex SHA-256 digest of a file, streamed in chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Registry: every shipped artifact knows how to rebuild itself.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArtifactSpec:
    """One shipped artifact and its deterministic regeneration recipe.

    Attributes:
        resource: package-relative filename inside ``repro.data``.
        description: one-line human summary.
        build: writes a fresh, bit-identical copy to the given path.
    """

    resource: str
    description: str
    build: Callable[[str], None]


def _build_published_patterns(path: str) -> None:
    """Re-run the documented campaign that produced the shipped table.

    Exactly the public pipeline: the canonical default device
    (``PhasedArray.talon()`` with its fixed seed), the default campaign
    setup, and ``measure_3d_patterns`` at the paper's Figure-6
    resolution, all driven by ``PUBLISHED_PATTERNS_SEED``.  numpy's
    ``savez_compressed`` pins zip timestamps, so the output is
    reproducible bit for bit.
    """
    import numpy as np

    from ..phased_array import PhasedArray, talon_codebook
    from .campaign import PatternMeasurementCampaign, measure_3d_patterns

    rng = np.random.default_rng(PUBLISHED_PATTERNS_SEED)
    antenna = PhasedArray.talon()
    campaign = PatternMeasurementCampaign(antenna, talon_codebook(antenna))
    table = measure_3d_patterns(campaign, rng)
    table.save(path)


#: Registry of shipped artifacts, keyed by resource filename.
ARTIFACTS: Dict[str, ArtifactSpec] = {
    "talon_sector_patterns_3d.npz": ArtifactSpec(
        resource="talon_sector_patterns_3d.npz",
        description=(
            "Canonical Talon AD7200 3D sector-pattern table: one Figure-6 "
            "resolution chamber campaign (azimuth ±90° at 1.8°, elevation "
            "0–32.4° at 3.6°, 3 sweeps) of the default device"
        ),
        build=_build_published_patterns,
    ),
}


# ----------------------------------------------------------------------
# Manifest.
# ----------------------------------------------------------------------


def load_manifest() -> Dict:
    """Parse ``repro/data/MANIFEST.json``.

    Raises:
        ArtifactMissingError: the manifest itself is gone.
        ArtifactCorruptError: the manifest is not valid JSON.
        ArtifactSchemaError: the JSON lacks the ``artifacts`` table.
    """
    path = artifact_path(MANIFEST_RESOURCE)
    try:
        text = path.read_text()
    except FileNotFoundError as error:
        raise ArtifactMissingError(f"artifact manifest not found: {path}") from error
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as error:
        raise ArtifactCorruptError(f"artifact manifest '{path}' is not valid JSON: {error}") from error
    if not isinstance(manifest, dict) or not isinstance(manifest.get("artifacts"), dict):
        raise ArtifactSchemaError(
            f"artifact manifest '{path}' must contain an 'artifacts' object"
        )
    return manifest


def manifest_entry(name: str) -> Dict:
    """The manifest record of one artifact.

    Raises:
        ArtifactSchemaError: the artifact is not listed, or its record
            carries no usable ``sha256`` field.
    """
    entries = load_manifest()["artifacts"]
    if name not in entries:
        raise ArtifactSchemaError(
            f"artifact '{name}' is not listed in {MANIFEST_RESOURCE} "
            f"(known: {', '.join(sorted(entries)) or 'none'})"
        )
    entry = entries[name]
    if not isinstance(entry, dict) or not isinstance(entry.get("sha256"), str):
        raise ArtifactSchemaError(
            f"manifest entry for '{name}' must be an object with a 'sha256' string"
        )
    return entry


# ----------------------------------------------------------------------
# Verification.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArtifactStatus:
    """Outcome of one integrity check."""

    name: str
    path: str
    status: str  # "ok" | "missing" | "digest-mismatch"
    expected_sha256: str
    actual_sha256: Optional[str] = None
    size_bytes: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def verify_artifact(name: str, path: Optional[str] = None) -> ArtifactStatus:
    """Check one artifact's bytes against its manifest digest.

    Args:
        name: manifest key (resource filename).
        path: file to check; defaults to the shipped in-package copy.
    """
    entry = manifest_entry(name)
    target = pathlib.Path(path) if path is not None else artifact_path(name)
    expected = entry["sha256"]
    if not target.is_file():
        return ArtifactStatus(name, str(target), "missing", expected)
    actual = sha256_of_file(target)
    size = target.stat().st_size
    status = "ok" if actual == expected else "digest-mismatch"
    return ArtifactStatus(name, str(target), status, expected, actual, size)


def verify_all() -> List[ArtifactStatus]:
    """Verify every file listed in the manifest."""
    return [verify_artifact(name) for name in sorted(load_manifest()["artifacts"])]


# ----------------------------------------------------------------------
# Rebuild + cache.
# ----------------------------------------------------------------------


def cache_dir() -> pathlib.Path:
    """Directory for locally rebuilt artifacts.

    ``$REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro`` or
    ``~/.cache/repro``.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


def cached_artifact_path(name: str) -> pathlib.Path:
    """Where a locally rebuilt copy of an artifact is cached."""
    return cache_dir() / name


# ----------------------------------------------------------------------
# Digest-keyed memoization of derived pattern tables.
# ----------------------------------------------------------------------

#: Version salt mixed into every memo key.  Bump when any code that
#: feeds a memoized build (campaign physics, codebooks, antennas, the
#: measurement model) changes behavior — the key only encodes the
#: *parameters* of a build, not the code that interprets them.
MEMO_CACHE_VERSION = 1

#: Environment variable that disables the on-disk table memo when set
#: to ``0``/``off``/``no`` (the in-process memo is unaffected).
_MEMO_ENV = "REPRO_TESTBED_CACHE"


def _memo_enabled() -> bool:
    return os.environ.get(_MEMO_ENV, "1").strip().lower() not in ("0", "off", "no")


def memo_key_digest(params: Dict) -> str:
    """Stable digest of a memo key: canonical JSON of the parameters."""
    payload = json.dumps(
        {"memo_version": MEMO_CACHE_VERSION, **params}, sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def memoized_table_path(params: Dict) -> pathlib.Path:
    """Cache location for the table built from these parameters."""
    return cache_dir() / "testbeds" / f"{memo_key_digest(params)[:32]}.npz"


def load_or_build_table(
    params: Dict,
    build: Callable[[], "object"],
    validate: Optional[Callable[[object], bool]] = None,
):
    """Digest-keyed on-disk memoization of a derived ``PatternTable``.

    The key is the canonical JSON of ``params`` (salted with
    :data:`MEMO_CACHE_VERSION`), so a build is paid once per machine
    rather than once per process.  A cached file that fails to load,
    fails its own embedded digest check, or fails the caller's
    ``validate`` hook is discarded and rebuilt — corruption degrades to
    a rebuild, never to wrong data.  ``$REPRO_TESTBED_CACHE=0`` (or the
    cache directory being unwritable) degrades to plain building.
    """
    from .patterns import PatternTable

    path = memoized_table_path(params)
    if _memo_enabled() and path.is_file():
        try:
            table = PatternTable.load(path)
        except (ArtifactError, ValueError, OSError, KeyError, EOFError) as error:
            _LOGGER.warning(
                "discarding unreadable memoized table %s (%s); rebuilding", path, error
            )
        else:
            if validate is None or validate(table):
                return table
            _LOGGER.warning(
                "memoized table %s does not match the requested build; rebuilding",
                path,
            )
    table = build()
    if _memo_enabled():
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.stem}.memo.tmp{path.suffix}")
            table.save(str(tmp))
            os.replace(tmp, path)
        except OSError as error:
            _LOGGER.warning("could not memoize table at %s: %s", path, error)
    return table


def rebuild_artifact(
    name: str, dest: Optional[str] = None, check: bool = True
) -> pathlib.Path:
    """Regenerate an artifact from its registered pipeline.

    Args:
        name: registry key (resource filename).
        dest: output path; defaults to the shipped in-package location
            (i.e. repairs the install in place).
        check: verify the rebuilt bytes against the manifest digest and
            raise :class:`ArtifactCorruptError` on mismatch — a mismatch
            means the generation pipeline drifted from the manifest.

    Returns:
        The path of the rebuilt file.
    """
    if name not in ARTIFACTS:
        raise ArtifactSchemaError(
            f"no registered rebuild pipeline for artifact '{name}' "
            f"(known: {', '.join(sorted(ARTIFACTS))})"
        )
    target = pathlib.Path(dest) if dest is not None else artifact_path(name)
    target.parent.mkdir(parents=True, exist_ok=True)
    # numpy's savez appends ".npz" to bare paths, so keep the suffix last.
    tmp = target.with_name(f"{target.stem}.rebuild.tmp{target.suffix}")
    ARTIFACTS[name].build(str(tmp))
    try:
        if check:
            actual = sha256_of_file(tmp)
            expected = manifest_entry(name)["sha256"]
            if actual != expected:
                raise ArtifactCorruptError(
                    f"rebuilt '{name}' does not match its manifest digest "
                    f"(expected {expected}, got {actual}); the regeneration "
                    f"pipeline and MANIFEST.json have diverged"
                )
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            tmp.unlink()
    _LOGGER.info("rebuilt artifact '%s' at %s", name, target)
    return target
