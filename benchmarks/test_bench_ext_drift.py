"""Bench (extension): pattern aging — how stale may the table get?

Expected shape: CSS degrades gracefully as the hardware drifts away
from the chamber-measured table — a fraction of a dB of extra loss for
moderate drift (≈0.2 rad per element), visible but bounded degradation
even at 0.8 rad.  The practical answer to "how often must a fleet
re-calibrate": rarely.
"""

from repro.experiments import DriftConfig, run_pattern_drift


def test_pattern_drift(benchmark, report_rows):
    result = benchmark.pedantic(
        lambda: run_pattern_drift(DriftConfig()), rounds=1, iterations=1
    )
    report_rows(result.format_rows())

    fresh = result.snr_loss_db[0]
    # Degradation exists and is monotone-ish toward heavy drift.
    assert result.snr_loss_db[-1] > fresh
    # Moderate drift (0.2 rad ~ 11 deg per element) costs < 2 dB extra.
    moderate = result.snr_loss_db[result.drift_levels_rad.index(0.2)]
    assert moderate < fresh + 2.0
    # Even heavy drift does not collapse the protocol.
    assert result.snr_loss_db[-1] < fresh + 5.0
