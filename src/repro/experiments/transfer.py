"""Extension experiment: cross-device pattern transfer (§4.5 caveat).

"Our measurements capture the radiation characteristics for one
particular device.  Although we have confirmed that different devices
exhibit similar patterns with slight variations, other Talon AD7200
devices might behave differently."

This experiment quantifies that caveat: a *second* device (same
codebook design, different per-element hardware flaws) runs CSS in the
conference room using (a) its **own** chamber-measured patterns and
(b) the patterns measured on the **first** device.  The gap tells a
practitioner whether one lab campaign can serve a whole fleet.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict, List

import numpy as np

from ..channel.environment import conference_room
from ..core.policy import CompressivePolicy
from ..geometry.angles import azimuth_difference
from ..measurement.campaign import CampaignConfig, PatternMeasurementCampaign
from ..phased_array.array import PhasedArray
from ..phased_array.talon import talon_codebook
from ..runtime.registry import register_scenario
from ..runtime.runner import ScenarioRunner
from ..runtime.spec import ScenarioSpec
from .common import record_directions

__all__ = ["TransferConfig", "TransferResult", "run_pattern_transfer", "transfer_spec"]


@dataclass(frozen=True)
class TransferConfig:
    seed: int = 29
    second_device_seed: int = 4242
    n_probes: int = 14
    azimuth_step_deg: float = 10.0
    n_sweeps: int = 6


@dataclass
class TransferResult:
    azimuth_error_deg: Dict[str, float]
    snr_loss_db: Dict[str, float]

    def format_rows(self) -> List[str]:
        rows = [
            "pattern transfer (extension): whose table does device B use?",
            "table source        | az err [deg] | SNR loss [dB]",
        ]
        for name in self.azimuth_error_deg:
            rows.append(
                f"{name:19s} | {self.azimuth_error_deg[name]:12.2f} | "
                f"{self.snr_loss_db[name]:13.2f}"
            )
        return rows


def transfer_spec(config: TransferConfig = TransferConfig()) -> ScenarioSpec:
    """The declarative form of a pattern-transfer run."""
    params = {key: value for key, value in asdict(config).items() if key != "seed"}
    return ScenarioSpec(scenario="transfer", seed=config.seed, params=params)


def _config_from_spec(spec: ScenarioSpec) -> TransferConfig:
    return TransferConfig(seed=spec.seed, **spec.params)


@register_scenario("transfer", default_spec=transfer_spec)
def _run_transfer_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> TransferResult:
    """Cross-device pattern transfer: own vs. foreign chamber table."""
    config = _config_from_spec(spec)
    testbed = spec.testbed.build()
    rng = np.random.default_rng(config.seed)

    # Device B: identical codebook design, different hardware flaws.
    device_b = PhasedArray.talon(np.random.default_rng(config.second_device_seed))
    codebook_b = talon_codebook(device_b)
    campaign = PatternMeasurementCampaign(
        device_b,
        codebook_b,
        reference_antenna=testbed.ref_antenna,
        reference_codebook=testbed.ref_codebook,
        measurement_model=testbed.measurement_model,
    )
    grid = testbed.pattern_table.grid
    own_table = campaign.run(
        CampaignConfig(
            azimuths_deg=grid.azimuths_deg,
            elevations_deg=grid.elevations_deg,
            n_sweeps=3,
        ),
        rng,
    )

    # Record sweeps with device B on the rotation head.
    testbed_b = replace(testbed, dut_antenna=device_b, dut_codebook=codebook_b)
    azimuths = np.arange(-60.0, 60.0 + 1e-9, config.azimuth_step_deg)
    recordings = record_directions(
        testbed_b, conference_room(6.0), azimuths, [0.0], config.n_sweeps, rng
    )
    tx_ids = codebook_b.tx_sector_ids
    column_of = {sector_id: column for column, sector_id in enumerate(tx_ids)}

    # Paired comparison: both tables judge the *same* probe draws, so
    # the plan is drawn once (scalar order) and each policy replays it
    # in sequence.  Live pattern tables are not spec-serializable, so
    # the policies are built directly — `reset="plan"` keeps each one's
    # state threading through all trials like the one-big-batch loop.
    context = runner.context(testbed_b)
    policies = {
        "own (device B)": CompressivePolicy(
            context, n_probes=config.n_probes, pattern_table=own_table
        ),
        "foreign (device A)": CompressivePolicy(
            context, n_probes=config.n_probes, pattern_table=testbed.pattern_table
        ),
    }
    blocks = runner.plan_trials(
        next(iter(policies.values())), recordings, tx_ids, rng
    )
    errors: Dict[str, List[float]] = {name: [] for name in policies}
    losses: Dict[str, List[float]] = {name: [] for name in policies}
    for name, policy in policies.items():
        records = runner.execute(policy, blocks, reset="plan", label=name)
        for record in records:
            recording = recordings[record.recording_index]
            result = record.result
            if result.estimate is not None:
                errors[name].append(
                    abs(
                        azimuth_difference(
                            result.estimate.azimuth_deg, recording.azimuth_deg
                        )
                    )
                )
            losses[name].append(
                recording.optimal_snr_db()
                - recording.true_snr_db[column_of[result.sector_id]]
            )

    return TransferResult(
        azimuth_error_deg={name: float(np.mean(errors[name])) for name in policies},
        snr_loss_db={name: float(np.mean(losses[name])) for name in policies},
    )


def run_pattern_transfer(config: TransferConfig = TransferConfig()) -> TransferResult:
    """Evaluate CSS on a second device with own vs. foreign patterns."""
    return ScenarioRunner().run(transfer_spec(config)).result
