#!/usr/bin/env python3
"""Quickstart: measure patterns once, then select sectors compressively.

Walks the paper's whole pipeline on a simulated Talon AD7200 pair:

1. jailbreak a router (install the firmware patches of §3),
2. measure its 3D sector patterns in a simulated anechoic chamber (§4),
3. run compressive sector selection with 14 of 34 probes (§2), and
4. compare the outcome and training time against the full sweep.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.channel import LinkBudget, anechoic_chamber, lab_environment
from repro.channel.batch import sweep_snr_matrix
from repro.core import (
    CompressiveSectorSelector,
    ProbeMeasurement,
    RandomProbeStrategy,
    SectorSweepSelector,
)
from repro.geometry import Orientation
from repro.mac.timing import mutual_training_time_us, training_speedup
from repro.measurement import PatternMeasurementCampaign, measure_3d_patterns
from repro.phased_array import PhasedArray, talon_codebook


def main() -> None:
    rng = np.random.default_rng(2017)

    # --- The devices: two Talon-like routers. -------------------------
    router = PhasedArray.talon(np.random.default_rng(1))
    codebook = talon_codebook(router)
    reference = PhasedArray.talon(np.random.default_rng(2))
    reference_codebook = talon_codebook(reference)
    print(f"array: {router.n_elements} elements, "
          f"{codebook.n_tx_sectors} TX sectors + quasi-omni RX")

    # --- Step 1+2: chamber campaign -> measured 3D patterns. ----------
    campaign = PatternMeasurementCampaign(
        router, codebook,
        reference_antenna=reference, reference_codebook=reference_codebook,
        environment=anechoic_chamber(3.0),
    )
    print("measuring 3D sector patterns in the chamber ...")
    patterns = measure_3d_patterns(
        campaign, rng, azimuth_step_deg=3.6, elevation_step_deg=7.2, n_sweeps=2
    )
    print(f"pattern table: {patterns.n_sectors} sectors on a "
          f"{patterns.grid.n_elevation}x{patterns.grid.n_azimuth} grid")

    # --- Step 3: deploy in a lab; the peer sits at device-frame 25 deg.
    environment = lab_environment(3.0)
    budget = LinkBudget()
    true_direction = (25.0, 8.0)
    orientation = Orientation(yaw_deg=-true_direction[0], pitch_deg=-true_direction[1])
    truth = sweep_snr_matrix(
        environment, router, codebook, codebook.tx_sector_ids, [orientation],
        reference, reference_codebook.rx_sector.weights, budget=budget,
    )[0]
    from repro.channel import MeasurementModel
    firmware = MeasurementModel()

    def probe(sector_ids):
        """One reduced sector sweep through the firmware's reporting."""
        measurements = []
        for sector_id in sector_ids:
            column = codebook.tx_sector_ids.index(sector_id)
            observation = firmware.observe(truth[column], budget.noise_floor_dbm, rng)
            if observation is not None:
                measurements.append(ProbeMeasurement(
                    sector_id, observation.snr_db, observation.rssi_dbm))
        return measurements

    css = CompressiveSectorSelector(patterns)
    probe_ids = RandomProbeStrategy().choose(14, codebook.tx_sector_ids, rng)
    result = css.select(probe(probe_ids))
    estimate = result.estimate
    print(f"\ncompressive selection (14 probes): sector {result.sector_id}")
    print(f"  estimated direction ({estimate.azimuth_deg:+.1f}, "
          f"{estimate.elevation_deg:+.1f}) deg — truth ({true_direction[0]:+.1f}, "
          f"{true_direction[1]:+.1f})")

    # --- Step 4: compare with the exhaustive sweep. --------------------
    sweep = SectorSweepSelector()
    full = sweep.select(probe(codebook.tx_sector_ids))
    best = codebook.tx_sector_ids[int(np.argmax(truth))]
    print(f"full sector sweep (34 probes):     sector {full.sector_id}")
    print(f"oracle (true best):                sector {best}")
    loss = truth.max() - truth[codebook.tx_sector_ids.index(result.sector_id)]
    print(f"CSS SNR loss vs oracle: {loss:.2f} dB")
    print(f"\ntraining time: CSS {mutual_training_time_us(14) / 1000:.2f} ms vs "
          f"SSW {mutual_training_time_us(34) / 1000:.2f} ms "
          f"({training_speedup(14):.1f}x speed-up)")


if __name__ == "__main__":
    main()
