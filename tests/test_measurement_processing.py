"""Unit tests for campaign post-processing (§4.3 pipeline)."""

import numpy as np
import pytest

from repro.measurement import interpolate_gaps, reject_outliers, robust_average


class TestRejectOutliers:
    def test_drops_far_samples(self):
        kept = reject_outliers([5.0, 5.2, 4.9, 5.1, 15.0])
        assert 15.0 not in kept
        assert len(kept) == 4

    def test_keeps_tight_cluster(self):
        samples = [3.0, 3.25, 2.75]
        np.testing.assert_allclose(reject_outliers(samples), samples)

    def test_small_sets_untouched(self):
        np.testing.assert_allclose(reject_outliers([1.0, 99.0]), [1.0, 99.0])

    def test_never_empties_the_set(self):
        kept = reject_outliers([0.0, 100.0, 200.0], max_deviation_db=1.0)
        assert len(kept) >= 1

    def test_symmetric_outliers(self):
        kept = reject_outliers([-20.0, 5.0, 5.1, 4.9, 30.0])
        np.testing.assert_allclose(sorted(kept), [4.9, 5.0, 5.1])


class TestRobustAverage:
    def test_mean_without_outlier(self):
        assert robust_average([5.0, 5.2, 4.8, 20.0]) == pytest.approx(5.0)

    def test_empty_is_nan_gap(self):
        assert np.isnan(robust_average([]))

    def test_single_sample(self):
        assert robust_average([7.25]) == 7.25


class TestInterpolateGaps:
    def test_fills_interior_gap_linearly(self):
        row = np.array([0.0, np.nan, 2.0])
        np.testing.assert_allclose(interpolate_gaps(row), [0.0, 1.0, 2.0])

    def test_extends_edges_with_nearest(self):
        row = np.array([np.nan, 1.0, np.nan])
        np.testing.assert_allclose(interpolate_gaps(row), [1.0, 1.0, 1.0])

    def test_2d_rows_independent(self):
        pattern = np.array([[0.0, np.nan, 4.0], [1.0, 1.0, 1.0]])
        result = interpolate_gaps(pattern)
        np.testing.assert_allclose(result[0], [0.0, 2.0, 4.0])
        np.testing.assert_allclose(result[1], 1.0)

    def test_all_nan_row_gets_floor(self):
        pattern = np.array([[np.nan, np.nan], [3.0, -5.0]])
        result = interpolate_gaps(pattern)
        np.testing.assert_allclose(result[0], -5.0)  # global minimum

    def test_explicit_floor(self):
        row = np.array([np.nan, np.nan])
        np.testing.assert_allclose(interpolate_gaps(row, floor_db=-7.0), -7.0)

    def test_no_nan_left_ever(self):
        pattern = np.array([[np.nan, 1.0, np.nan, np.nan, 3.0]])
        assert not np.isnan(interpolate_gaps(pattern)).any()

    def test_input_not_mutated(self):
        row = np.array([0.0, np.nan])
        interpolate_gaps(row)
        assert np.isnan(row[1])

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            interpolate_gaps(np.zeros((2, 2, 2)))
