"""Name → factory registries for policies and scenarios.

The registry is what makes specs *resolvable*: a
:class:`~.spec.PolicySpec` names a policy factory, a
:class:`~.spec.ScenarioSpec` names a scenario executor, and both sides
are plain dict lookups so a new policy or workload is one
``@register_policy`` / ``@register_scenario`` away — no edits to any
``experiments/`` module (the acceptance test registers a toy policy
exactly this way).

Registration contract:

* A **policy factory** has signature ``factory(context, **kwargs)``
  where ``context`` is a :class:`~.policy.PolicyContext` and
  ``kwargs`` are the spec's JSON kwargs.  It returns an object
  satisfying :class:`~.policy.SelectionPolicy`.
* A **scenario executor** has signature ``executor(spec, runner)`` and
  returns the experiment's result object.  ``default_spec`` (optional)
  builds the canonical spec for ``repro-bench run <name>``.

A third registry covers **probe designers** (the DESIGN.md §13 stage):
a ``probe_design`` block on a :class:`~.spec.PolicySpec` names a
designer factory with signature ``factory(pattern_table, **params)``
returning a :class:`~repro.core.probes.ProbeDesigner`.

Built-in registrations live next to the code they adapt
(``core/policy.py``, ``baselines/policy.py``, the experiment modules)
and are imported lazily by :func:`load_builtin` to keep import cycles
out of the package graph.  :func:`load_builtin` additionally scans the
``repro.policies`` and ``repro.probe_designers`` entry-point groups,
so third-party strategies *install* (``pip install``) rather than
import-register: an entry point may name a module whose import runs
the ``@register_*`` decorators, or a factory object directly (then
the entry-point name becomes the registry name).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from .policy import PolicyContext
from .spec import PolicySpec, ScenarioSpec

__all__ = [
    "ScenarioEntry",
    "register_policy",
    "register_scenario",
    "register_probe_designer",
    "build_policy",
    "build_probe_designer",
    "get_scenario",
    "scenario_spec",
    "available_policies",
    "available_scenarios",
    "available_probe_designers",
    "load_builtin",
]

_LOGGER = logging.getLogger(__name__)

PolicyFactory = Callable[..., Any]
DesignerFactory = Callable[..., Any]

#: Entry-point groups scanned by :func:`load_builtin`, mapped to the
#: registry a directly-exported factory lands in.
_ENTRY_POINT_GROUPS = ("repro.policies", "repro.probe_designers")

_POLICIES: Dict[str, PolicyFactory] = {}
_SCENARIOS: Dict[str, "ScenarioEntry"] = {}
_PROBE_DESIGNERS: Dict[str, DesignerFactory] = {}
_BUILTIN_LOADED = False


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario."""

    name: str
    executor: Callable[[ScenarioSpec, Any], Any]
    default_spec: Optional[Callable[[], ScenarioSpec]] = None
    description: str = ""


def register_policy(name: str) -> Callable[[PolicyFactory], PolicyFactory]:
    """Register a policy factory under ``name`` (decorator)."""

    def decorator(factory: PolicyFactory) -> PolicyFactory:
        _POLICIES[name] = factory
        return factory

    return decorator


def register_scenario(
    name: str,
    default_spec: Optional[Callable[[], ScenarioSpec]] = None,
    description: str = "",
) -> Callable[[Callable], Callable]:
    """Register a scenario executor under ``name`` (decorator)."""

    def decorator(executor: Callable) -> Callable:
        summary = description
        if not summary and executor.__doc__:
            summary = executor.__doc__.strip().splitlines()[0]
        _SCENARIOS[name] = ScenarioEntry(
            name=name,
            executor=executor,
            default_spec=default_spec,
            description=summary,
        )
        return executor

    return decorator


def register_probe_designer(
    name: str,
) -> Callable[[DesignerFactory], DesignerFactory]:
    """Register a probe-designer factory under ``name`` (decorator)."""

    def decorator(factory: DesignerFactory) -> DesignerFactory:
        _PROBE_DESIGNERS[name] = factory
        return factory

    return decorator


def build_policy(spec: PolicySpec, context: PolicyContext):
    """Resolve a policy spec to a live policy instance.

    A spec carrying a ``probe_design`` block forwards it as the
    ``probe_design`` kwarg — factories that do not take the stage
    (e.g. ``full-sweep``) reject it with the usual ``TypeError``.
    """
    load_builtin()
    factory = _POLICIES.get(spec.name)
    if factory is None:
        raise KeyError(
            f"unknown policy '{spec.name}'; registered: {available_policies()}"
        )
    kwargs = dict(spec.kwargs)
    if spec.probe_design is not None:
        kwargs["probe_design"] = dict(spec.probe_design)
    return factory(context, **kwargs)


def build_probe_designer(
    design: Union[str, Mapping[str, Any]], pattern_table
):
    """Resolve a ``probe_design`` block (or bare name) to a designer.

    ``design`` is either a registry name or a mapping
    ``{"designer": name, "params": {...}}`` — the canonical JSON form a
    :class:`~.spec.PolicySpec` carries.
    """
    load_builtin()
    if isinstance(design, str):
        name, params = design, {}
    else:
        data = dict(design)
        try:
            name = str(data.pop("designer"))
        except KeyError:
            raise ValueError(
                "a probe_design block must carry a 'designer' name"
            ) from None
        params = dict(data.pop("params", {}))
        if data:
            raise ValueError(
                f"unknown probe_design keys: {sorted(data)} "
                "(expected 'designer' and optional 'params')"
            )
    factory = _PROBE_DESIGNERS.get(name)
    if factory is None:
        raise KeyError(
            f"unknown probe designer '{name}'; "
            f"registered: {available_probe_designers()}"
        )
    return factory(pattern_table, **params)


def get_scenario(name: str) -> ScenarioEntry:
    """Look up a registered scenario by name."""
    load_builtin()
    entry = _SCENARIOS.get(name)
    if entry is None:
        raise KeyError(
            f"unknown scenario '{name}'; registered: {available_scenarios()}"
        )
    return entry


def scenario_spec(name: str) -> ScenarioSpec:
    """The canonical (default-config) spec of a named scenario."""
    entry = get_scenario(name)
    if entry.default_spec is None:
        raise KeyError(f"scenario '{name}' has no default spec; provide a JSON file")
    return entry.default_spec()


def available_policies() -> List[str]:
    load_builtin()
    return sorted(_POLICIES)


def available_scenarios() -> List[str]:
    load_builtin()
    return sorted(_SCENARIOS)


def available_probe_designers() -> List[str]:
    load_builtin()
    return sorted(_PROBE_DESIGNERS)


def _scan_entry_points() -> None:
    """Load ``repro.policies`` / ``repro.probe_designers`` entry points.

    A broken third-party plugin must never take the core registries
    down, so load failures are logged and skipped.  Entries exporting a
    callable that the import itself did not register are registered
    under the entry-point name (without clobbering built-ins).
    """
    from importlib import metadata

    for group in _ENTRY_POINT_GROUPS:
        try:
            entries = list(metadata.entry_points(group=group))
        except TypeError:  # pragma: no cover - pre-3.10 select API
            entries = list(metadata.entry_points().get(group, ()))
        for entry in entries:
            try:
                loaded = entry.load()
            except Exception as error:
                _LOGGER.warning(
                    "failed to load entry point %s (group %s): %s: %s",
                    entry.name,
                    group,
                    type(error).__name__,
                    error,
                )
                continue
            if callable(loaded):
                table = (
                    _POLICIES if group == "repro.policies" else _PROBE_DESIGNERS
                )
                table.setdefault(entry.name, loaded)


def load_builtin() -> None:
    """Import the modules that carry built-in registrations (idempotent)."""
    global _BUILTIN_LOADED
    if _BUILTIN_LOADED:
        return
    _BUILTIN_LOADED = True
    # Policies adapt code in core/ and baselines/; scenarios live in the
    # experiment modules and runtime/scenarios.py.  Imported here (not at
    # module top) so runtime <-> experiments never cycle at import time.
    from ..core import policy as _core_policy  # noqa: F401
    from ..baselines import policy as _baseline_policy  # noqa: F401
    from .. import experiments as _experiments  # noqa: F401
    from . import scenarios as _scenarios  # noqa: F401
    # Installed third-party plugins last: built-in names always win.
    _scan_entry_points()
