"""Angle-of-arrival estimation from compressive probes (Eqs. 3 and 5).

The estimator maximizes the correlation map over a discrete angular
grid.  Following §5, it can fuse the SNR-based and RSSI-based maps by
multiplication — the two values are acquired independently inside the
firmware, so an outlier in one rarely coincides with an outlier in the
other, and the product suppresses it.

Hot-path layout: the pattern matrix is sampled on the search grid
*and* converted to the correlation domain once at construction, so a
scalar :meth:`AngleEstimator.estimate` only transforms the ``M`` probe
values per call, and :meth:`AngleEstimator.estimate_batch` amortizes
the Python overhead over a whole padded trial matrix.  Both paths are
bit-for-bit identical to the reference scalar semantics (see
:mod:`.correlation`).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs as _obs
from ..obs import quality as _quality
from ..geometry.grid import AngularGrid
from ..measurement.patterns import PatternTable
from .correlation import (
    _correlate,
    _correlate_core,
    _to_domain,
    _unit_columns,
    prepare_pattern_matrix,
)
from .measurements import ProbeMeasurement

__all__ = ["AngleEstimate", "AngleEstimator"]

#: RSSI values are referenced to this nominal noise floor before the
#: linear-domain correlation; any constant works (the correlation is
#: scale-invariant) but keeping numbers small avoids float overflow.
_RSSI_REFERENCE_DBM = -71.5

#: Bound on the per-estimator memo of normalized pattern sub-matrices.
#: Probe schedules repeat the same sector subset across sweeps (fixed
#: probe-set strategies, the perf workload, tracking), so the memo turns
#: the per-call normalization into a dict hit; FIFO eviction keeps the
#: worst case (all-unique random subsets) at ~64 × M×K floats.
_UNIT_CACHE_LIMIT = 64

_LOGGER = logging.getLogger(__name__)


def _finite_argmax(surface: np.ndarray) -> int:
    """Index of the maximum *finite-aware* correlation value.

    ``np.argmax`` stops updating its running maximum at the first NaN
    (every comparison against NaN is False), so a single NaN grid point
    — a zero-norm pattern column, an overflow in the fused product —
    silently wins the whole argmax.  On NaN-free surfaces this is
    exactly ``surface.argmax()`` (bit-identical, no extra scan cost on
    the hot path); when the winner is NaN the argmax is retaken over
    the non-NaN entries, and an all-NaN surface keeps index 0, the
    value ``np.argmax`` would report.
    """
    best = int(surface.argmax())
    if not np.isnan(surface[best]):
        return best
    valid = np.flatnonzero(~np.isnan(surface))
    if valid.size == 0:
        return best
    return int(valid[surface[valid].argmax()])


@dataclass(frozen=True)
class AngleEstimate:
    """Result of one angle-of-arrival estimation.

    ``grid_index`` is the flat search-grid index of the argmax when the
    estimate came from a grid search (``None`` for estimators that
    interpolate off-grid, e.g. out-of-band assistance).  It equals
    ``search_grid.nearest_index(azimuth_deg, elevation_deg)`` and lets
    Eq. 4 skip that lookup.
    """

    azimuth_deg: float
    elevation_deg: float
    correlation: float
    n_probes_used: int
    grid_index: Optional[int] = None


class AngleEstimator:
    """Correlation-based estimator over a measured pattern table."""

    def __init__(
        self,
        pattern_table: PatternTable,
        search_grid: Optional[AngularGrid] = None,
        domain: str = "linear",
        fusion: str = "product",
        precomputed: Optional[Dict[str, np.ndarray]] = None,
    ):
        """
        Args:
            pattern_table: measured sector patterns (Figures 5/6 data).
            search_grid: grid for the numeric argmax of Eq. 3; defaults
                to the table's own measurement grid.
            domain: correlation domain (see :mod:`.correlation`).
            fusion: ``"product"`` fuses the SNR and RSSI maps (Eq. 5);
                ``"snr"`` / ``"rssi"`` use one map alone (Eq. 3).
            precomputed: optional ``pattern_matrix`` / ``prepared_matrix``
                arrays to adopt instead of sampling the table on the
                grid — the zero-copy path for pool workers attaching a
                published shared-memory segment (see
                :mod:`repro.runtime.shm`).  Arrays must be byte copies
                of what construction would compute (deterministic in
                the table + grid), so adopting them is bit-invisible.
        """
        if fusion not in ("product", "snr", "rssi"):
            raise ValueError("fusion must be 'product', 'snr' or 'rssi'")
        self.pattern_table = pattern_table
        self.search_grid = search_grid if search_grid is not None else pattern_table.grid
        self.domain = domain
        self.fusion = fusion
        # Precompute the (n_sectors, n_grid_points) matrix once, in both
        # the native dB domain and the correlation domain.  Gathering
        # rows of the pre-transformed matrix is bitwise identical to
        # transforming the gathered rows (the transform is elementwise),
        # so per-estimate work never touches the (M, K) pattern slice.
        expected_shape = (len(pattern_table.sector_ids), self.search_grid.n_points)
        if precomputed is not None:
            matrix = precomputed["pattern_matrix"]
            prepared = precomputed["prepared_matrix"]
            if matrix.shape != expected_shape or prepared.shape != expected_shape:
                raise ValueError(
                    f"precomputed kernel shape {matrix.shape}/{prepared.shape} "
                    f"does not match {expected_shape}"
                )
            self._matrix = matrix
            self._prepared = prepared
        else:
            self._matrix = pattern_table.sample_matrix(self.search_grid)
            self._prepared = prepare_pattern_matrix(self._matrix, domain)
        self._row_of_sector: Dict[int, int] = {
            sector_id: row for row, sector_id in enumerate(pattern_table.sector_ids)
        }
        self._known_sectors = frozenset(self._row_of_sector)
        # Dense sector-id -> row lookup for the batched path (-1 = unknown).
        max_id = max(self._row_of_sector, default=0)
        lookup = np.full(max_id + 1, -1, dtype=np.intp)
        for sector_id, row in self._row_of_sector.items():
            lookup[sector_id] = row
        self._row_lookup = lookup
        self._needs_snr = fusion in ("product", "snr")
        self._needs_rssi = fusion in ("product", "rssi")
        self._unit_cache: Dict[Tuple[int, ...], np.ndarray] = {}

    def known_sector_ids(self) -> List[int]:
        """Sectors with a measured pattern (usable as probes)."""
        return list(self._row_of_sector)

    def has_sector(self, sector_id: int) -> bool:
        """O(1): does this sector have a measured pattern?"""
        return sector_id in self._known_sectors

    def _row_indices(self, measurements: Sequence[ProbeMeasurement]) -> List[int]:
        try:
            return [self._row_of_sector[m.sector_id] for m in measurements]
        except KeyError as error:
            raise KeyError(f"no measured pattern for probed sector {error.args[0]}") from None

    def _usable_measurements(
        self, measurements: Sequence[ProbeMeasurement]
    ) -> List[ProbeMeasurement]:
        """Drop probes whose reported values are non-finite.

        Firmware reports occasionally carry NaN/inf after parse bugs or
        truncated ring-buffer reads; left alone they poison the whole
        correlation map (and :func:`_finite_argmax` would then have to
        discard most of the surface).
        Only the channels the fusion mode actually uses are checked;
        kept and dropped are partitioned in a single pass.

        Raises:
            ValueError: fewer than two finite measurements remain.
        """
        kept: List[ProbeMeasurement] = []
        dropped_sectors: List[int] = []
        for measurement in measurements:
            if (self._needs_snr and not math.isfinite(measurement.snr_db)) or (
                self._needs_rssi and not math.isfinite(measurement.rssi_dbm)
            ):
                dropped_sectors.append(measurement.sector_id)
            else:
                kept.append(measurement)
        if dropped_sectors:
            _LOGGER.warning(
                "dropped %d of %d probe measurements with non-finite "
                "snr/rssi values (sectors %s)",
                len(dropped_sectors),
                len(measurements),
                sorted(dropped_sectors),
            )
        if len(kept) < 2:
            if dropped_sectors:
                raise ValueError(
                    f"need at least two finite probe measurements to correlate "
                    f"({len(dropped_sectors)} of {len(measurements)} were non-finite)"
                )
            raise ValueError("need at least two probe measurements to correlate")
        return kept

    def correlation_surface(
        self, measurements: Sequence[ProbeMeasurement]
    ) -> np.ndarray:
        """The fused correlation map over the search grid, flattened.

        Shape ``(grid.n_points,)``; reshape to ``grid.shape`` to plot.
        Non-finite probe values are dropped (with a logged count)
        before correlating.
        """
        return self._surface(self._usable_measurements(measurements))

    def _pattern_unit(self, rows) -> np.ndarray:
        """Unit-column pattern sub-matrix for these rows, memoized.

        The memo value is exactly ``_unit_columns(self._prepared[rows])``
        so hits are bitwise identical to recomputing; the caller must
        not mutate the returned array.
        """
        key = tuple(rows.tolist()) if isinstance(rows, np.ndarray) else tuple(rows)
        cache = self._unit_cache
        unit = cache.get(key)
        if unit is None:
            _obs.inc("estimator_unit_cache_total", result="miss")
            unit = _unit_columns(self._prepared[rows])
            if len(cache) >= _UNIT_CACHE_LIMIT:
                cache.pop(next(iter(cache)))
            cache[key] = unit
        else:
            _obs.inc("estimator_unit_cache_total", result="hit")
        return unit

    def _surface(self, measurements: Sequence[ProbeMeasurement]) -> np.ndarray:
        """Correlate already-validated measurements against the grid."""
        rows = self._row_indices(measurements)
        pattern_unit = self._pattern_unit(rows)
        surface = None
        if self._needs_snr:
            snr_values = np.array([m.snr_db for m in measurements])
            surface = _correlate(_to_domain(snr_values, self.domain), pattern_unit)
        if self._needs_rssi:
            rssi_values = np.array(
                [m.rssi_dbm - _RSSI_REFERENCE_DBM for m in measurements]
            )
            rssi_surface = _correlate(_to_domain(rssi_values, self.domain), pattern_unit)
            surface = rssi_surface if surface is None else surface * rssi_surface
        return surface

    def estimate(self, measurements: Sequence[ProbeMeasurement]) -> AngleEstimate:
        """Eq. 3 / Eq. 5: the grid direction with maximum correlation.

        ``n_probes_used`` counts only the finite measurements that
        actually entered the correlation.
        """
        _obs.inc("estimator_calls_total", path="scalar")
        measurements = self._usable_measurements(measurements)
        surface = self._surface(measurements)
        best_index = _finite_argmax(surface)
        if _quality.quality_context() is not None:
            _quality.record_peak_ratio(surface, best_index, len(measurements))
        azimuth, elevation = self.search_grid.index_to_angles(best_index)
        return AngleEstimate(
            azimuth_deg=azimuth,
            elevation_deg=elevation,
            correlation=float(surface[best_index]),
            n_probes_used=len(measurements),
            grid_index=best_index,
        )

    # ------------------------------------------------------------------
    # Batched throughput path.
    # ------------------------------------------------------------------

    def _batch_arrays(
        self,
        sector_ids: np.ndarray,
        snr_db: Optional[np.ndarray],
        rssi_dbm: Optional[np.ndarray],
        mask: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        """Validate a padded batch and return (rows, usable, snr_t, rssi_t).

        ``usable`` marks entries that are both valid (per ``mask``) and
        finite in every channel the fusion mode uses — the batched
        analogue of :meth:`_usable_measurements`.  ``snr_t``/``rssi_t``
        are the padded channels already transformed into the correlation
        domain (garbage in masked-out slots, which is never gathered).
        """
        ids = np.asarray(sector_ids)
        if ids.ndim != 2:
            raise ValueError("sector_ids must be 2-D (trials x probe slots)")
        ids = ids.astype(np.intp, copy=False)
        shape = ids.shape
        if mask is None:
            usable = np.ones(shape, dtype=bool)
        else:
            usable = np.asarray(mask, dtype=bool).copy()
            if usable.shape != shape:
                raise ValueError(
                    f"mask shape {usable.shape} does not match sector_ids "
                    f"shape {shape}"
                )

        def channel(values, name):
            if values is None:
                raise ValueError(f"fusion '{self.fusion}' requires {name} values")
            values = np.asarray(values, dtype=float)
            if values.shape != shape:
                raise ValueError(
                    f"{name} shape {values.shape} does not match sector_ids "
                    f"shape {shape}"
                )
            return values

        snr = channel(snr_db, "snr_db") if self._needs_snr else None
        rssi = channel(rssi_dbm, "rssi_dbm") if self._needs_rssi else None
        if snr is not None:
            usable &= np.isfinite(snr)
        if rssi is not None:
            usable &= np.isfinite(rssi)

        in_range = (ids >= 0) & (ids < self._row_lookup.size)
        rows = np.where(
            in_range, self._row_lookup[np.clip(ids, 0, self._row_lookup.size - 1)], -1
        )
        unknown = usable & (rows < 0)
        if unknown.any():
            first = int(ids[unknown][0])
            raise KeyError(f"no measured pattern for probed sector {first}")

        with np.errstate(invalid="ignore", over="ignore"):
            snr_t = None if snr is None else _to_domain(snr, self.domain)
            rssi_t = (
                None
                if rssi is None
                else _to_domain(rssi - _RSSI_REFERENCE_DBM, self.domain)
            )
        return rows, usable, snr_t, rssi_t

    def estimate_batch(
        self,
        sector_ids: np.ndarray,
        snr_db: Optional[np.ndarray] = None,
        rssi_dbm: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> List[Optional[AngleEstimate]]:
        """Eq. 3 / Eq. 5 over a padded batch of probe sweeps.

        Row ``t`` describes one sweep's probes in slot order: sector ids
        in ``sector_ids[t]``, their reported values in ``snr_db[t]`` /
        ``rssi_dbm[t]`` (whichever channels the fusion mode uses), and
        ``mask[t]`` flagging slots that actually carry a report (padded
        slots may hold anything).  Each row reproduces
        ``estimate([...])`` on its valid, finite measurements **bit for
        bit**; rows with fewer than two such measurements yield ``None``
        instead of raising, because padded batches legitimately contain
        under-filled trials that callers want to skip.

        Returns:
            One :class:`AngleEstimate` (or ``None``) per row.
        """
        rows, usable, snr_t, rssi_t = self._batch_arrays(
            sector_ids, snr_db, rssi_dbm, mask
        )
        _obs.inc("estimator_calls_total", path="batched")
        _obs.inc("estimator_batch_rows_total", rows.shape[0])
        quality_on = _quality.quality_context() is not None
        estimates: List[Optional[AngleEstimate]] = []
        for trial in range(rows.shape[0]):
            index = np.flatnonzero(usable[trial])
            if index.size < 2:
                estimates.append(None)
                continue
            pattern_unit = self._pattern_unit(rows[trial, index])
            surface = None
            if snr_t is not None:
                surface = _correlate(snr_t[trial, index], pattern_unit)
            if rssi_t is not None:
                rssi_surface = _correlate(rssi_t[trial, index], pattern_unit)
                surface = rssi_surface if surface is None else surface * rssi_surface
            best_index = _finite_argmax(surface)
            if quality_on:
                _quality.record_peak_ratio(surface, best_index, int(index.size))
            azimuth, elevation = self.search_grid.index_to_angles(best_index)
            estimates.append(
                AngleEstimate(
                    azimuth_deg=azimuth,
                    elevation_deg=elevation,
                    correlation=float(surface[best_index]),
                    n_probes_used=int(index.size),
                    grid_index=best_index,
                )
            )
        return estimates

    def estimate_fused_arrays(
        self,
        sector_ids: np.ndarray,
        snr_db: Optional[np.ndarray] = None,
        rssi_dbm: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused correlate→finite-argmax pass over a padded batch.

        The array-level core of :meth:`estimate_batch`: one ``nonzero``
        compacts every usable (valid **and** finite) entry of the batch
        into flat arrays up front, then each row's slice is correlated
        against its memoized unit sub-matrix and reduced to its
        finite-aware argmax immediately — no per-row fancy indexing, no
        ``(T, K)`` correlation-surface materialization, and a single
        ``np.errstate`` entry for the whole batch.  Every row computes
        exactly the values :meth:`estimate_batch` would (same compacted
        operands, same arithmetic core, same argmax), so downstream
        consumers are bit-for-bit identical.

        Returns:
            ``(n_probes, best_index, best_corr)`` arrays of length
            ``T``.  Rows with fewer than two usable measurements — the
            rows :meth:`estimate_batch` maps to ``None`` — carry
            ``best_index == -1`` and ``best_corr == NaN``.
        """
        rows, usable, snr_t, rssi_t = self._batch_arrays(
            sector_ids, snr_db, rssi_dbm, mask
        )
        _obs.inc("estimator_calls_total", path="fused")
        _obs.inc("estimator_batch_rows_total", rows.shape[0])
        n_trials = rows.shape[0]
        n_probes = usable.sum(axis=1)
        best_index = np.full(n_trials, -1, dtype=np.intp)
        best_corr = np.full(n_trials, np.nan)
        # Single compaction pass: row-major nonzero visits each row's
        # usable columns in ascending order — the same order
        # ``np.flatnonzero(usable[trial])`` yields — so basic slices of
        # the flat gathers are bitwise the per-row gathers.
        row_idx, col_idx = np.nonzero(usable)
        ends = np.cumsum(n_probes)
        rows_c = rows[row_idx, col_idx]
        snr_c = None if snr_t is None else snr_t[row_idx, col_idx]
        rssi_c = None if rssi_t is None else rssi_t[row_idx, col_idx]
        pattern_unit_of = self._pattern_unit
        quality_on = _quality.quality_context() is not None
        with np.errstate(invalid="ignore", divide="ignore"):
            start = 0
            for trial in range(n_trials):
                end = ends[trial]
                if end - start < 2:
                    start = end
                    continue
                pattern_unit = pattern_unit_of(rows_c[start:end])
                surface = None
                if snr_c is not None:
                    surface = _correlate_core(snr_c[start:end], pattern_unit)
                if rssi_c is not None:
                    rssi_surface = _correlate_core(rssi_c[start:end], pattern_unit)
                    surface = (
                        rssi_surface if surface is None else surface * rssi_surface
                    )
                found = _finite_argmax(surface)
                best_index[trial] = found
                best_corr[trial] = surface[found]
                if quality_on:
                    _quality.record_peak_ratio(surface, found, int(end - start))
                start = end
        return n_probes, best_index, best_corr
