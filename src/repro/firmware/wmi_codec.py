"""Binary WMI mailbox codec.

The host driver does not hand Python objects to the chip — it writes
command buffers into a mailbox.  This codec serializes the WMI command
objects to the wire format and back, so the driver layer can exercise
the same byte path a real wil6210 driver would.

Wire format (little-endian)::

    u16 command_id | u16 payload_length | payload bytes
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple, Type

from .wmi import (
    WmiClearSectorOverride,
    WmiCommand,
    WmiDrainSweepReports,
    WmiError,
    WmiResetSweepState,
    WmiSetSectorOverride,
)

__all__ = ["encode_wmi", "decode_wmi", "WMI_COMMAND_IDS"]

_HEADER = struct.Struct("<HH")

#: Command IDs in the vendor's private range.
WMI_COMMAND_IDS: Dict[Type[WmiCommand], int] = {
    WmiResetSweepState: 0x0911,
    WmiDrainSweepReports: 0x0912,
    WmiSetSectorOverride: 0x0913,
    WmiClearSectorOverride: 0x0914,
}

_TYPES_BY_ID = {command_id: cls for cls, command_id in WMI_COMMAND_IDS.items()}


def encode_wmi(command: WmiCommand) -> bytes:
    """Serialize a WMI command to its mailbox bytes."""
    command_id = WMI_COMMAND_IDS.get(type(command))
    if command_id is None:
        raise WmiError(f"no wire encoding for {type(command).__name__}")
    if isinstance(command, WmiSetSectorOverride):
        payload = struct.pack("<B", command.sector_id)
    else:
        payload = b""
    return _HEADER.pack(command_id, len(payload)) + payload


def decode_wmi(data: bytes) -> WmiCommand:
    """Parse mailbox bytes back into a WMI command object.

    Raises:
        WmiError: malformed buffer or unknown command ID.
    """
    if len(data) < _HEADER.size:
        raise WmiError("mailbox buffer shorter than the WMI header")
    command_id, payload_length = _HEADER.unpack_from(data)
    payload = data[_HEADER.size :]
    if len(payload) != payload_length:
        raise WmiError(
            f"payload length mismatch: header says {payload_length}, got {len(payload)}"
        )
    command_type = _TYPES_BY_ID.get(command_id)
    if command_type is None:
        raise WmiError(f"unknown WMI command ID 0x{command_id:04x}")
    if command_type is WmiSetSectorOverride:
        if payload_length != 1:
            raise WmiError("sector override payload must be one byte")
        return WmiSetSectorOverride(sector_id=payload[0])
    if payload_length != 0:
        raise WmiError(f"{command_type.__name__} takes no payload")
    return command_type()
