"""End-to-end integration: the full pipeline the paper describes.

Jailbreak → chamber campaign → deploy → live CSS through the real SLS
protocol with the sector override — everything wired together, nothing
mocked.
"""

import numpy as np
import pytest

from repro.channel import MeasurementModel, anechoic_chamber, lab_environment
from repro.core import (
    CompressiveSectorSelector,
    RandomProbeStrategy,
    from_sweep_reports,
)
from repro.geometry import Orientation
from repro.mac import Station, SweepSession, mutual_training_time_us
from repro.measurement import CampaignConfig, PatternMeasurementCampaign
from repro.phased_array import PhasedArray


@pytest.fixture(scope="module")
def deployment():
    """Two jailbroken routers plus the DUT's measured pattern table."""
    dut_antenna = PhasedArray.talon(np.random.default_rng(31))
    peer_antenna = PhasedArray.talon(np.random.default_rng(32))
    environment = lab_environment(3.0)
    dut = Station("dut", 1, dut_antenna, position_m=environment.tx_position_m)
    peer = Station(
        "peer", 2, peer_antenna,
        position_m=environment.rx_position_m,
        orientation=Orientation(yaw_deg=180.0),
    )
    dut.jailbreak()
    peer.jailbreak()

    campaign = PatternMeasurementCampaign(
        dut_antenna, dut.codebook,
        reference_antenna=peer_antenna, reference_codebook=peer.codebook,
        environment=anechoic_chamber(3.0),
    )
    config = CampaignConfig(
        azimuths_deg=np.arange(-90.0, 91.0, 4.0),
        elevations_deg=(0.0, 8.0, 16.0, 24.0),
        n_sweeps=2,
    )
    table = campaign.run(config, np.random.default_rng(33))
    return environment, dut, peer, table


class TestLiveCompressiveSelection:
    def test_css_through_real_protocol(self, deployment, rng):
        """Reduced sweeps + override: the paper's closed loop."""
        environment, dut, peer, table = deployment
        selector = CompressiveSectorSelector(table)
        strategy = RandomProbeStrategy()
        session = SweepSession(dut, peer, environment)

        chosen_sectors = []
        for _ in range(5):
            probe_ids = strategy.choose(14, selector.candidate_sector_ids, rng)
            # The DUT sweeps only the probing subset.
            result = session.run(rng, initiator_probe_ids=probe_ids)
            reports = peer.drain_sweep_reports()
            measurements = [
                m for m in from_sweep_reports(reports) if m.sector_id in set(probe_ids)
            ]
            selection = selector.select(measurements)
            # Arm the override so the *next* training tells the DUT to
            # use the compressively chosen sector.
            peer.arm_sector_override(selection.sector_id)
            chosen_sectors.append(selection.sector_id)

        final = session.run(rng)
        assert final.initiator_tx_sector == chosen_sectors[-1]

        # Individual 14-probe draws can misfire; the *typical* choice
        # must be a strong sector (compare measured boresight gains).
        gains = {
            s: table.gain(s, 0.0, 0.0) for s in selector.candidate_sector_ids
        }
        best_gain = max(gains.values())
        chosen_gains = sorted(gains[s] for s in chosen_sectors)
        median_gain = chosen_gains[len(chosen_gains) // 2]
        assert median_gain >= best_gain - 6.0

    def test_reduced_sweep_saves_time_on_air(self, deployment, rng):
        environment, dut, peer, _ = deployment
        session = SweepSession(dut, peer, environment)
        probe_ids = list(dut.codebook.tx_sector_ids)[:14]
        reduced = session.run(
            rng, initiator_probe_ids=probe_ids, responder_probe_ids=probe_ids
        )
        full = session.run(rng)
        assert reduced.duration_us == pytest.approx(mutual_training_time_us(14), abs=0.2)
        assert full.duration_us == pytest.approx(mutual_training_time_us(34), abs=0.2)
        assert full.duration_us / reduced.duration_us == pytest.approx(2.3, abs=0.1)

    def test_pattern_table_and_protocol_agree(self, deployment, rng):
        """The live argmax should rank near the table's predicted best."""
        environment, dut, peer, table = deployment
        session = SweepSession(dut, peer, environment)
        winners = []
        for _ in range(5):
            session.run(rng)
            reports = peer.drain_sweep_reports()
            if reports:
                winners.append(max(reports, key=lambda r: r.snr_db).sector_id)
        predicted = table.best_sector(0.0, 0.0, [s for s in table.sector_ids if s != 0])
        predicted_gain = table.gain(predicted, 0.0, 0.0)
        winner_gains = [table.gain(w, 0.0, 0.0) for w in winners]
        assert max(winner_gains) >= predicted_gain - 4.0
