"""Fault-tolerant execution: supervision, checkpoints, injection.

The contract under test (DESIGN.md §9): because randomness is consumed
only during planning and block evaluation is pure, every recovery path
— retry, pool replacement, timeout, checkpoint resume, scalar fallback
— is bit-invisible in the records.  A fault plan may change a run's
*health* section, never its *results*.

The pinned acceptance test is ``TestRecoveryEquivalence``: a jobs=4
policy-eval run with an injected worker crash, an injected hang
(timeout + retry) and injected transient exceptions produces records
bit-identical to a clean jobs=1 run of the same spec+seed, with exact
health accounting.  ``TestKillResume`` pins the kill–``--resume``
cycle.
"""

import json

import numpy as np
import pytest

import repro.runtime.runner as runner_module
from repro.cli import main as cli_main
from repro.runtime import (
    CheckpointStore,
    FaultInjectionError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    PolicyContext,
    PolicySpec,
    RetryExhaustedError,
    RetryPolicy,
    ScenarioRunner,
    ScenarioSpec,
    TestbedSpec as _TestbedSpec,
    build_policy,
)

# A narrow policy-eval arc: 5 recordings x 3 sweeps per policy, both
# batched built-ins.  Small enough for supervised-execution tests, wide
# enough that fault plans can target blocks 0-4.
def _small_spec() -> ScenarioSpec:
    return ScenarioSpec(
        scenario="policy-eval",
        seed=2017,
        policies=(
            PolicySpec("css", {"n_probes": 14}),
            PolicySpec("full-sweep", {}),
        ),
        params={"azimuth_step_deg": 30.0, "distance_m": 6.0, "n_sweeps": 3},
    )


@pytest.fixture(scope="module")
def clean_result(testbed):
    """The reference jobs=1 run every recovery test compares against."""
    with ScenarioRunner() as runner:
        outcome = runner.run(_small_spec())
    return outcome


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_grows(self):
        retry = RetryPolicy(max_attempts=5, backoff_base_s=0.1, seed=3)
        first = [retry.backoff_s(2, attempt) for attempt in (1, 2, 3)]
        again = [retry.backoff_s(2, attempt) for attempt in (1, 2, 3)]
        assert first == again
        assert first[0] < first[1] < first[2]
        # jitter stays within the declared fraction of the base
        assert 0.1 <= first[0] <= 0.1 * (1 + retry.jitter)

    def test_jitter_differs_across_blocks(self):
        retry = RetryPolicy()
        assert retry.backoff_s(0, 1) != retry.backoff_s(1, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)

    def test_json_round_trip(self):
        retry = RetryPolicy(max_attempts=7, timeout_s=2.5, seed=11)
        assert RetryPolicy.from_json(retry.to_json()) == retry


class TestFaultPlan:
    def test_parse_grammar(self):
        plan = FaultPlan.parse(["crash@1", "exception@0,2*3"], hang_s=4.0)
        assert plan.hang_s == 4.0
        assert plan.faults == (
            FaultSpec("crash", 1),
            FaultSpec("exception", 0, times=3),
            FaultSpec("exception", 2, times=3),
        )

    @pytest.mark.parametrize("token", ["crash", "crash@", "nope@1", "hang@-1"])
    def test_parse_rejects_bad_tokens(self, token):
        with pytest.raises(ValueError):
            FaultPlan.parse([token])

    def test_json_round_trip(self):
        plan = FaultPlan.parse(["hang@2", "cache-corrupt@0"], hang_s=1.5)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_injector_is_a_pure_function_of_block_and_attempt(self):
        injector = FaultInjector(FaultPlan.parse(["exception@1*2", "hang@3"]))
        assert injector.directive(0, 1) is None
        assert injector.directive(1, 1) == {"kind": "exception"}
        assert injector.directive(1, 2) == {"kind": "exception"}
        assert injector.directive(1, 3) is None
        # hang directives carry the plan's duration
        assert injector.directive(3, 1) == {"kind": "hang", "hang_s": 30.0}
        # replaying the same dispatch replays the same decision
        assert injector.directive(1, 2) == injector.directive(1, 2)

    def test_spec_round_trips_faults_but_digest_ignores_them(self):
        spec = _small_spec()
        faulty = spec.with_faults(FaultPlan.parse(["crash@0"]))
        assert ScenarioSpec.from_json(faulty.to_json()) == faulty
        assert ScenarioSpec.from_json(spec.to_json()).faults is None
        # the overlay changes execution, never results: same digest
        assert faulty.digest() == spec.digest()


class TestCheckpointStore:
    def test_round_trip_and_idempotent_put(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path, "digest-a", 7)
        store.put("policy", 0, 0, [1, 2, 3])
        store.put("policy", 0, 0, [9, 9, 9])  # second put is a no-op
        store.close()
        resumed = CheckpointStore(path, "digest-a", 7, resume=True)
        assert resumed.restored == 1
        assert resumed.get("policy", 0, 0) == [1, 2, 3]
        assert resumed.get("policy", 0, 1) is None
        resumed.close()

    def test_call_index_separates_repeated_policy_specs(self, tmp_path):
        # fig7 shape: the same policy spec is executed once per
        # environment — identical digest, identical block indices.
        # Each execute call journals under its own ordinal, so one
        # environment's results can never be served as the other's.
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path, "digest-a", 7)
        store.put("policy", 0, 0, ["lab"])
        store.put("policy", 1, 0, ["conference"])
        assert store.get("policy", 0, 0) == ["lab"]
        assert store.get("policy", 1, 0) == ["conference"]
        store.close()
        resumed = CheckpointStore(path, "digest-a", 7, resume=True)
        assert resumed.restored == 2
        assert resumed.get("policy", 1, 0) == ["conference"]
        resumed.close()

    def test_stale_header_starts_fresh(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path, "digest-a", 7)
        store.put("policy", 0, 0, ["kept"])
        store.close()
        other = CheckpointStore(path, "digest-B", 7, resume=True)
        assert other.restored == 0
        assert other.get("policy", 0, 0) is None
        other.close()

    def test_fresh_open_refuses_a_matching_journal(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path, "digest-a", 7)
        store.put("policy", 0, 0, ["precious"])
        store.close()
        before = path.read_bytes()
        # without resume, a journal this run could have resumed is
        # never truncated — the caller is told about --resume instead
        with pytest.raises(FileExistsError, match="--resume"):
            CheckpointStore(path, "digest-a", 7, resume=False)
        assert path.read_bytes() == before
        resumed = CheckpointStore(path, "digest-a", 7, resume=True)
        assert resumed.restored == 1
        resumed.close()
        # a journal of a *different* spec or seed is overwritten freely
        fresh = CheckpointStore(path, "digest-B", 9, resume=False)
        assert len(fresh) == 0
        fresh.close()

    def test_corrupt_tail_is_dropped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path, "digest-a", 7)
        store.put("policy", 0, 0, ["intact"])
        store.put("policy", 0, 1, ["doomed"])
        store.close()
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        resumed = CheckpointStore(path, "digest-a", 7, resume=True)
        assert resumed.restored == 1
        assert resumed.get("policy", 0, 0) == ["intact"]
        assert resumed.get("policy", 0, 1) is None
        resumed.close()

    def test_durable_mode_fsyncs_header_and_every_put(self, tmp_path, monkeypatch):
        import os as os_module

        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "repro.runtime.checkpoint.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd))[1],
        )
        path = tmp_path / "ck.jsonl"
        lax = CheckpointStore(path, "digest-a", 7)
        lax.put("policy", 0, 0, [1])
        lax.close()
        assert synced == []  # default stays flush-only
        durable = CheckpointStore(
            tmp_path / "ck2.jsonl", "digest-a", 7, durable=True
        )
        assert len(synced) == 1  # header
        durable.put("policy", 0, 0, [1])
        durable.put("policy", 0, 1, [2])
        assert len(synced) == 3
        durable.put("policy", 0, 0, [9])  # idempotent no-op: no I/O
        assert len(synced) == 3
        durable.close()

    def test_durable_corrupt_tail_still_drops_and_resumes(self, tmp_path):
        # The crash model durable mode exists for: power loss tears the
        # last entry mid-write.  Recovery must keep every fsync'd
        # prefix entry and drop only the torn tail.
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(path, "digest-a", 7, durable=True)
        store.put("policy", 0, 0, ["intact"])
        store.put("policy", 0, 1, ["doomed"])
        store.close()
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        resumed = CheckpointStore(path, "digest-a", 7, resume=True, durable=True)
        assert resumed.restored == 1
        assert resumed.get("policy", 0, 0) == ["intact"]
        assert resumed.get("policy", 0, 1) is None
        # the re-journaled replacement for the torn entry is durable too
        resumed.put("policy", 0, 1, ["replayed"])
        resumed.close()
        final = CheckpointStore(path, "digest-a", 7, resume=True)
        assert final.restored == 2
        final.close()


class TestContextManager:
    def test_with_block_closes_the_pool_on_exit(self):
        with ScenarioRunner(jobs=2) as runner:
            assert runner._ensure_pool() is not None
        assert runner._pool is None

    def test_close_is_idempotent(self):
        runner = ScenarioRunner()
        runner.close()
        runner.close()

    def test_pool_is_released_when_the_body_raises(self):
        with pytest.raises(RuntimeError, match="boom"):
            with ScenarioRunner(jobs=2) as runner:
                runner._ensure_pool()
                raise RuntimeError("boom")
        assert runner._pool is None


class TestLocalSupervision:
    def test_injected_exceptions_recover_bit_identically(self, clean_result):
        plan = FaultPlan.parse(["exception@0*2", "exception@3"])
        retry = RetryPolicy(max_attempts=3, backoff_base_s=0.0)
        with ScenarioRunner(retry=retry, faults=plan) as runner:
            outcome = runner.run(_small_spec())
        assert outcome.result.rows == clean_result.result.rows
        health = outcome.manifest.health
        assert health["blocks"] == 10
        assert health["executed"] == 10
        assert health["retries"] == 6  # (2 + 1) per batched policy
        assert health["injected"] == 6
        assert health["attempts"] == {
            "css[0]": 3, "css[3]": 2, "full-sweep[0]": 3, "full-sweep[3]": 2,
        }

    def test_exhaustion_raises_with_structured_fields(self):
        plan = FaultPlan.parse(["exception@1*9"])
        retry = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        with ScenarioRunner(retry=retry, faults=plan) as runner:
            with pytest.raises(RetryExhaustedError) as excinfo:
                runner.run(_small_spec())
        error = excinfo.value
        assert error.label == "css"
        assert error.block_index == 1
        assert error.attempts == 2
        assert isinstance(error.cause, FaultInjectionError)

    def test_spec_carried_fault_plan_is_honored(self, clean_result):
        spec = _small_spec().with_faults(FaultPlan.parse(["exception@2"]))
        retry = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        with ScenarioRunner(retry=retry) as runner:
            outcome = runner.run(spec)
        assert outcome.result.rows == clean_result.result.rows
        assert outcome.manifest.health["injected"] == 2

    def test_default_runner_fails_fast(self):
        spec = _small_spec().with_faults(FaultPlan.parse(["exception@0"]))
        with ScenarioRunner() as runner:
            with pytest.raises(RetryExhaustedError) as excinfo:
                runner.run(spec)
        assert excinfo.value.attempts == 1


class TestRecoveryEquivalence:
    """The pinned acceptance test: crash + hang + exceptions at jobs=4."""

    def test_supervised_jobs4_matches_clean_jobs1_bit_for_bit(self, clean_result):
        plan = FaultPlan(
            faults=(
                FaultSpec("exception", 0, times=2),
                FaultSpec("crash", 1),
                FaultSpec("hang", 2),
            ),
            hang_s=10.0,
        )
        retry = RetryPolicy(max_attempts=4, backoff_base_s=0.01, timeout_s=3.0)
        with ScenarioRunner(jobs=4, retry=retry, faults=plan) as runner:
            outcome = runner.run(_small_spec())

        assert outcome.result.rows == clean_result.result.rows

        health = outcome.manifest.health
        assert health["blocks"] == 10
        assert health["executed"] == 10
        assert health["checkpoint_hits"] == 0
        assert health["fallbacks"] == 0
        # per batched policy: 2 exception retries + 1 crash + 1 timeout
        assert health["retries"] == 8
        assert health["timeouts"] == 2
        assert health["injected"] == 8
        # crash and hang each force a pool replacement per policy; a
        # straggling crash can occasionally cost one more
        assert health["pool_replacements"] >= 4
        assert health["attempts"] == {
            "css[0]": 3, "css[1]": 2, "css[2]": 2,
            "full-sweep[0]": 3, "full-sweep[1]": 2, "full-sweep[2]": 2,
        }

    def test_clean_jobs4_matches_jobs1_with_clean_health(self, clean_result):
        with ScenarioRunner(jobs=4, retry=RetryPolicy()) as runner:
            outcome = runner.run(_small_spec())
        assert outcome.result.rows == clean_result.result.rows
        health = outcome.manifest.health
        assert health["retries"] == 0
        assert health["timeouts"] == 0
        assert health["pool_replacements"] == 0
        assert health["injected"] == 0


class TestKillResume:
    def test_exhausted_run_leaves_a_resumable_checkpoint(
        self, clean_result, tmp_path
    ):
        spec = _small_spec()
        ckpt = tmp_path / "campaign.jsonl"
        plan = FaultPlan.parse(["exception@3*10"])
        retry = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        with ScenarioRunner(jobs=4, retry=retry, faults=plan, checkpoint=ckpt) as runner:
            with pytest.raises(RetryExhaustedError):
                runner.run(spec)

        # the dying run journaled every css block it did finish
        lines = ckpt.read_text().splitlines()
        assert json.loads(lines[0])["spec_digest"] == spec.digest()
        assert len(lines) - 1 == 4  # css blocks 0, 1, 2, 4

        with ScenarioRunner(jobs=4, checkpoint=ckpt, resume=True) as runner:
            outcome = runner.run(spec)
        assert outcome.result.rows == clean_result.result.rows
        health = outcome.manifest.health
        assert health["checkpoint_hits"] == 4
        assert health["executed"] == 6
        assert health["retries"] == 0
        assert health["checkpoint"] == str(ckpt)

    def test_finished_checkpoint_skips_every_block(self, clean_result, tmp_path):
        spec = _small_spec()
        ckpt = tmp_path / "done.jsonl"
        with ScenarioRunner(checkpoint=ckpt) as runner:
            runner.run(spec)
        with ScenarioRunner(checkpoint=ckpt, resume=True) as runner:
            outcome = runner.run(spec)
        assert outcome.result.rows == clean_result.result.rows
        assert outcome.manifest.health["checkpoint_hits"] == 10
        assert outcome.manifest.health["executed"] == 0

    def test_checkpoint_without_resume_refuses_to_destroy_a_journal(self, tmp_path):
        spec = _small_spec()
        ckpt = tmp_path / "guarded.jsonl"
        with ScenarioRunner(checkpoint=ckpt) as runner:
            runner.run(spec)
        with ScenarioRunner(checkpoint=ckpt) as runner:
            with pytest.raises(FileExistsError, match="--resume"):
                runner.run(spec)


class TestRepeatedPolicyCheckpointing:
    """fig7's shape: one policy spec evaluated once per environment.

    Identical policy digest, identical block indices, *different*
    recordings — a checkpoint keyed only on (policy, block) would serve
    the first environment's journaled results as the second's, silently.
    """

    def _blocks(self, runner, policy, testbed, azimuths, seed):
        from repro.channel.environment import conference_room
        from repro.experiments.common import record_directions

        recordings = record_directions(
            testbed, conference_room(6.0), azimuths, [0.0], 2,
            np.random.default_rng(seed),
        )
        return runner.plan_trials(
            policy, recordings, testbed.tx_sector_ids,
            np.random.default_rng(seed + 1),
        )

    def test_identical_specs_on_different_recordings_do_not_collide(
        self, testbed, tmp_path
    ):
        policy_spec = PolicySpec("css", {"n_probes": 14})
        with ScenarioRunner() as reference:
            policy = build_policy(policy_spec, reference.context(testbed))
            blocks_a = self._blocks(reference, policy, testbed, [-20.0, 20.0], 11)
            blocks_b = self._blocks(reference, policy, testbed, [-40.0, 40.0], 12)
            want_a = reference.execute(policy, blocks_a, reset="recording")
            want_b = reference.execute(policy, blocks_b, reset="recording")
        assert [r.result for r in want_a] != [r.result for r in want_b]

        ckpt = tmp_path / "ck.jsonl"
        with ScenarioRunner() as runner:
            runner._store = CheckpointStore(ckpt, "digest", 7)
            policy = build_policy(policy_spec, runner.context(testbed))
            got_a = runner.execute(
                policy, blocks_a, reset="recording", policy_spec=policy_spec
            )
            got_b = runner.execute(
                policy, blocks_b, reset="recording", policy_spec=policy_spec
            )
            # within one run, the second call must not be fed the first
            # call's freshly journaled blocks
            assert runner.health.checkpoint_hits == 0
        assert [r.result for r in got_a] == [r.result for r in want_a]
        assert [r.result for r in got_b] == [r.result for r in want_b]

        # and across a resume, each call restores its own blocks
        with ScenarioRunner() as resumed:
            resumed._store = CheckpointStore(ckpt, "digest", 7, resume=True)
            policy = build_policy(policy_spec, resumed.context(testbed))
            re_a = resumed.execute(
                policy, blocks_a, reset="recording", policy_spec=policy_spec
            )
            re_b = resumed.execute(
                policy, blocks_b, reset="recording", policy_spec=policy_spec
            )
            assert resumed.health.checkpoint_hits == len(blocks_a) + len(blocks_b)
        assert [r.result for r in re_a] == [r.result for r in want_a]
        assert [r.result for r in re_b] == [r.result for r in want_b]


class TestWorkerCacheCorruption:
    """A corrupted testbed memo self-heals instead of crashing the pool."""

    def _small_testbed_spec(self):
        return _TestbedSpec(
            seed=7,
            azimuth_step_deg=30.0,
            elevation_step_deg=16.0,
            max_elevation_deg=32.0,
            campaign_sweeps=1,
        )

    @pytest.fixture()
    def isolated_cache(self, tmp_path, monkeypatch):
        from repro.experiments.common import build_testbed

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_TESTBED_CACHE", raising=False)
        build_testbed.cache_clear()
        runner_module._WORKER_CONTEXTS.clear()
        runner_module._WORKER_POLICIES.clear()
        yield tmp_path
        build_testbed.cache_clear()
        runner_module._WORKER_CONTEXTS.clear()
        runner_module._WORKER_POLICIES.clear()

    def test_truncated_memo_triggers_the_self_healing_rebuild(self, isolated_cache):
        testbed_key = self._small_testbed_spec().key()
        policy_key = PolicySpec("css", {"n_probes": 6}).key()

        # cold build populates the on-disk memo
        policy = runner_module._worker_policy(testbed_key, policy_key)
        memo = runner_module._memoized_testbed_path(testbed_key)
        assert memo.is_file()

        # truncate the cache entry mid-file, drop every warm cache, and
        # warm up again: load_or_build_table must rebuild, not raise
        data = memo.read_bytes()
        memo.write_bytes(data[: len(data) // 2])
        runner_module._reset_worker_caches()
        healed = runner_module._worker_policy(testbed_key, policy_key)
        assert healed is not policy
        assert memo.is_file() and memo.read_bytes() != data[: len(data) // 2]

    def test_worker_block_runs_through_an_injected_corruption(self, isolated_cache):
        from repro.channel.environment import conference_room
        from repro.experiments.common import record_directions

        spec = self._small_testbed_spec()
        testbed_key = spec.key()
        policy_spec = PolicySpec("css", {"n_probes": 6})
        testbed = spec.build()
        policy = build_policy(policy_spec, PolicyContext(testbed=testbed))
        recordings = record_directions(
            testbed, conference_room(6.0), [0.0], [0.0], 2,
            np.random.default_rng(3),
        )
        with ScenarioRunner() as planner:
            (block,) = planner.plan_trials(
                policy, recordings, testbed.tx_sector_ids,
                np.random.default_rng(4),
            )

        clean, info = runner_module._worker_run_block(
            testbed_key, policy_spec.key(), block
        )
        assert info == {"fallback": False}
        corrupted, info = runner_module._worker_run_block(
            testbed_key, policy_spec.key(), block,
            directive={"kind": "cache-corrupt"},
        )
        assert info == {"fallback": False}
        assert [r.sector_id for r in corrupted] == [r.sector_id for r in clean]

    def test_local_cache_corrupt_directive_truncates_the_memo(self, isolated_cache):
        testbed_key = self._small_testbed_spec().key()
        policy_key = PolicySpec("css", {"n_probes": 6}).key()
        runner_module._worker_policy(testbed_key, policy_key)
        memo = runner_module._memoized_testbed_path(testbed_key)
        data = memo.read_bytes()

        with ScenarioRunner() as runner:
            runner._apply_local_directive(
                {"kind": "cache-corrupt"}, testbed_key, "css", 0, 1
            )
            assert runner.health.injected == 1
        assert memo.read_bytes() == data[: max(16, len(data) // 2)]
        # the warm caches were dropped with the memo: the next warm-up
        # takes the self-healing rebuild path
        healed = runner_module._worker_policy(testbed_key, policy_key)
        assert healed is not None
        assert memo.read_bytes() != data[: max(16, len(data) // 2)]

    def test_local_cache_corrupt_without_a_testbed_spec_is_not_counted(self):
        with ScenarioRunner() as runner:
            runner._apply_local_directive(
                {"kind": "cache-corrupt"}, None, "css", 0, 1
            )
            assert runner.health.injected == 0


class _BrokenBatch:
    """A policy whose batched kernel always fails: forces the fallback."""

    multi_round = False

    def __init__(self, inner):
        self._inner = inner
        self.name = "broken-batch"

    def reset(self):
        self._inner.reset()

    def probes_for_round(self, round_index, pool, rng):
        return self._inner.probes_for_round(round_index, pool, rng)

    def select(self, measurements):
        return self._inner.select(measurements)

    def select_batch(self, *args, **kwargs):
        raise RuntimeError("batched kernel rejected")

    def training_time_us(self, probes_used, n_rounds):
        return self._inner.training_time_us(probes_used, n_rounds)


class TestScalarFallback:
    def test_failing_batched_kernel_degrades_to_the_scalar_path(self, testbed):
        from repro.channel.environment import conference_room
        from repro.experiments.common import record_directions

        policy_spec = PolicySpec("css", {"n_probes": 14})
        recordings = record_directions(
            testbed, conference_room(6.0), [-20.0, 0.0, 20.0], [0.0], 2,
            np.random.default_rng(5),
        )
        with ScenarioRunner() as runner:
            reference = build_policy(policy_spec, runner.context(testbed))
            blocks = runner.plan_trials(
                reference, recordings, testbed.tx_sector_ids,
                np.random.default_rng(6),
            )
            wanted = runner.execute(reference, blocks, reset="recording")

            broken = _BrokenBatch(build_policy(policy_spec, runner.context(testbed)))
            degraded = runner.execute(broken, blocks, reset="recording")
            assert runner.health.fallbacks == len(blocks)

        assert [r.result for r in degraded] == [r.result for r in wanted]

    def test_fallbacks_surface_in_the_manifest_health_section(self):
        from repro.runtime.manifest import RunManifest

        manifest = RunManifest(
            scenario="policy-eval", spec_digest="ab" * 32, seed=1, jobs=2,
            git_rev="deadbeef", started="now", wall_time_s=1.0,
            health={"blocks": 4, "fallbacks": 2, "retries": 1,
                    "attempts": {"css[0]": 2}},
        )
        assert manifest.to_json()["health"]["fallbacks"] == 2
        rows = "\n".join(manifest.format_rows())
        assert "fallbacks=2" in rows
        assert "css[0] took 2 attempts" in rows


class TestCliFaultSurface:
    def test_retry_exhaustion_exits_one_with_a_structured_line(self, capsys):
        status = cli_main(
            [
                "run", "policy-eval",
                "--inject", "exception@0*9", "--max-attempts", "2",
                "--backoff", "0",
            ]
        )
        assert status == 1
        err = capsys.readouterr().err
        assert "retries exhausted" in err
        assert "policy=css block=0 attempts=2" in err
        assert "Traceback" not in err

    def test_bad_inject_token_exits_two(self, capsys):
        status = cli_main(["run", "policy-eval", "--inject", "nonsense"])
        assert status == 2
        assert "--inject" in capsys.readouterr().err

    def test_injected_run_recovers_and_reports_health(self, capsys):
        status = cli_main(
            [
                "run", "policy-eval",
                "--inject", "exception@1", "--max-attempts", "3",
                "--backoff", "0",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "health" in out
        assert "retries=2" in out  # one retry for each batched policy

    def test_checkpoint_without_resume_refuses_and_exits_two(self, capsys, tmp_path):
        ckpt = tmp_path / "campaign.jsonl"
        assert cli_main(["run", "policy-eval", "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        status = cli_main(["run", "policy-eval", "--checkpoint", str(ckpt)])
        assert status == 2
        err = capsys.readouterr().err
        assert "--resume" in err
        assert "Traceback" not in err
        # with --resume the journal is honored, not destroyed
        assert cli_main(
            ["run", "policy-eval", "--checkpoint", str(ckpt), "--resume"]
        ) == 0
        assert "checkpoint_hits=" in capsys.readouterr().out
