"""Structured run manifests: provenance for every scenario run.

A manifest records *which* configuration produced a result (the spec's
SHA-256 digest and seed), *where* (git revision), and *how long* each
policy took — enough to reproduce or audit a run from the manifest
alone (``repro-bench run spec.json`` with the same digest).
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict

__all__ = ["RunManifest", "git_revision", "result_digest"]


def git_revision() -> str:
    """The current git commit hash, or 'unknown' outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    revision = proc.stdout.strip()
    return revision if proc.returncode == 0 and revision else "unknown"


def result_digest(result: Any) -> str:
    """SHA-256 of a result's canonical JSON form, or "" if unserializable.

    The digest covers exactly the payload ``dump_result_json`` writes
    (experiment class name + sanitized data), canonically encoded — two
    runs of the same spec+seed produce the same digest if and only if
    their results are bit-identical, no matter which front-end (CLI or
    service) executed them.
    """
    from ..experiments.io import result_to_dict

    try:
        payload = {
            "experiment": type(result).__name__,
            "data": result_to_dict(result),
        }
    except TypeError:
        return ""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class RunManifest:
    """Provenance of one :class:`~.runner.ScenarioRunner` run."""

    scenario: str
    spec_digest: str
    seed: int
    jobs: int
    git_rev: str
    started: str
    wall_time_s: float
    policy_timings_s: Dict[str, float] = field(default_factory=dict)
    health: Dict = field(default_factory=dict)
    #: SHA-256 over the result's canonical JSON (see :func:`result_digest`);
    #: "" when the result type is not JSON-serializable.  This is the
    #: field the service's digest-equality contract compares.
    result_sha256: str = ""
    #: Trace/metric rollup of an observed run (``repro.obs``); empty
    #: when the runner had no ObsSession.  ``repro-bench report`` can
    #: render a saved manifest from this section alone.
    observability: Dict = field(default_factory=dict)

    def to_json(self) -> Dict:
        return {
            "scenario": self.scenario,
            "spec_digest": self.spec_digest,
            "seed": self.seed,
            "jobs": self.jobs,
            "git_rev": self.git_rev,
            "started": self.started,
            "wall_time_s": self.wall_time_s,
            "policy_timings_s": dict(self.policy_timings_s),
            "health": dict(self.health),
            "result_sha256": self.result_sha256,
            "observability": dict(self.observability),
        }

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")

    def format_rows(self):
        rows = [
            f"manifest: scenario={self.scenario} seed={self.seed} jobs={self.jobs}",
            f"  spec sha256 {self.spec_digest[:16]}…  git {self.git_rev[:12]}",
            f"  started {self.started}  wall {self.wall_time_s:.2f} s",
        ]
        if self.result_sha256:
            rows.insert(2, f"  result sha256 {self.result_sha256[:16]}…")
        for name in sorted(self.policy_timings_s):
            rows.append(f"  policy {name:20s} {self.policy_timings_s[name]:8.3f} s")
        # A run with an empty, absent or all-zero health dict is simply
        # clean — render that as one row, never as empty counter rows
        # (and tolerate attempts: null from hand-edited manifests).
        health = dict(self.health or {})
        counters = " ".join(
            f"{key}={health[key]}"
            for key in (
                "blocks",
                "executed",
                "checkpoint_hits",
                "retries",
                "timeouts",
                "pool_replacements",
                "injected",
                "fallbacks",
            )
            if health.get(key)
        )
        rows.append(f"  health {counters or 'clean'}")
        attempts = health.get("attempts") or {}
        for key in sorted(attempts):
            rows.append(f"    {key} took {attempts[key]} attempts")
        if self.observability.get("enabled"):
            spans = self.observability.get("spans", {})
            total = sum(int(entry.get("count", 0)) for entry in spans.values())
            rows.append(
                f"  observability {total} span(s) in {len(spans)} stage(s)"
                f" — see `repro-bench report`"
            )
        return rows
