"""The IEEE 802.11ad sector-level sweep (SLS) protocol engine.

Runs the mutual transmit-sector training between two stations through
the simulated channel, the simulated firmware, and the real frame
codecs, with on-air timing from :mod:`repro.mac.timing`:

1. **ISS** — the initiator transmits one SSW frame per probed sector;
   the responder's chip measures each decodable frame.
2. **RSS** — roles swap; the responder's SSW frames already carry the
   responder's selection for the initiator in their feedback field.
3. **Feedback / ACK** — the initiator reports the responder's best
   sector; the responder acknowledges.

A third station may observe in monitor mode; Table 1 of the paper was
captured exactly this way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..channel.environment import Environment
from ..channel.link import LinkBudget, LinkSimulator
from .frames import (
    BeaconFrame,
    Frame,
    SSWAckFrame,
    SSWFeedbackField,
    SSWFeedbackFrame,
    SSWFrame,
)
from .fields import SSWField
from .schedule import beacon_burst, custom_sweep_burst, sweep_burst
from .station import Station
from .timing import FEEDBACK_OVERHEAD_US, SSW_FRAME_TIME_US

__all__ = ["CapturedFrame", "SweepResult", "SweepSession", "transmit_beacon_burst"]

#: Split of the 49.1 µs overhead: initiation gap + feedback + ACK.
_INIT_GAP_US = FEEDBACK_OVERHEAD_US - 2.0 * SSW_FRAME_TIME_US


@dataclass(frozen=True)
class CapturedFrame:
    """A frame seen on air (by the monitor or logged by the session)."""

    time_us: float
    frame: Frame
    snr_db: Optional[float] = None


@dataclass
class SweepResult:
    """Outcome of one mutual sector-sweep training."""

    initiator_tx_sector: int
    responder_tx_sector: int
    duration_us: float
    transmitted_frames: List[CapturedFrame] = field(default_factory=list)
    monitor_frames: List[CapturedFrame] = field(default_factory=list)
    feedback_delivered: bool = True


class SweepSession:
    """Mutual beamforming training between two stations in a room."""

    def __init__(
        self,
        initiator: Station,
        responder: Station,
        environment: Environment,
        budget: Optional[LinkBudget] = None,
        monitor: Optional[Station] = None,
    ):
        self.initiator = initiator
        self.responder = responder
        self.environment = environment
        self.budget = budget if budget is not None else LinkBudget()
        self.monitor = monitor

        self._forward = LinkSimulator(
            environment,
            initiator.antenna,
            responder.antenna,
            self.budget,
            tx_position_m=initiator.position_m,
            rx_position_m=responder.position_m,
        )
        self._reverse = LinkSimulator(
            environment,
            responder.antenna,
            initiator.antenna,
            self.budget,
            tx_position_m=responder.position_m,
            rx_position_m=initiator.position_m,
        )
        self._to_monitor = {}
        if monitor is not None:
            for station, link_name in ((initiator, "initiator"), (responder, "responder")):
                self._to_monitor[link_name] = LinkSimulator(
                    environment,
                    station.antenna,
                    monitor.antenna,
                    self.budget,
                    tx_position_m=station.position_m,
                    rx_position_m=monitor.position_m,
                )

    def _monitor_capture(
        self,
        link_name: str,
        tx_station: Station,
        sector_id: int,
        frame: Frame,
        time_us: float,
        rng: np.random.Generator,
        captures: List[CapturedFrame],
    ) -> None:
        if self.monitor is None:
            return
        link = self._to_monitor[link_name]
        true_snr = link.true_snr_db(
            tx_station.tx_weights(sector_id),
            self.monitor.rx_weights,
            tx_orientation=tx_station.orientation,
            rx_orientation=self.monitor.orientation,
        )
        observation = self.monitor.chip.measurement_model.observe(
            true_snr, self.monitor.chip.noise_floor_dbm, rng
        )
        if observation is not None:
            captures.append(CapturedFrame(time_us, frame, observation.snr_db))

    def _run_sweep_half(
        self,
        tx_station: Station,
        rx_station: Station,
        link: LinkSimulator,
        burst,
        direction: int,
        feedback: SSWFeedbackField,
        start_time_us: float,
        rng: np.random.Generator,
        result: SweepResult,
        monitor_link: str,
    ) -> float:
        """Transmit one side's SSW burst; returns the end time."""
        rx_station.chip.start_sweep()
        shadowing = link.sample_shadowing_db(rng)
        time_us = start_time_us
        for cdown, sector_id in burst:
            frame = SSWFrame(
                src=tx_station.mac,
                dst=rx_station.mac,
                ssw=SSWField(direction=direction, cdown=cdown, sector_id=sector_id),
                feedback=feedback,
            )
            true_snr = link.true_snr_db(
                tx_station.tx_weights(sector_id),
                rx_station.rx_weights,
                tx_orientation=tx_station.orientation,
                rx_orientation=rx_station.orientation,
                shadowing_db=shadowing,
            )
            rx_station.chip.process_ssw_frame(sector_id, cdown, true_snr, rng)
            result.transmitted_frames.append(CapturedFrame(time_us, frame))
            self._monitor_capture(
                monitor_link, tx_station, sector_id, frame, time_us, rng, result.monitor_frames
            )
            time_us += SSW_FRAME_TIME_US
        return time_us

    def run(
        self,
        rng: np.random.Generator,
        initiator_probe_ids: Optional[Sequence[int]] = None,
        responder_probe_ids: Optional[Sequence[int]] = None,
    ) -> SweepResult:
        """Execute one mutual training and apply the outcome.

        Args:
            rng: randomness for channel shadowing and firmware effects.
            initiator_probe_ids / responder_probe_ids: probing subsets
                for compressive selection; the stock 34-sector schedule
                is used when omitted.

        Returns:
            The :class:`SweepResult`; both stations' ``tx_sector_id``
            are updated from the delivered feedback.
        """
        result = SweepResult(
            initiator_tx_sector=self.initiator.tx_sector_id,
            responder_tx_sector=self.responder.tx_sector_id,
            duration_us=0.0,
        )
        init_burst = (
            sweep_burst()
            if initiator_probe_ids is None
            else custom_sweep_burst(list(initiator_probe_ids))
        )
        resp_burst = (
            sweep_burst()
            if responder_probe_ids is None
            else custom_sweep_burst(list(responder_probe_ids))
        )

        # --- ISS: initiator sweeps, responder measures. ---------------
        time_us = self._run_sweep_half(
            self.initiator,
            self.responder,
            self._forward,
            init_burst,
            direction=0,
            feedback=SSWFeedbackField(sector_select=0),
            start_time_us=0.0,
            rng=rng,
            result=result,
            monitor_link="initiator",
        )

        # Responder picks the initiator's best TX sector (possibly the
        # host override) and advertises it in its own SSW frames.
        initiator_best = self.responder.chip.select_feedback_sector()
        responder_feedback = SSWFeedbackField(sector_select=initiator_best)

        # --- RSS: responder sweeps, initiator measures. ----------------
        time_us = self._run_sweep_half(
            self.responder,
            self.initiator,
            self._reverse,
            resp_burst,
            direction=1,
            feedback=responder_feedback,
            start_time_us=time_us,
            rng=rng,
            result=result,
            monitor_link="responder",
        )

        # The initiator learns its TX sector from any decoded responder
        # SSW frame; the RSS frames all carry the same feedback field.
        if self.initiator.chip.current_sweep_reports():
            self.initiator.tx_sector_id = initiator_best
            result.feedback_delivered = True
        else:
            result.feedback_delivered = False

        # --- Feedback + ACK on the now-trained sectors. ----------------
        time_us += _INIT_GAP_US
        responder_best = self.initiator.chip.select_feedback_sector()
        feedback_frame = SSWFeedbackFrame(
            src=self.initiator.mac,
            dst=self.responder.mac,
            feedback=SSWFeedbackField(sector_select=responder_best),
        )
        result.transmitted_frames.append(CapturedFrame(time_us, feedback_frame))
        self._monitor_capture(
            "initiator",
            self.initiator,
            self.initiator.tx_sector_id,
            feedback_frame,
            time_us,
            rng,
            result.monitor_frames,
        )
        self.responder.tx_sector_id = responder_best
        time_us += SSW_FRAME_TIME_US

        ack_frame = SSWAckFrame(
            src=self.responder.mac,
            dst=self.initiator.mac,
            feedback=SSWFeedbackField(sector_select=initiator_best),
        )
        result.transmitted_frames.append(CapturedFrame(time_us, ack_frame))
        self._monitor_capture(
            "responder",
            self.responder,
            self.responder.tx_sector_id,
            ack_frame,
            time_us,
            rng,
            result.monitor_frames,
        )
        time_us += SSW_FRAME_TIME_US

        result.initiator_tx_sector = self.initiator.tx_sector_id
        result.responder_tx_sector = self.responder.tx_sector_id
        result.duration_us = time_us
        return result


def transmit_beacon_burst(
    ap: Station,
    environment: Environment,
    monitor: Station,
    rng: np.random.Generator,
    budget: Optional[LinkBudget] = None,
    start_time_us: float = 0.0,
) -> List[CapturedFrame]:
    """Transmit one DMG beacon burst and capture it at a monitor.

    This is the experiment behind the Beacon row of Table 1: an AP
    sweeps beacons over its beacon schedule while a monitor-mode
    station records sector IDs and CDOWN values.
    """
    link = LinkSimulator(
        environment,
        ap.antenna,
        monitor.antenna,
        budget if budget is not None else LinkBudget(),
        tx_position_m=ap.position_m,
        rx_position_m=monitor.position_m,
    )
    captures: List[CapturedFrame] = []
    time_us = start_time_us
    for cdown, sector_id in beacon_burst():
        frame = BeaconFrame(
            src=ap.mac, sector_id=sector_id, cdown=cdown, tsf_us=int(time_us)
        )
        true_snr = link.true_snr_db(
            ap.tx_weights(sector_id),
            monitor.rx_weights,
            tx_orientation=ap.orientation,
            rx_orientation=monitor.orientation,
        )
        observation = monitor.chip.measurement_model.observe(
            true_snr, monitor.chip.noise_floor_dbm, rng
        )
        if observation is not None:
            captures.append(CapturedFrame(time_us, frame, observation.snr_db))
        time_us += SSW_FRAME_TIME_US
    return captures
