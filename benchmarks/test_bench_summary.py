"""Bench: the §6.5 headline numbers, end to end.

14 of 34 probes suffice; training drops from 1.27 ms to 0.55 ms (2.3×);
the path direction is estimated within a few degrees.
"""

import pytest

from repro.experiments import run_summary
from repro.experiments.fig7 import Fig7Config
from repro.experiments.fig8 import Fig8Config
from repro.experiments.fig9 import Fig9Config


def test_headline_numbers(benchmark, report_rows):
    result = benchmark.pedantic(
        lambda: run_summary(
            css_probes=14,
            fig7_config=Fig7Config(
                probe_counts=tuple(range(4, 35, 2)),
                lab_azimuth_step_deg=10.0,
                lab_elevation_step_deg=10.0,
                conference_azimuth_step_deg=6.0,
                n_sweeps=2,
            ),
            fig8_config=Fig8Config(
                probe_counts=tuple(range(4, 35, 2)), azimuth_step_deg=7.5, n_sweeps=25
            ),
            fig9_config=Fig9Config(
                probe_counts=tuple(range(4, 35, 2)), azimuth_step_deg=7.5, n_sweeps=15
            ),
        ),
        rounds=1,
        iterations=1,
    )
    report_rows(result.format_rows())

    # Exact timing results (same constants as the paper).
    assert result.training_time_ms == pytest.approx(0.55, abs=0.01)
    assert result.full_sweep_time_ms == pytest.approx(1.27, abs=0.01)
    assert result.speedup == pytest.approx(2.3, abs=0.05)

    # Crossovers land in the paper's regime (mid-teens to twenties of
    # probes, out of 34) rather than degenerating to the extremes.
    assert 8 <= result.stability_crossover_probes <= 32
    assert 8 <= result.snr_crossover_probes <= 28

    # "Estimates the path direction with high accuracy and error of
    # only a few degree."
    assert result.lab_azimuth_median_error_deg < 6.0
    assert result.conference_azimuth_median_error_deg < 6.0
