"""Shared fixtures: one simulated hardware set for the whole session."""

import numpy as np
import pytest

from repro.experiments.common import Testbed, build_testbed
from repro.measurement.patterns import PatternTable
from repro.phased_array import Codebook, PhasedArray, talon_codebook


@pytest.fixture(scope="session")
def testbed() -> Testbed:
    """Devices plus the measured 3D pattern table (memoized globally)."""
    return build_testbed()


@pytest.fixture(scope="session")
def antenna(testbed) -> PhasedArray:
    return testbed.dut_antenna


@pytest.fixture(scope="session")
def codebook(testbed) -> Codebook:
    return testbed.dut_codebook


@pytest.fixture(scope="session")
def pattern_table(testbed) -> PatternTable:
    return testbed.pattern_table


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)
