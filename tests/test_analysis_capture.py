"""Tests for pattern analysis metrics and capture traces."""

import numpy as np
import pytest

from repro.mac import BeaconFrame, SSWFeedbackField, SSWFeedbackFrame, station_mac
from repro.mac.capture import capture_summary, load_capture, save_capture
from repro.mac.sweep import CapturedFrame
from repro.phased_array.analysis import (
    PatternMetrics,
    analyze_cut,
    codebook_coverage,
    coverage_fraction,
)


def gaussian_lobe(azimuths, center, width, height):
    return height * np.exp(-((azimuths - center) ** 2) / (2 * width**2))


class TestAnalyzeCut:
    @pytest.fixture
    def azimuths(self):
        return np.arange(-180.0, 180.0, 1.0)

    def test_single_lobe_metrics(self, azimuths):
        gains = gaussian_lobe(azimuths, 20.0, 10.0, 15.0) - 20.0
        metrics = analyze_cut(gains, azimuths)
        assert metrics.peak_azimuth_deg == pytest.approx(20.0)
        assert metrics.peak_db == pytest.approx(-5.0)
        # The -3 dB points of 15*exp(-(az-20)^2 / 2*10^2) - 20 sit at
        # |az - 20| = 10 * sqrt(2 ln 1.25) ~= 6.7 -> ~13.4 deg width.
        assert metrics.beamwidth_3db_deg == pytest.approx(13.4, abs=1.5)
        assert metrics.n_lobes == 1

    def test_sidelobe_level(self, azimuths):
        gains = (
            gaussian_lobe(azimuths, 0.0, 8.0, 10.0)
            + gaussian_lobe(azimuths, 60.0, 8.0, 5.0)
            - 20.0
        )
        metrics = analyze_cut(gains, azimuths)
        assert metrics.sidelobe_level_db == pytest.approx(-5.0, abs=0.3)

    def test_two_lobes_counted(self, azimuths):
        gains = (
            gaussian_lobe(azimuths, -40.0, 6.0, 10.0)
            + gaussian_lobe(azimuths, 40.0, 6.0, 9.0)
        )
        metrics = analyze_cut(gains, azimuths, lobe_threshold_db=3.0)
        assert metrics.n_lobes == 2

    def test_lobe_wrapping_across_seam(self, azimuths):
        gains = gaussian_lobe(azimuths, -179.0, 6.0, 10.0) + gaussian_lobe(
            azimuths, 179.0, 6.0, 10.0
        )
        metrics = analyze_cut(gains, azimuths)
        assert metrics.n_lobes == 1  # one lobe straddling the seam

    def test_flat_pattern(self, azimuths):
        metrics = analyze_cut(np.zeros_like(azimuths), azimuths)
        assert metrics.beamwidth_3db_deg == pytest.approx(360.0)
        assert metrics.sidelobe_level_db is None

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_cut([1.0, 2.0], [0.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            analyze_cut([1.0, 2.0], [0.0, 1.0])

    def test_on_real_sector(self, antenna, codebook):
        azimuths = np.arange(-180.0, 180.0, 1.0)
        gains = antenna.gain_db(codebook[63].weights, azimuths, 0.0)
        metrics = analyze_cut(gains, azimuths)
        assert abs(metrics.peak_azimuth_deg) < 20.0
        assert metrics.beamwidth_3db_deg is not None
        assert 3.0 < metrics.beamwidth_3db_deg < 90.0


class TestCoverage:
    def test_fraction(self):
        gains = np.array([-10.0, 0.0, 5.0, 10.0])
        assert coverage_fraction(gains, 0.0) == 0.75
        with pytest.raises(ValueError):
            coverage_fraction(np.array([]), 0.0)

    def test_codebook_composite(self):
        left = np.array([10.0, -20.0, -20.0])
        right = np.array([-20.0, -20.0, 10.0])
        assert codebook_coverage([left, right], 0.0) == pytest.approx(2.0 / 3.0)

    def test_talon_codebook_covers_frontal_range(self, antenna, codebook):
        azimuths = np.arange(-75.0, 76.0, 3.0)
        gains = [
            antenna.gain_db(codebook[s].weights, azimuths, 0.0)
            for s in codebook.tx_sector_ids
        ]
        assert codebook_coverage(gains, 5.0) > 0.95


class TestCaptureTrace:
    def _frames(self):
        return [
            CapturedFrame(
                time_us=0.0,
                frame=BeaconFrame(src=station_mac(1), sector_id=63, cdown=33),
                snr_db=8.25,
            ),
            CapturedFrame(
                time_us=18.0,
                frame=SSWFeedbackFrame(
                    src=station_mac(1),
                    dst=station_mac(2),
                    feedback=SSWFeedbackField(sector_select=13),
                ),
                snr_db=None,
            ),
        ]

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert save_capture(self._frames(), path) == 2
        loaded = load_capture(path)
        assert len(loaded) == 2
        assert loaded[0].frame == self._frames()[0].frame
        assert loaded[0].snr_db == 8.25
        assert loaded[1].snr_db is None

    def test_corrupt_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time_us": 1.0, "frame_hex": "zz"}\n')
        with pytest.raises(ValueError):
            load_capture(str(path))

    def test_summary_rendering(self):
        rows = capture_summary(self._frames())
        assert len(rows) == 2
        assert "Beacon" in rows[0] and "sector 63" in rows[0]
        assert "feedback sector 13" in rows[1]

    def test_live_session_trace(self, tmp_path, rng):
        """A monitor capture from a real session survives the trace."""
        from repro.channel import lab_environment
        from repro.geometry import Orientation
        from repro.mac import Station, SweepSession
        from repro.phased_array import PhasedArray

        environment = lab_environment(3.0)
        initiator = Station(
            "a", 1, PhasedArray.talon(np.random.default_rng(61)),
            position_m=environment.tx_position_m,
        )
        responder = Station(
            "b", 2, PhasedArray.talon(np.random.default_rng(62)),
            position_m=environment.rx_position_m,
            orientation=Orientation(yaw_deg=180.0),
        )
        monitor = Station(
            "m", 3, PhasedArray.talon(np.random.default_rng(63)),
            position_m=np.array([1.0, 1.0, 0.0]),
            orientation=Orientation(yaw_deg=-135.0),
        )
        session = SweepSession(initiator, responder, environment, monitor=monitor)
        result = session.run(rng)
        path = str(tmp_path / "session.jsonl")
        save_capture(result.monitor_frames, path)
        loaded = load_capture(path)
        assert [c.frame for c in loaded] == [c.frame for c in result.monitor_frames]
