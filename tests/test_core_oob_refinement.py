"""Tests for out-of-band priors and BRP-style beam refinement."""

import numpy as np
import pytest

from repro.core import (
    AngleEstimator,
    BeamRefiner,
    OutOfBandPrior,
    PriorAidedEstimator,
    ProbeMeasurement,
)
from repro.geometry import AngularGrid
from repro.phased_array import WeightVector, quantize_phase


class TestOutOfBandPrior:
    def test_peak_at_prior_direction(self):
        grid = AngularGrid(np.arange(-90.0, 91.0, 2.0), np.array([0.0]))
        prior = OutOfBandPrior(azimuth_deg=25.0, sigma_deg=15.0)
        weights = prior.weights_on(grid)
        azimuths, _ = grid.flat_angles()
        assert azimuths[int(np.argmax(weights))] == pytest.approx(25.0, abs=1.0)

    def test_weights_bounded(self):
        grid = AngularGrid(np.arange(-90.0, 91.0, 5.0), np.arange(0.0, 33.0, 8.0))
        prior = OutOfBandPrior(azimuth_deg=0.0, sigma_deg=10.0, elevation_deg=8.0)
        weights = prior.weights_on(grid)
        assert (weights > 0).all() and (weights <= 1.0).all()

    def test_elevation_prior_optional(self):
        grid = AngularGrid(np.array([0.0]), np.arange(0.0, 33.0, 4.0))
        flat = OutOfBandPrior(azimuth_deg=0.0).weights_on(grid)
        # Without an elevation prior, all elevations weigh equally.
        np.testing.assert_allclose(flat, flat[0])

    def test_wraps_across_the_seam(self):
        grid = AngularGrid(np.array([-178.0, 0.0, 178.0]), np.array([0.0]))
        prior = OutOfBandPrior(azimuth_deg=179.0, sigma_deg=10.0)
        weights = prior.weights_on(grid)
        # -178 deg is only 3 deg away from +179 on the circle.
        assert weights[0] > weights[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            OutOfBandPrior(azimuth_deg=0.0, sigma_deg=0.0)

    def test_prior_pulls_ambiguous_estimate(self, pattern_table):
        estimator = PriorAidedEstimator(AngleEstimator(pattern_table))
        sector_ids = [s for s in pattern_table.sector_ids if s != 0][:4]
        truth = (-20.0, 0.0)
        measurements = [
            ProbeMeasurement(
                s,
                float(pattern_table.gain(s, *truth)),
                float(pattern_table.gain(s, *truth)) - 71.5,
            )
            for s in sector_ids
        ]
        without = estimator.estimate(measurements)
        with_prior = estimator.estimate(
            measurements, prior=OutOfBandPrior(azimuth_deg=-18.0, sigma_deg=12.0)
        )
        error_without = abs(without.azimuth_deg - truth[0])
        error_with = abs(with_prior.azimuth_deg - truth[0])
        assert error_with <= error_without + 1e-9


class TestBeamRefiner:
    def _quadratic_objective(self, target: np.ndarray):
        """SNR-like objective: alignment with a target phasor set."""

        def measure(weights: WeightVector) -> float:
            response = np.abs(np.vdot(target, weights.weights))
            return 20.0 * np.log10(max(response, 1e-9))

        return measure

    def test_monotone_non_decreasing(self, rng):
        target = np.exp(1j * rng.uniform(0, 2 * np.pi, size=16))
        start = WeightVector(np.ones(16, dtype=complex)).normalized()
        refiner = BeamRefiner()
        result = refiner.refine(start, self._quadratic_objective(target), rng, 15)
        assert result.final_snr_db >= result.initial_snr_db

    def test_improves_misaligned_start(self, rng):
        target = np.exp(1j * quantize_phase(rng.uniform(0, 2 * np.pi, size=16), 2))
        start = WeightVector(np.ones(16, dtype=complex)).normalized()
        refiner = BeamRefiner(candidates_per_iteration=8)
        result = refiner.refine(start, self._quadratic_objective(target), rng, 30)
        assert result.improvement_db > 1.0
        assert result.accepted_steps  # something was accepted

    def test_stays_on_quantizer_constellation(self, rng):
        target = np.exp(1j * rng.uniform(0, 2 * np.pi, size=16))
        start = WeightVector(np.ones(16, dtype=complex))
        result = BeamRefiner(phase_bits=2).refine(
            start, self._quadratic_objective(target), rng, 10
        )
        phases = np.angle(result.weights.weights)
        step = np.pi / 2
        remainder = np.abs(((phases % step) + step) % step)
        remainder = np.minimum(remainder, step - remainder)
        np.testing.assert_allclose(remainder, 0.0, atol=1e-9)

    def test_preserves_amplitudes(self, rng):
        amplitudes = rng.uniform(0.5, 1.0, size=8)
        start = WeightVector(amplitudes.astype(complex))
        target = np.exp(1j * rng.uniform(0, 2 * np.pi, size=8))
        result = BeamRefiner().refine(start, self._quadratic_objective(target), rng, 5)
        np.testing.assert_allclose(np.abs(result.weights.weights), amplitudes, atol=1e-9)

    def test_frame_accounting(self, rng):
        target = np.exp(1j * rng.uniform(0, 2 * np.pi, size=8))
        start = WeightVector(np.ones(8, dtype=complex))
        refiner = BeamRefiner(candidates_per_iteration=3)
        result = refiner.refine(start, self._quadratic_objective(target), rng, 7)
        assert result.frames_spent == 1 + 7 * 3
        assert result.airtime_us == pytest.approx(result.frames_spent * 4.0)

    def test_noise_margin_prevents_random_walk(self, rng):
        """With pure-noise feedback, the margin should reject changes."""
        start = WeightVector(np.ones(8, dtype=complex))
        refiner = BeamRefiner(acceptance_margin_db=3.0)
        result = refiner.refine(
            start, lambda _w: float(rng.normal(0.0, 0.5)), rng, 10
        )
        assert len(result.accepted_steps) <= 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            BeamRefiner(phase_bits=0)
        with pytest.raises(ValueError):
            BeamRefiner(acceptance_margin_db=-1.0)
        refiner = BeamRefiner()
        start = WeightVector(np.ones(4, dtype=complex))
        with pytest.raises(ValueError):
            refiner.refine(start, lambda _w: 0.0, rng, 0)
        with pytest.raises(ValueError):
            refiner.refine(
                WeightVector(np.zeros(4, dtype=complex)), lambda _w: 0.0, rng, 1
            )
