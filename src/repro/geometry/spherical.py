"""Conversions between (azimuth, elevation) directions and unit vectors.

Device-frame convention used throughout :mod:`repro`:

* ``+x`` is the antenna boresight (azimuth 0°, elevation 0°),
* ``+y`` points to azimuth +90° in the horizontal plane,
* ``+z`` points up (elevation +90°).

A direction ``(azimuth, elevation)`` maps to the unit vector::

    u = [cos(el) cos(az), cos(el) sin(az), sin(el)]
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

__all__ = ["direction_vector", "vector_to_angles"]


def direction_vector(azimuth_deg: ArrayLike, elevation_deg: ArrayLike) -> np.ndarray:
    """Unit vector(s) for the given direction(s).

    Broadcasts over azimuth and elevation; the unit-vector components
    are stacked along the *last* axis, so scalar inputs yield shape
    ``(3,)`` and arrays of shape ``s`` yield ``s + (3,)``.
    """
    az = np.deg2rad(np.asarray(azimuth_deg, dtype=float))
    el = np.deg2rad(np.asarray(elevation_deg, dtype=float))
    az, el = np.broadcast_arrays(az, el)
    cos_el = np.cos(el)
    return np.stack([cos_el * np.cos(az), cos_el * np.sin(az), np.sin(el)], axis=-1)


def vector_to_angles(vector: np.ndarray) -> Tuple[ArrayLike, ArrayLike]:
    """Inverse of :func:`direction_vector`.

    Accepts vectors of any length (they are normalized internally) with
    components on the last axis.  Returns ``(azimuth_deg,
    elevation_deg)`` with azimuth in ``(-180, 180]`` and elevation in
    ``[-90, 90]``.

    Raises:
        ValueError: if a vector has (near-)zero norm.
    """
    v = np.asarray(vector, dtype=float)
    norm = np.linalg.norm(v, axis=-1)
    if np.any(norm < 1e-12):
        raise ValueError("cannot convert zero-length vector to angles")
    unit = v / norm[..., np.newaxis]
    elevation = np.rad2deg(np.arcsin(np.clip(unit[..., 2], -1.0, 1.0)))
    azimuth = np.rad2deg(np.arctan2(unit[..., 1], unit[..., 0]))
    # arctan2 returns -180 for the back direction; map onto (-180, 180].
    azimuth = np.where(azimuth <= -180.0, azimuth + 360.0, azimuth)
    if v.ndim == 1:
        return float(azimuth), float(elevation)
    return azimuth, elevation
