"""Integrity checks and fault injection for shipped data artifacts.

Covers the artifact registry (`repro.measurement.artifacts`), the typed
error taxonomy raised by ``PatternTable.load``, and the graceful
degradation path of ``load_published_patterns``: a damaged shipped
table must be *detected* (manifest digest), *reported* (typed errors,
nonzero CLI exit) and *repaired* (deterministic regeneration).
"""

import json
import pathlib
import shutil
import zipfile

import numpy as np
import pytest

from repro.geometry import AngularGrid
from repro.measurement import PatternTable
from repro.measurement import artifacts as registry
from repro.measurement.errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactMissingError,
    ArtifactSchemaError,
)
from repro.measurement.published import (
    PUBLISHED_PATTERNS_RESOURCE,
    _load_with_fallback,
)

DATA_DIR = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro" / "data"


@pytest.fixture
def saved_table(tmp_path):
    """A small valid table written to disk, plus its path."""
    grid = AngularGrid(np.array([-10.0, 0.0, 10.0]), np.array([0.0, 10.0]))
    table = PatternTable(
        grid,
        {
            1: np.array([[0.0, 10.0, 0.0], [0.0, 5.0, 0.0]]),
            2: np.array([[8.0, 0.0, -4.0], [8.0, 0.0, -4.0]]),
        },
    )
    path = tmp_path / "table.npz"
    table.save(str(path))
    return table, path


class TestManifestIntegrity:
    """Tier-1 gate: the committed bytes must match MANIFEST.json."""

    def test_manifest_lists_at_least_the_pattern_table(self):
        manifest = registry.load_manifest()
        assert PUBLISHED_PATTERNS_RESOURCE in manifest["artifacts"]

    def test_every_manifest_digest_matches_committed_bytes(self):
        """Catch a truncated/mangled artifact at commit time, not first load."""
        manifest = json.loads((DATA_DIR / "MANIFEST.json").read_text())
        mismatches = []
        for name, entry in manifest["artifacts"].items():
            path = DATA_DIR / name
            assert path.is_file(), f"manifest lists '{name}' but the file is gone"
            actual = registry.sha256_of_file(path)
            if actual != entry["sha256"]:
                mismatches.append(f"{name}: expected {entry['sha256']}, got {actual}")
        assert not mismatches, "; ".join(mismatches)

    def test_every_registered_artifact_is_in_the_manifest(self):
        entries = registry.load_manifest()["artifacts"]
        for name in registry.ARTIFACTS:
            assert name in entries

    def test_verify_all_reports_ok(self):
        statuses = registry.verify_all()
        assert statuses and all(status.ok for status in statuses)


class TestDeterministicRegeneration:
    def test_rebuild_reproduces_shipped_bytes_bit_for_bit(self, tmp_path):
        """The documented campaign pipeline IS the shipped file."""
        dest = tmp_path / PUBLISHED_PATTERNS_RESOURCE
        registry.rebuild_artifact(PUBLISHED_PATTERNS_RESOURCE, dest=str(dest), check=True)
        shipped = DATA_DIR / PUBLISHED_PATTERNS_RESOURCE
        assert dest.read_bytes() == shipped.read_bytes()

    def test_rebuild_digest_mismatch_raises_and_keeps_target(self, tmp_path, monkeypatch):
        """Pipeline drift must not silently overwrite a good file."""
        entry = dict(registry.manifest_entry(PUBLISHED_PATTERNS_RESOURCE))
        entry["sha256"] = "0" * 64
        monkeypatch.setattr(registry, "manifest_entry", lambda name: entry)
        dest = tmp_path / "out.npz"
        dest.write_bytes(b"keep me")
        with pytest.raises(ArtifactCorruptError, match="diverged"):
            registry.rebuild_artifact(PUBLISHED_PATTERNS_RESOURCE, dest=str(dest))
        assert dest.read_bytes() == b"keep me"
        assert not list(tmp_path.glob("*.tmp*"))

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ArtifactSchemaError, match="no registered rebuild"):
            registry.rebuild_artifact("nonexistent.npz")


class TestFaultInjection:
    """Damaged .npz files must raise the typed taxonomy, never BadZipFile."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactMissingError):
            PatternTable.load(str(tmp_path / "absent.npz"))

    @pytest.mark.parametrize("keep_bytes", [0, 10, 100, 1000])
    def test_truncation_at_offsets(self, saved_table, keep_bytes):
        _, path = saved_table
        data = path.read_bytes()
        assert keep_bytes < len(data)
        path.write_bytes(data[:keep_bytes])
        with pytest.raises(ArtifactError) as excinfo:
            PatternTable.load(str(path))
        assert not isinstance(excinfo.value, zipfile.BadZipFile)

    @pytest.mark.parametrize("offset_fraction", [0.3, 0.5, 0.9])
    def test_flipped_bytes(self, saved_table, offset_fraction):
        _, path = saved_table
        data = bytearray(path.read_bytes())
        offset = int(len(data) * offset_fraction)
        data[offset] ^= 0xFF
        data[offset + 1] ^= 0xFF
        path.write_bytes(bytes(data))
        try:
            PatternTable.load(str(path))
        except ArtifactError:
            pass  # detected — the typed taxonomy, not BadZipFile/zlib.error

    def test_not_a_zip_at_all(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this was never an archive")
        with pytest.raises(ArtifactCorruptError, match="not a readable"):
            PatternTable.load(str(path))

    def test_missing_axis_key(self, saved_table, tmp_path):
        table, _ = saved_table
        path = tmp_path / "noaxis.npz"
        arrays = {
            "elevations_deg": table.grid.elevations_deg,
            "sector_ids": np.array(table.sector_ids),
        }
        for sector_id in table.sector_ids:
            arrays[f"pattern_{sector_id}"] = table.patterns[sector_id]
        np.savez_compressed(path, **arrays)
        with pytest.raises(ArtifactSchemaError, match="azimuths_deg"):
            PatternTable.load(str(path))

    def test_missing_pattern_key_named_in_error(self, saved_table, tmp_path):
        """sector_ids promises pattern_2 but the archive lacks it."""
        table, _ = saved_table
        path = tmp_path / "dropped.npz"
        np.savez_compressed(
            path,
            azimuths_deg=table.grid.azimuths_deg,
            elevations_deg=table.grid.elevations_deg,
            sector_ids=np.array([1, 2]),
            pattern_1=table.patterns[1],
        )
        with pytest.raises(ArtifactSchemaError, match="pattern_2"):
            PatternTable.load(str(path))

    def test_mismatched_grid_shape_named_in_error(self, saved_table, tmp_path):
        table, _ = saved_table
        path = tmp_path / "badshape.npz"
        np.savez_compressed(
            path,
            azimuths_deg=table.grid.azimuths_deg,
            elevations_deg=table.grid.elevations_deg,
            sector_ids=np.array([1]),
            pattern_1=np.zeros((5, 7)),
        )
        with pytest.raises(ArtifactSchemaError, match="pattern_1"):
            PatternTable.load(str(path))

    def test_non_integer_sector_ids(self, saved_table, tmp_path):
        table, _ = saved_table
        path = tmp_path / "floatids.npz"
        np.savez_compressed(
            path,
            azimuths_deg=table.grid.azimuths_deg,
            elevations_deg=table.grid.elevations_deg,
            sector_ids=np.array([1.5]),
            pattern_1=table.patterns[1],
        )
        with pytest.raises(ArtifactSchemaError, match="sector_ids"):
            PatternTable.load(str(path))

    def test_empty_sector_list(self, saved_table, tmp_path):
        table, _ = saved_table
        path = tmp_path / "nosectors.npz"
        np.savez_compressed(
            path,
            azimuths_deg=table.grid.azimuths_deg,
            elevations_deg=table.grid.elevations_deg,
            sector_ids=np.array([], dtype=int),
        )
        with pytest.raises(ArtifactSchemaError, match="no sectors"):
            PatternTable.load(str(path))


class TestGracefulDegradation:
    def test_fallback_rebuilds_and_caches(self, tmp_path, caplog):
        """A corrupt shipped file warns, regenerates and caches."""
        import logging

        shipped = tmp_path / "shipped.npz"
        shutil.copy(DATA_DIR / PUBLISHED_PATTERNS_RESOURCE, shipped)
        with open(shipped, "r+b") as handle:
            handle.truncate(10000)
        cache_path = tmp_path / "cache" / PUBLISHED_PATTERNS_RESOURCE

        with caplog.at_level(logging.WARNING, logger="repro.measurement.published"):
            table = _load_with_fallback(str(shipped), cache_path)
        assert "unusable" in caplog.text
        assert table.n_sectors == 35
        # The rebuilt cache matches the manifest and short-circuits next time.
        assert registry.verify_artifact(
            PUBLISHED_PATTERNS_RESOURCE, path=str(cache_path)
        ).ok
        again = _load_with_fallback(str(shipped), cache_path)
        assert again.sector_ids == table.sector_ids

    def test_fallback_table_is_selector_usable(self, tmp_path):
        from repro.core import CompressiveSectorSelector, ProbeMeasurement

        shipped = tmp_path / "shipped.npz"
        shipped.write_bytes(b"garbage")
        table = _load_with_fallback(
            str(shipped), tmp_path / "cache" / PUBLISHED_PATTERNS_RESOURCE
        )
        selector = CompressiveSectorSelector(table)
        measurements = [
            ProbeMeasurement(
                s,
                float(table.gain(s, 15.0, 4.0)),
                float(table.gain(s, 15.0, 4.0)) - 71.5,
            )
            for s in selector.candidate_sector_ids[:14]
        ]
        result = selector.select(measurements)
        assert result.estimate is not None
        assert abs(result.estimate.azimuth_deg - 15.0) < 8.0

    def test_no_rebuild_raises_typed_error(self, tmp_path):
        shipped = tmp_path / "shipped.npz"
        shipped.write_bytes(b"garbage")
        with pytest.raises(ArtifactCorruptError):
            _load_with_fallback(
                str(shipped),
                tmp_path / "cache" / PUBLISHED_PATTERNS_RESOURCE,
                allow_rebuild=False,
            )


class TestCacheDir:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert registry.cache_dir() == tmp_path / "override"
        assert registry.cached_artifact_path("x.npz") == tmp_path / "override" / "x.npz"

    def test_defaults_under_xdg(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert registry.cache_dir() == tmp_path / "xdg" / "repro"


class TestTestbedMemoization:
    """Digest-keyed on-disk memoization of derived campaign tables."""

    @pytest.fixture
    def memo_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_TESTBED_CACHE", raising=False)
        return tmp_path

    def _table(self):
        grid = AngularGrid(np.array([-10.0, 0.0, 10.0]), np.array([0.0, 10.0]))
        return PatternTable(
            grid,
            {
                1: np.array([[0.0, 10.0, 0.0], [0.0, 5.0, 0.0]]),
                2: np.array([[8.0, 0.0, -4.0], [8.0, 0.0, -4.0]]),
            },
        )

    def test_digest_is_canonical_and_salted(self):
        params_a = {"x": 1, "y": "conf"}
        params_b = {"y": "conf", "x": 1}  # key order must not matter
        assert registry.memo_key_digest(params_a) == registry.memo_key_digest(params_b)
        assert registry.memo_key_digest({"x": 2}) != registry.memo_key_digest(params_a)
        path = registry.memoized_table_path(params_a)
        assert path.parent.name == "testbeds" and path.suffix == ".npz"

    def test_build_paid_once_then_loaded_exactly(self, memo_env):
        params = {"pipeline": "test", "seed": 1}
        builds = []

        def build():
            builds.append(1)
            return self._table()

        first = registry.load_or_build_table(params, build)
        second = registry.load_or_build_table(params, build)
        assert len(builds) == 1
        assert registry.memoized_table_path(params).is_file()
        for sector_id in first.sector_ids:
            assert np.array_equal(
                first.pattern(sector_id), second.pattern(sector_id)
            )

    def test_corrupt_cache_degrades_to_rebuild(self, memo_env):
        params = {"pipeline": "test", "seed": 2}
        builds = []

        def build():
            builds.append(1)
            return self._table()

        registry.load_or_build_table(params, build)
        registry.memoized_table_path(params).write_bytes(b"not an npz")
        registry.load_or_build_table(params, build)
        assert len(builds) == 2
        # The rebuild healed the cached file.
        registry.load_or_build_table(params, build)
        assert len(builds) == 2

    def test_validate_hook_rejects_stale_tables(self, memo_env):
        params = {"pipeline": "test", "seed": 3}
        builds = []

        def build():
            builds.append(1)
            return self._table()

        registry.load_or_build_table(params, build)
        registry.load_or_build_table(params, build, validate=lambda table: False)
        assert len(builds) == 2

    def test_env_kill_switch_disables_disk(self, memo_env, monkeypatch):
        monkeypatch.setenv("REPRO_TESTBED_CACHE", "0")
        params = {"pipeline": "test", "seed": 4}
        builds = []

        def build():
            builds.append(1)
            return self._table()

        registry.load_or_build_table(params, build)
        registry.load_or_build_table(params, build)
        assert len(builds) == 2
        assert not registry.memoized_table_path(params).exists()

    def test_build_testbed_reports_cache_info(self, memo_env):
        from repro.experiments.common import testbed_table_cache_info

        info = testbed_table_cache_info()
        assert set(info) == {"path", "present", "enabled"}
        assert info["enabled"] is True
        assert str(registry.cache_dir()) in info["path"]
