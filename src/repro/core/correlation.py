"""The compressive correlation kernel (paper Eq. 2).

Given the received signal-strength vector over the probed sectors and
the expected per-direction pattern vectors, the correlation map is::

    W(φ, θ) = ⟨ p/‖p‖ , x(φ,θ)/‖x(φ,θ)‖ ⟩²

Correlation is computed in the **linear power domain** by default:
signal strengths in dB shift additively with link distance, which would
break the scale-invariant normalized inner product, whereas in linear
power the shift becomes a pure scale that normalization removes.  The
dB domain remains available for the ablation study.
"""

from __future__ import annotations

import numpy as np

__all__ = ["to_linear_power", "normalize_rows", "correlation_map"]

_EPSILON = 1e-12


def to_linear_power(values_db: np.ndarray) -> np.ndarray:
    """Convert dB values to linear power.

    Inputs are clamped to ±200 dB — far beyond any physical signal —
    so that corrupted readings cannot overflow the float range.
    """
    clamped = np.clip(np.asarray(values_db, dtype=float), -200.0, 200.0)
    return 10.0 ** (clamped / 10.0)


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Scale each row of a matrix to unit Euclidean norm."""
    matrix = np.asarray(matrix, dtype=float)
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return matrix / np.maximum(norms, _EPSILON)


def correlation_map(
    probe_values_db: np.ndarray,
    pattern_matrix_db: np.ndarray,
    domain: str = "linear",
) -> np.ndarray:
    """Eq. 2 evaluated on every grid point at once.

    Args:
        probe_values_db: received signal strengths, shape ``(M,)`` — one
            per probed sector that produced a report.
        pattern_matrix_db: expected patterns of those same sectors on
            the search grid, shape ``(M, K)``.
        domain: ``"linear"`` (default, offset-invariant) or ``"db"``.

    Returns:
        Correlation ``W`` per grid point, shape ``(K,)``, in ``[0, 1]``.
    """
    probes = np.asarray(probe_values_db, dtype=float)
    patterns = np.asarray(pattern_matrix_db, dtype=float)
    if probes.ndim != 1:
        raise ValueError("probe values must be a 1-D vector")
    if patterns.ndim != 2 or patterns.shape[0] != probes.size:
        raise ValueError(
            f"pattern matrix shape {patterns.shape} does not match "
            f"{probes.size} probe values"
        )
    if domain not in ("linear", "db"):
        raise ValueError("domain must be 'linear' or 'db'")

    if domain == "linear":
        probes = to_linear_power(probes)
        patterns = to_linear_power(patterns)

    probe_unit = probes / max(np.linalg.norm(probes), _EPSILON)
    # Normalize each grid point's pattern vector (a column of patterns).
    column_norms = np.linalg.norm(patterns, axis=0)
    pattern_unit = patterns / np.maximum(column_norms, _EPSILON)
    correlation = probe_unit @ pattern_unit
    return correlation**2
