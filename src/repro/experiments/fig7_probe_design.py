"""Probe-design search: accuracy vs. M for every registered designer.

The paper probes a uniform-random M-of-N subset (§2.2); the structured
sensing-matrix literature (arXiv:2205.11154, arXiv:2308.13268) shows
designed subsets beat random draws at the same probing budget.  This
scenario runs the design-space search on the fig7 evaluation surface:
every registered probe designer × M ∈ {6..24} × the lab (LOS) and
conference-room (multipath) environments, all on the batched/fused
engine, and ranks the designers against the random baseline by mean
angular error.

``repro-bench run fig7_probe_design`` prints the ranked report.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..channel.environment import conference_room, lab_environment
from ..geometry.angles import azimuth_difference
from ..runtime.registry import register_scenario
from ..runtime.runner import ScenarioRunner
from ..runtime.spec import PolicySpec, ScenarioSpec
from .common import record_directions

__all__ = [
    "ProbeDesignConfig",
    "DesignerSeries",
    "ProbeDesignResult",
    "probe_design_spec",
    "run_probe_design",
    "DEFAULT_DESIGNS",
]

#: The designer sweep, in evaluation (and rng-consumption) order.  The
#: random baseline runs first so its draws are independent of how many
#: deterministic designers follow; deterministic designers consume no
#: randomness, so appending one never perturbs another's series.
DEFAULT_DESIGNS: Sequence[Mapping[str, Any]] = (
    {"designer": "random"},
    {"designer": "coherence-min"},
    {
        "designer": "in-sector",
        "params": {"sector_center_deg": 0.0, "sector_width_deg": 120.0},
    },
    {"designer": "greedy-submodular"},
)


@dataclass(frozen=True)
class ProbeDesignConfig:
    """Search-space knobs.

    The azimuth/elevation sampling matches :class:`~.fig7.Fig7Config`
    coverage at the same coarse pitch; ``probe_counts`` spans the
    design-relevant budget M ∈ {6..24} from the issue (below 6 every
    designer is noise-limited, above 24 the random draw saturates).
    """

    seed: int = 7
    probe_counts: Sequence[int] = tuple(range(6, 25, 2))
    lab_azimuth_step_deg: float = 7.5
    lab_elevation_step_deg: float = 6.0
    lab_max_elevation_deg: float = 30.0
    conference_azimuth_step_deg: float = 4.0
    n_sweeps: int = 2
    subsamples_per_sweep: int = 2
    designs: Sequence[Mapping[str, Any]] = DEFAULT_DESIGNS


@dataclass
class DesignerSeries:
    """Mean/median angular error per probe count for one designer in
    one environment."""

    environment_name: str
    designer: str
    probe_counts: List[int] = field(default_factory=list)
    mean_az_error: List[float] = field(default_factory=list)
    median_az_error: List[float] = field(default_factory=list)
    trials: List[int] = field(default_factory=list)

    @property
    def overall_mean(self) -> float:
        """Mean azimuth error across the whole M sweep (the ranking
        statistic — every designer sees identical budgets)."""
        return float(np.mean(self.mean_az_error))

    def mean_at(self, n_probes: int) -> float:
        return self.mean_az_error[self.probe_counts.index(n_probes)]


@dataclass
class ProbeDesignResult:
    lab: List[DesignerSeries]
    conference: List[DesignerSeries]

    def environment(self, name: str) -> List[DesignerSeries]:
        if name == "lab":
            return self.lab
        if name == "conference-room":
            return self.conference
        raise KeyError(name)

    def series(self, environment: str, designer: str) -> DesignerSeries:
        for series in self.environment(environment):
            if series.designer == designer:
                return series
        raise KeyError(f"{designer} in {environment}")

    def ranking(self, environment: str) -> List[DesignerSeries]:
        """Designers ordered best-first by overall mean azimuth error."""
        return sorted(
            self.environment(environment), key=lambda series: series.overall_mean
        )

    def _random_series(self, environment: str) -> Optional[DesignerSeries]:
        try:
            return self.series(environment, "random")
        except KeyError:
            return None  # single-designer smoke runs carry no baseline

    def wins_vs_random(self, environment: str) -> Dict[str, int]:
        """Per designer: at how many probe budgets it strictly beats the
        random baseline's mean azimuth error (empty when the run did
        not include the random baseline)."""
        random_series = self._random_series(environment)
        if random_series is None:
            return {}
        wins: Dict[str, int] = {}
        for series in self.environment(environment):
            if series.designer == "random":
                continue
            wins[series.designer] = sum(
                1
                for index in range(len(series.probe_counts))
                if series.mean_az_error[index]
                < random_series.mean_az_error[index]
            )
        return wins

    def format_rows(self) -> List[str]:
        rows = ["fig7_probe_design: mean azimuth error (deg) vs. probe budget M"]
        for name in ("lab", "conference-room"):
            ranked = self.ranking(name)
            wins = self.wins_vs_random(name)
            counts = ranked[0].probe_counts
            rows.append(f"-- {name} --")
            header = "rank designer          | " + " ".join(
                f"M={count:<4d}" for count in counts
            )
            rows.append(header + "| sweep mean | beats random")
            for position, series in enumerate(ranked, start=1):
                cells = " ".join(
                    f"{error:6.2f}" for error in series.mean_az_error
                )
                if series.designer == "random":
                    verdict = "(baseline)"
                elif series.designer in wins:
                    verdict = f"{wins[series.designer]}/{len(counts)} budgets"
                else:
                    verdict = "(no baseline in run)"
                rows.append(
                    f"{position:4d} {series.designer:<17s}| {cells} "
                    f"| {series.overall_mean:10.2f} | {verdict}"
                )
        return rows


def probe_design_spec(
    config: ProbeDesignConfig = ProbeDesignConfig(),
) -> ScenarioSpec:
    """The declarative form of a probe-design search run."""
    params = {key: value for key, value in asdict(config).items() if key != "seed"}
    params["designs"] = [dict(design) for design in config.designs]
    return ScenarioSpec(
        scenario="fig7_probe_design", seed=config.seed, params=params
    )


def _config_from_spec(spec: ScenarioSpec) -> ProbeDesignConfig:
    params = dict(spec.params)
    designs = tuple(dict(design) for design in params.pop("designs", DEFAULT_DESIGNS))
    return ProbeDesignConfig(seed=spec.seed, designs=designs, **params)


def _design_policy_spec(
    design: Mapping[str, Any], n_probes: int
) -> PolicySpec:
    """The css policy evaluating one (designer, M) grid point.

    The ``random`` designer rides the probe_design block too (not the
    legacy inline draw) — same rng calls, so the baseline numbers are
    exactly what the undesigned policy would produce, while exercising
    the designer path end-to-end.
    """
    return PolicySpec(
        "css", {"n_probes": int(n_probes)}, probe_design=dict(design)
    )


def _evaluate_designers(
    runner: ScenarioRunner,
    spec: ScenarioSpec,
    testbed,
    recordings,
    config: ProbeDesignConfig,
    rng: np.random.Generator,
    name: str,
) -> List[DesignerSeries]:
    context = runner.context(testbed)
    tx_ids = testbed.tx_sector_ids
    all_series: List[DesignerSeries] = []
    for design in config.designs:
        series = DesignerSeries(
            environment_name=name, designer=str(design["designer"])
        )
        for n_probes in config.probe_counts:
            policy_spec = _design_policy_spec(design, n_probes)
            policy = runner.build_policy(policy_spec, context)
            blocks = runner.plan_trials(
                policy,
                recordings,
                tx_ids,
                rng,
                subsamples_per_sweep=config.subsamples_per_sweep,
            )
            records = runner.execute(
                policy,
                blocks,
                reset="recording",
                policy_spec=policy_spec,
                testbed_spec=spec.testbed,
            )
            azimuth_errors: List[float] = []
            for record in records:
                estimate = record.result.estimate
                if estimate is None:
                    continue
                recording = recordings[record.recording_index]
                azimuth_errors.append(
                    abs(
                        azimuth_difference(
                            estimate.azimuth_deg, recording.azimuth_deg
                        )
                    )
                )
            series.probe_counts.append(int(n_probes))
            series.mean_az_error.append(float(np.mean(azimuth_errors)))
            series.median_az_error.append(float(np.median(azimuth_errors)))
            series.trials.append(len(azimuth_errors))
        all_series.append(series)
    return all_series


@register_scenario("fig7_probe_design", default_spec=probe_design_spec)
def _run_probe_design_scenario(
    spec: ScenarioSpec, runner: ScenarioRunner
) -> ProbeDesignResult:
    """Probe-design search: every designer × M × environment, ranked."""
    config = _config_from_spec(spec)
    testbed = spec.testbed.build()
    rng = np.random.default_rng(config.seed)

    lab_azimuths = np.arange(-60.0, 60.0 + 1e-9, config.lab_azimuth_step_deg)
    lab_elevations = np.arange(
        0.0, config.lab_max_elevation_deg + 1e-9, config.lab_elevation_step_deg
    )
    lab_recordings = record_directions(
        testbed, lab_environment(3.0), lab_azimuths, lab_elevations, config.n_sweeps, rng
    )
    lab_series = _evaluate_designers(
        runner, spec, testbed, lab_recordings, config, rng, "lab"
    )

    conference_azimuths = np.arange(
        -60.0, 60.0 + 1e-9, config.conference_azimuth_step_deg
    )
    conference_recordings = record_directions(
        testbed, conference_room(6.0), conference_azimuths, [0.0], config.n_sweeps, rng
    )
    conference_series = _evaluate_designers(
        runner, spec, testbed, conference_recordings, config, rng, "conference-room"
    )
    return ProbeDesignResult(lab=lab_series, conference=conference_series)


def run_probe_design(
    config: ProbeDesignConfig = ProbeDesignConfig(), jobs: int = 1
) -> ProbeDesignResult:
    """Run the full probe-design search (both environments)."""
    with ScenarioRunner(jobs=jobs) as runner:
        return runner.run(probe_design_spec(config)).result
