"""Tests for the repro-bench command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions if action.dest == "command"
        )
        assert set(subparsers.choices) == {
            "table1",
            "patterns",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "summary",
            "ablations",
            "extensions",
            "artifacts",
            "perf",
            "run",
            "report",
            "diff",
            "serve",
            "load",
            "runs",
            "chaos",
        }

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_and_paper_flags(self):
        args = build_parser().parse_args(["fig10", "--seed", "7", "--paper"])
        assert args.seed == 7
        assert args.paper is True


class TestCommands:
    def test_fig10_prints_headline_timing(self, capsys):
        assert main(["fig10"]) == 0
        output = capsys.readouterr().out
        assert "1.27 ms" in output
        assert "2.3x speed-up" in output

    def test_table1_prints_consistent_capture(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "consistent=True" in output
        assert "Beacon" in output and "Sweep" in output

    def test_run_profile_writes_pstats_and_forces_serial(self, tmp_path, capsys):
        import pstats

        path = tmp_path / "fig10.pstats"
        assert main(["run", "fig10", "--jobs", "4", "--profile", str(path)]) == 0
        output = capsys.readouterr().out
        assert "forcing --jobs 1" in output
        assert "top cumulative:" in output
        stats = pstats.Stats(str(path))  # loadable pstats dump
        assert stats.total_calls > 0

    def test_patterns_writes_npz(self, tmp_path, capsys):
        from repro.measurement import PatternTable

        path = tmp_path / "patterns.npz"
        assert main(["patterns", str(path)]) == 0
        table = PatternTable.load(str(path))
        assert table.n_sectors == 35
        assert "saved 35 sector patterns" in capsys.readouterr().out

    def test_artifacts_verify_ok_on_intact_install(self, capsys):
        assert main(["artifacts", "verify"]) == 0
        assert "talon_sector_patterns_3d.npz: ok" in capsys.readouterr().out

    def test_artifacts_info_reports_manifest_and_cache(self, capsys):
        assert main(["artifacts", "info", "talon_sector_patterns_3d.npz"]) == 0
        output = capsys.readouterr().out
        assert "sha256:" in output
        assert "cache:" in output
        assert "status: ok" in output

    def test_artifacts_verify_flags_corruption_and_rebuild_heals(
        self, tmp_path, capsys, monkeypatch
    ):
        """The acceptance loop: corrupt -> verify fails -> rebuild -> ok."""
        import shutil

        from repro.measurement import artifacts as registry

        name = "talon_sector_patterns_3d.npz"
        damaged = tmp_path / name
        shutil.copy(registry.artifact_path(name), damaged)
        with open(damaged, "r+b") as handle:
            handle.truncate(10000)

        real_artifact_path = registry.artifact_path
        monkeypatch.setattr(
            registry,
            "artifact_path",
            lambda resource: damaged if resource == name else real_artifact_path(resource),
        )
        assert main(["artifacts", "verify"]) == 1
        assert "digest-mismatch" in capsys.readouterr().out

        assert main(["artifacts", "rebuild", name]) == 0
        assert "manifest digest verified" in capsys.readouterr().out
        assert main(["artifacts", "verify"]) == 0
