"""SelectionPolicy adapters for the core selectors.

Thin wrappers that make :class:`CompressiveSectorSelector` and the
stock exhaustive sweep speak the :mod:`repro.runtime` protocol —
registered as ``"css"`` and ``"full-sweep"`` so scenario specs can
name them.

Determinism notes (load-bearing — see DESIGN.md §7/§8):

* ``CompressivePolicy.probes_for_round`` with the default (random)
  strategy makes exactly one ``rng.choice(len(pool), size=n_probes,
  replace=False)`` call — the same call as
  :func:`repro.experiments.common.random_probe_columns` — so plans
  drawn through the policy consume the pinned stream identically to
  the legacy loops.
* ``FullSweepPolicy`` consumes no randomness and replicates the Python
  ``max`` semantics of :class:`SectorSweepSelector` (first element
  kept, replaced only on strictly greater SNR) in its batched kernel.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..geometry.grid import AngularGrid
from ..mac.timing import multi_round_training_time_us
from ..runtime.policy import PolicyContext
from ..runtime.registry import register_policy
from .compressive import CompressiveSectorSelector
from .measurements import ProbeMeasurement
from .probes import GainDiverseProbeStrategy, RandomProbeStrategy
from .selector import SelectionResult

__all__ = ["CompressivePolicy", "FullSweepPolicy"]


def _resolve_table(context: PolicyContext, patterns: str):
    """The pattern table a spec names: measured or ideal-array theory."""
    testbed = context.testbed
    if patterns == "measured":
        return testbed.pattern_table
    if patterns == "theoretical":
        key = ("theoretical-table", id(testbed.pattern_table))
        table = context.cache.get(key)
        if table is None:
            # Lazy import: baselines imports core, so the reverse edge
            # must stay out of module scope.
            from ..baselines.random_beams import theoretical_pattern_table

            table = theoretical_pattern_table(
                testbed.dut_codebook,
                testbed.pattern_table.grid,
                antenna=testbed.dut_antenna,
            )
            context.cache[key] = table
        return table
    raise ValueError("patterns must be 'measured' or 'theoretical'")


@register_policy("css")
class CompressivePolicy:
    """Compressive sector selection (§2.2) as a runtime policy."""

    multi_round = False

    def __init__(
        self,
        context: PolicyContext,
        n_probes: int = 14,
        fusion: str = "product",
        domain: str = "linear",
        search: str = "3d",
        patterns: str = "measured",
        probe_strategy: Optional[str] = None,
        fallback_correlation: float = 0.0,
        pattern_table=None,
    ):
        """
        Args:
            context: shared testbed + cache.
            n_probes: probes per training (M).
            fusion / domain / fallback_correlation: forwarded to
                :class:`CompressiveSectorSelector`.
            search: ``"3d"`` (full table grid) or ``"2d"``
                (azimuth-only — the ablation's degraded variant).
            patterns: ``"measured"`` or ``"theoretical"``.
            probe_strategy: None (the paper's raw uniform draw),
                ``"random"`` (uniform, sorted — RandomProbeStrategy) or
                ``"gain-diverse"`` (§7's greedy max-min pre-selection).
            pattern_table: direct table override for in-process callers
                (transfer experiment); not spec-serializable — policies
                built with it cannot shard across processes.
        """
        if search not in ("3d", "2d"):
            raise ValueError("search must be '3d' or '2d'")
        table = pattern_table if pattern_table is not None else _resolve_table(
            context, patterns
        )
        self.name = "css"
        self.n_probes = int(n_probes)
        # Selectors sample two full grid matrices at construction, and
        # policies that differ only in probe count are state-compatible
        # (execute() resets before use) — share one per configuration.
        key = (
            "css-selector",
            id(table),
            fusion,
            domain,
            search,
            float(fallback_correlation),
        )
        selector = context.cache.get(key)
        if selector is None:
            search_grid = None
            if search == "2d":
                search_grid = AngularGrid(
                    table.grid.azimuths_deg, np.array([0.0])
                )
            selector = CompressiveSectorSelector(
                table,
                search_grid=search_grid,
                fusion=fusion,
                domain=domain,
                fallback_correlation=fallback_correlation,
            )
            context.cache[key] = selector
        self.selector = selector
        if probe_strategy is None:
            self._strategy = None
        elif probe_strategy == "random":
            self._strategy = RandomProbeStrategy()
        elif probe_strategy == "gain-diverse":
            self._strategy = GainDiverseProbeStrategy(table)
        else:
            raise ValueError(
                "probe_strategy must be None, 'random' or 'gain-diverse'"
            )

    def reset(self) -> None:
        self.selector.reset()

    def probes_for_round(
        self, round_index: int, pool: Sequence[int], rng: np.random.Generator
    ) -> Optional[List[int]]:
        if round_index > 0:
            return None
        if self._strategy is not None:
            return list(self._strategy.choose(self.n_probes, pool, rng))
        # One rng.choice with these exact arguments == the pinned draw
        # of experiments.common.random_probe_columns.
        if self.n_probes > len(pool):
            raise ValueError("cannot probe more sectors than exist")
        chosen = rng.choice(len(pool), size=self.n_probes, replace=False)
        return [pool[index] for index in chosen]

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        return self.selector.select(measurements)

    def select_batch(
        self,
        sector_ids: np.ndarray,
        snr_db: np.ndarray,
        rssi_dbm: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> List[SelectionResult]:
        return self.selector.select_batch(
            sector_ids, snr_db=snr_db, rssi_dbm=rssi_dbm, mask=mask
        )

    def training_time_us(self, probes_used: int, n_rounds: int = 1) -> float:
        return multi_round_training_time_us(probes_used, n_rounds)


@register_policy("full-sweep")
class FullSweepPolicy:
    """The IEEE 802.11ad exhaustive sweep (Eq. 1) as a runtime policy."""

    multi_round = False

    def __init__(self, context: PolicyContext, initial_sector_id: int = 1):
        self.name = "full-sweep"
        self.initial_sector_id = int(initial_sector_id)
        self._last_selection = self.initial_sector_id

    def reset(self) -> None:
        self._last_selection = self.initial_sector_id

    def probes_for_round(
        self, round_index: int, pool: Sequence[int], rng: np.random.Generator
    ) -> Optional[List[int]]:
        if round_index > 0:
            return None
        return list(pool)

    def select(self, measurements: Sequence[ProbeMeasurement]) -> SelectionResult:
        if not measurements:
            return SelectionResult(sector_id=self._last_selection, fallback=True)
        best = max(measurements, key=lambda m: m.snr_db)
        self._last_selection = best.sector_id
        return SelectionResult(sector_id=best.sector_id)

    def select_batch(
        self,
        sector_ids: np.ndarray,
        snr_db: np.ndarray,
        rssi_dbm: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> List[SelectionResult]:
        """Row-sequential batched twin of :meth:`select`.

        The per-row argmax is an explicit strictly-greater loop, not
        ``np.argmax``: Python's ``max`` keeps the first element on ties
        and never lets a NaN win, and the batched path must reproduce
        the scalar decisions bit for bit.
        """
        ids = np.asarray(sector_ids)
        snr = np.asarray(snr_db, dtype=float)
        if mask is None:
            valid = np.ones(ids.shape, dtype=bool)
        else:
            valid = np.asarray(mask, dtype=bool)
        results: List[SelectionResult] = []
        for row in range(ids.shape[0]):
            columns = np.flatnonzero(valid[row])
            if columns.size == 0:
                results.append(
                    SelectionResult(sector_id=self._last_selection, fallback=True)
                )
                continue
            best = columns[0]
            for column in columns[1:]:
                if snr[row, column] > snr[row, best]:
                    best = column
            sector_id = int(ids[row, best])
            self._last_selection = sector_id
            results.append(SelectionResult(sector_id=sector_id))
        return results

    def training_time_us(self, probes_used: int, n_rounds: int = 1) -> float:
        return multi_round_training_time_us(probes_used, n_rounds)
