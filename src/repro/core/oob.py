"""Out-of-band direction priors for compressive estimation.

Nitsche et al. ("Steering with eyes closed", paper §8) steer mm-wave
beams from 2.4/5 GHz direction estimates; Ali et al. combine such
out-of-band side information with compressed sensing.  This module
brings that idea to the compressive estimator: a coarse legacy-band
angle-of-arrival estimate becomes a Gaussian weight on the Eq. 3/5
correlation map, which pays off exactly where plain CSS is weakest —
very small probe budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..geometry.angles import azimuth_difference
from ..geometry.grid import AngularGrid
from .estimator import AngleEstimate, AngleEstimator
from .measurements import ProbeMeasurement

__all__ = ["OutOfBandPrior", "PriorAidedEstimator"]


@dataclass(frozen=True)
class OutOfBandPrior:
    """A coarse direction estimate from a legacy band.

    Attributes:
        azimuth_deg: the out-of-band azimuth estimate.
        sigma_deg: its 1-sigma uncertainty (2.4 GHz AoA estimates are
            coarse — tens of degrees).
        elevation_deg / elevation_sigma_deg: optional elevation prior;
            omitted (None) when the legacy array is linear and cannot
            resolve elevation.
    """

    azimuth_deg: float
    sigma_deg: float = 20.0
    elevation_deg: Optional[float] = None
    elevation_sigma_deg: float = 20.0

    def __post_init__(self) -> None:
        if self.sigma_deg <= 0 or self.elevation_sigma_deg <= 0:
            raise ValueError("prior uncertainties must be positive")

    def weights_on(self, grid: AngularGrid) -> np.ndarray:
        """Gaussian weight per (flattened) grid point."""
        azimuths, elevations = grid.flat_angles()
        delta_az = azimuth_difference(azimuths, self.azimuth_deg)
        weights = np.exp(-(delta_az**2) / (2.0 * self.sigma_deg**2))
        if self.elevation_deg is not None:
            delta_el = elevations - self.elevation_deg
            weights = weights * np.exp(
                -(delta_el**2) / (2.0 * self.elevation_sigma_deg**2)
            )
        return weights


class PriorAidedEstimator:
    """An :class:`AngleEstimator` whose map is weighted by a prior."""

    def __init__(self, estimator: AngleEstimator):
        self.estimator = estimator

    @property
    def search_grid(self) -> AngularGrid:
        return self.estimator.search_grid

    def estimate(
        self,
        measurements: Sequence[ProbeMeasurement],
        prior: Optional[OutOfBandPrior] = None,
    ) -> AngleEstimate:
        """Eq. 3/5 argmax over the prior-weighted correlation map."""
        surface = self.estimator.correlation_surface(measurements)
        if prior is not None:
            surface = surface * prior.weights_on(self.search_grid)
        best_index = int(np.argmax(surface))
        azimuth, elevation = self.search_grid.index_to_angles(best_index)
        return AngleEstimate(
            azimuth_deg=azimuth,
            elevation_deg=elevation,
            correlation=float(surface[best_index]),
            n_probes_used=len(measurements),
        )
