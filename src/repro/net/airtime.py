"""Shared-medium airtime accounting for dense mm-wave rooms.

The §7 argument: data transmissions are directional and can coexist
spatially, but *training* frames go out quasi-omni over every sector —
each sector sweep "pollutes the whole mm-wave channel in all
directions".  So training time is exclusive (serialized across all
pairs) while data time enjoys full spatial reuse.  This module keeps
that ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..mac.timing import mutual_training_time_us

__all__ = ["TrainingPolicy", "AirtimeLedger"]


@dataclass(frozen=True)
class TrainingPolicy:
    """How one pair trains: probe count and re-training period."""

    name: str
    n_probes: int
    interval_us: float = 1_000_000.0

    def __post_init__(self) -> None:
        if self.n_probes < 1:
            raise ValueError("must probe at least one sector")
        if self.interval_us <= 0:
            raise ValueError("training interval must be positive")

    @property
    def training_time_us(self) -> float:
        return mutual_training_time_us(self.n_probes)

    @property
    def trainings_per_second(self) -> float:
        return 1e6 / self.interval_us


class AirtimeLedger:
    """Tracks exclusive (training) airtime on the shared channel."""

    def __init__(self, epoch_us: float = 1_000_000.0):
        if epoch_us <= 0:
            raise ValueError("epoch must be positive")
        self.epoch_us = epoch_us
        self._exclusive_us: float = 0.0
        self._by_source: Dict[str, float] = {}

    def add_training(self, source: str, policy: TrainingPolicy) -> None:
        """Charge one epoch's worth of training for one pair."""
        duration = policy.training_time_us * policy.trainings_per_second * (
            self.epoch_us / 1e6
        )
        self._exclusive_us += duration
        self._by_source[source] = self._by_source.get(source, 0.0) + duration

    @property
    def exclusive_us(self) -> float:
        return self._exclusive_us

    @property
    def by_source(self) -> Dict[str, float]:
        return dict(self._by_source)

    @property
    def is_saturated(self) -> bool:
        """True when training alone exceeds the epoch."""
        return self._exclusive_us >= self.epoch_us

    def data_fraction(self) -> float:
        """Fraction of the epoch left for (spatially reused) data."""
        return max(0.0, 1.0 - self._exclusive_us / self.epoch_us)
