"""Figure 8: selection stability vs. number of probing sectors.

Stability is the share of sweeps that yield the direction's most
frequent ("modal") sector — the fraction of time spent in one sector.
The paper finds the exhaustive sweep stuck at 73.9 % (outliers keep
flipping its argmax between near-equal sectors) while compressive
selection crosses it around 13 probes and reaches ~95 % with all 34.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass
from typing import List, Sequence

import numpy as np

from ..channel.environment import conference_room
from ..runtime.registry import register_scenario
from ..runtime.runner import ScenarioRunner, TrialRecord
from ..runtime.spec import PolicySpec, ScenarioSpec
from .common import record_directions

__all__ = [
    "Fig8Config",
    "Fig8Result",
    "run_fig8",
    "fig8_spec",
    "stability_of_selections",
]


@dataclass(frozen=True)
class Fig8Config:
    seed: int = 8
    probe_counts: Sequence[int] = tuple(range(4, 35, 2))
    azimuth_step_deg: float = 5.0
    n_sweeps: int = 30


@dataclass
class Fig8Result:
    probe_counts: List[int]
    css_stability: List[float]
    ssw_stability: float

    def css_at(self, n_probes: int) -> float:
        return self.css_stability[self.probe_counts.index(n_probes)]

    def crossover_probes(self) -> int:
        """Smallest probe count where CSS beats the sweep's stability."""
        for n_probes, stability in zip(self.probe_counts, self.css_stability):
            if stability > self.ssw_stability:
                return n_probes
        return self.probe_counts[-1]

    def format_rows(self) -> List[str]:
        rows = [
            "fig8: selection stability (conference room)",
            f"SSW (full sweep): {self.ssw_stability:.3f}",
            "probes | CSS stability",
        ]
        for n_probes, stability in zip(self.probe_counts, self.css_stability):
            marker = " <- crosses SSW" if n_probes == self.crossover_probes() else ""
            rows.append(f"{n_probes:6d} | {stability:.3f}{marker}")
        return rows


def stability_of_selections(selections: Sequence[int]) -> float:
    """Share of the modal selection (time spent in one sector)."""
    if not selections:
        raise ValueError("need at least one selection")
    counts = Counter(selections)
    return counts.most_common(1)[0][1] / len(selections)


def _selections_by_recording(
    records: Sequence[TrialRecord], n_recordings: int
) -> List[List[int]]:
    groups: List[List[int]] = [[] for _ in range(n_recordings)]
    for record in records:
        groups[record.recording_index].append(record.result.sector_id)
    return groups


def fig8_spec(config: Fig8Config = Fig8Config()) -> ScenarioSpec:
    """The declarative form of a Figure 8 run."""
    params = {key: value for key, value in asdict(config).items() if key != "seed"}
    return ScenarioSpec(scenario="fig8", seed=config.seed, params=params)


def _config_from_spec(spec: ScenarioSpec) -> Fig8Config:
    return Fig8Config(seed=spec.seed, **spec.params)


@register_scenario("fig8", default_spec=fig8_spec)
def _run_fig8_scenario(spec: ScenarioSpec, runner: ScenarioRunner) -> Fig8Result:
    """Figure 8: selection stability in the conference room."""
    config = _config_from_spec(spec)
    testbed = spec.testbed.build()
    context = runner.context(testbed)
    rng = np.random.default_rng(config.seed)
    azimuths = np.arange(-60.0, 60.0 + 1e-9, config.azimuth_step_deg)
    recordings = record_directions(
        testbed, conference_room(6.0), azimuths, [0.0], config.n_sweeps, rng
    )
    tx_ids = testbed.tx_sector_ids

    # SSW: full-sweep argmax per recorded sweep.  The policy consumes
    # no randomness, so planning it before the CSS draws leaves the
    # pinned stream untouched.
    ssw_spec = PolicySpec("full-sweep", {})
    ssw = runner.build_policy(ssw_spec, context)
    ssw_records = runner.execute(
        ssw,
        runner.plan_trials(ssw, recordings, tx_ids, rng),
        reset="recording",
        policy_spec=ssw_spec,
        testbed_spec=spec.testbed,
    )
    ssw_stability = float(
        np.mean(
            [
                stability_of_selections(selections)
                for selections in _selections_by_recording(ssw_records, len(recordings))
            ]
        )
    )

    # CSS: per probe count, one probe draw per recording × sweep and a
    # per-recording state reset — the legacy fresh-selector loop.
    css_stability: List[float] = []
    for n_probes in config.probe_counts:
        policy_spec = PolicySpec("css", {"n_probes": int(n_probes)})
        policy = runner.build_policy(policy_spec, context)
        records = runner.execute(
            policy,
            runner.plan_trials(policy, recordings, tx_ids, rng),
            reset="recording",
            policy_spec=policy_spec,
            testbed_spec=spec.testbed,
        )
        css_stability.append(
            float(
                np.mean(
                    [
                        stability_of_selections(selections)
                        for selections in _selections_by_recording(
                            records, len(recordings)
                        )
                    ]
                )
            )
        )

    return Fig8Result(
        probe_counts=list(config.probe_counts),
        css_stability=css_stability,
        ssw_stability=ssw_stability,
    )


def run_fig8(config: Fig8Config = Fig8Config(), jobs: int = 1) -> Fig8Result:
    """Run the stability experiment in the conference room."""
    with ScenarioRunner(jobs=jobs) as runner:
        return runner.run(fig8_spec(config)).result
