"""Unit tests for path loss and absorption."""

import pytest

from repro.channel import (
    OXYGEN_ABSORPTION_DB_PER_KM,
    free_space_path_loss_db,
    oxygen_absorption_db,
    path_loss_db,
)


class TestFreeSpace:
    def test_reference_value_at_60ghz(self):
        # FSPL(1 m, 60.48 GHz) = 20 log10(4 pi / lambda) ~= 68.1 dB.
        assert free_space_path_loss_db(1.0) == pytest.approx(68.1, abs=0.2)

    def test_six_db_per_distance_doubling(self):
        assert free_space_path_loss_db(6.0) - free_space_path_loss_db(3.0) == pytest.approx(
            6.02, abs=0.01
        )

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0)
        with pytest.raises(ValueError):
            free_space_path_loss_db(-1.0)

    def test_rejects_nonpositive_carrier(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(1.0, carrier_hz=0.0)


class TestOxygen:
    def test_linear_in_distance(self):
        assert oxygen_absorption_db(1000.0) == pytest.approx(OXYGEN_ABSORPTION_DB_PER_KM)
        assert oxygen_absorption_db(100.0) == pytest.approx(OXYGEN_ABSORPTION_DB_PER_KM / 10)

    def test_negligible_indoors(self):
        assert oxygen_absorption_db(6.0) < 0.1

    def test_zero_distance_allowed(self):
        assert oxygen_absorption_db(0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            oxygen_absorption_db(-5.0)


class TestCombined:
    def test_total_is_sum(self):
        distance = 500.0
        assert path_loss_db(distance) == pytest.approx(
            free_space_path_loss_db(distance) + oxygen_absorption_db(distance)
        )

    def test_monotone_in_distance(self):
        losses = [path_loss_db(d) for d in (1.0, 3.0, 10.0, 100.0)]
        assert losses == sorted(losses)
